"""repro — Distributed inference and query processing for RFID tracking.

A from-scratch reproduction of Cao, Sutton, Diao, Shenoy (PVLDB 2011).
Subpackages:

* :mod:`repro.core` — RFINFER inference, change points, truncation,
  collapsed state, the streaming service, hierarchical containment.
* :mod:`repro.sim` — warehouses, readers, supply chains, lab traces.
* :mod:`repro.baselines` — SMURF and SMURF*.
* :mod:`repro.streams` / :mod:`repro.queries` — CQL-style continuous
  queries with SEQ pattern matching (Q1, Q2, tracking).
* :mod:`repro.runtime` — the event-driven federation: site nodes,
  pluggable transports, batched state migration, query routing.
* :mod:`repro.archive` / :mod:`repro.serving` — per-site append-only
  history of inference output, and the query frontend serving
  historical (time-travel) queries over it by scatter-gather.
* :mod:`repro.distributed` — cost ledger, ONS, tag memory, centroid
  sharing, and the deployment facades over the runtime.
* :mod:`repro.metrics` — error rates, F-measures, cost accounting.
* :mod:`repro.workloads` — Table-2 workloads, catalogs, and scenarios.

Quickstart::

    from repro.sim.supplychain import simulate
    from repro.core import RFInfer, TraceWindow

    result = simulate(n_warehouses=1, horizon=1200, seed=7)
    window = TraceWindow.from_range(result.trace, 0, 1200)
    inference = RFInfer(window).run()
"""

__version__ = "0.1.0"
