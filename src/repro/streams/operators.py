"""Push-based relational stream operators (CQL subset).

Each operator receives tuples via :meth:`push` and forwards derived
tuples to its subscribers. The subset implemented here is what the
paper's monitoring queries use:

* ``Filter`` / ``Map`` — stateless selection and projection;
* ``LatestByKey`` — the ``[Partition By k Rows 1]`` window: a relation
  holding the newest tuple per key;
* ``NowJoin`` — the ``[Now]`` window joined against such a relation
  (each arriving stream tuple probes the table, Rstream semantics).

**Subscription priorities.** ``subscribe`` takes an optional integer
priority; lower priorities see each tuple first, ties preserve
subscription order. The plan compiler uses this to give ``[Now]`` join
probes CQL's pre-update semantics when the probe side and the build
side of a join share an upstream operator: joins subscribe at the
default priority 0, window *updates* at :data:`WINDOW_UPDATE_PRIORITY`,
so a tuple probes the relation as of the previous instant before being
folded into it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generic, Hashable, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro._util.encoding import ByteReader, ByteWriter
    from repro.streams.state import RowCodec

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "Operator",
    "Filter",
    "Map",
    "LatestByKey",
    "NowJoin",
    "WINDOW_UPDATE_PRIORITY",
]

#: priority window updates subscribe at (after default-0 subscribers),
#: giving join probes the pre-update relation at equal instants.
WINDOW_UPDATE_PRIORITY = 1


class Operator(Generic[T]):
    """Base class wiring push-based subscription."""

    def __init__(self) -> None:
        #: (priority, sequence, sink) kept sorted; sequence breaks ties
        #: by subscription order.
        self._subscribers: list[tuple[int, int, Callable[[Any], None]]] = []
        self._sub_seq = 0

    def subscribe(
        self, sink: "Operator | Callable[[Any], None]", priority: int = 0
    ) -> "Operator":
        """Register a downstream operator (or plain callable)."""
        target = sink.push if isinstance(sink, Operator) else sink
        self._subscribers.append((priority, self._sub_seq, target))
        self._sub_seq += 1
        self._subscribers.sort(key=lambda entry: entry[:2])
        return self

    def emit(self, item: Any) -> None:
        for _, _, sink in self._subscribers:
            sink(item)

    def push(self, item: T) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Filter(Operator[T]):
    """Forward tuples satisfying a predicate."""

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def push(self, item: T) -> None:
        if self.predicate(item):
            self.emit(item)


class Map(Operator[T]):
    """Forward a derived tuple for every input tuple."""

    def __init__(self, fn: Callable[[T], U]) -> None:
        super().__init__()
        self.fn = fn

    def push(self, item: T) -> None:
        self.emit(self.fn(item))


class LatestByKey(Operator[T]):
    """``[Partition By key Rows 1]``: newest tuple per key, as a table.

    When built by the plan compiler the window carries a
    :class:`~repro.streams.state.RowCodec` so site checkpoints can
    serialize the relation exactly (rows sorted by key); a window built
    by hand stays checkpoint-free until one is attached.
    """

    def __init__(
        self,
        key_fn: Callable[[T], Hashable],
        codec: "RowCodec | None" = None,
    ) -> None:
        super().__init__()
        self.key_fn = key_fn
        self.codec = codec
        self.table: dict[Hashable, T] = {}

    def push(self, item: T) -> None:
        self.table[self.key_fn(item)] = item
        self.emit(item)

    def lookup(self, key: Hashable) -> T | None:
        return self.table.get(key)

    def __len__(self) -> int:
        return len(self.table)

    # -- checkpoint hooks (QueryState sections) -----------------------------

    def write_snapshot(self, writer: "ByteWriter") -> None:
        """Append the relation to a checkpoint: count, then rows in
        sorted key order (the wire layout Q1's hand-written snapshot
        established)."""
        if self.codec is None:
            raise ValueError("window has no row codec; cannot checkpoint")
        writer.varint(len(self.table))
        for key in sorted(self.table):
            self.codec.write(writer, self.table[key])

    def read_snapshot(self, reader: "ByteReader") -> None:
        """Inverse of :meth:`write_snapshot` (replaces the table)."""
        if self.codec is None:
            raise ValueError("window has no row codec; cannot restore")
        table: dict[Hashable, T] = {}
        for _ in range(reader.varint()):
            row = self.codec.read(reader)
            table[self.key_fn(row)] = row
        self.table = table


class NowJoin(Operator[T]):
    """``S [Now] ⋈ R``: each stream tuple probes a table and, if the
    probe succeeds, emits ``combine(stream_tuple, table_tuple)``."""

    def __init__(
        self,
        table: LatestByKey,
        probe_key: Callable[[T], Hashable],
        combine: Callable[[T, Any], Any],
        where: Callable[[T, Any], bool] | None = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.probe_key = probe_key
        self.combine = combine
        self.where = where

    def push(self, item: T) -> None:
        match = self.table.lookup(self.probe_key(item))
        if match is None:
            return
        if self.where is not None and not self.where(item, match):
            return
        self.emit(self.combine(item, match))
