"""Push-based relational stream operators (CQL subset).

Each operator receives tuples via :meth:`push` and forwards derived
tuples to its subscribers. The subset implemented here is what the
paper's monitoring queries use:

* ``Filter`` / ``Map`` — stateless selection and projection;
* ``LatestByKey`` — the ``[Partition By k Rows 1]`` window: a relation
  holding the newest tuple per key;
* ``NowJoin`` — the ``[Now]`` window joined against such a relation
  (each arriving stream tuple probes the table, Rstream semantics).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Hashable, TypeVar

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["Operator", "Filter", "Map", "LatestByKey", "NowJoin"]


class Operator(Generic[T]):
    """Base class wiring push-based subscription."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Any], None]] = []

    def subscribe(self, sink: "Operator | Callable[[Any], None]") -> "Operator":
        """Register a downstream operator (or plain callable)."""
        if isinstance(sink, Operator):
            self._subscribers.append(sink.push)
        else:
            self._subscribers.append(sink)
        return self

    def emit(self, item: Any) -> None:
        for sink in self._subscribers:
            sink(item)

    def push(self, item: T) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Filter(Operator[T]):
    """Forward tuples satisfying a predicate."""

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def push(self, item: T) -> None:
        if self.predicate(item):
            self.emit(item)


class Map(Operator[T]):
    """Forward a derived tuple for every input tuple."""

    def __init__(self, fn: Callable[[T], U]) -> None:
        super().__init__()
        self.fn = fn

    def push(self, item: T) -> None:
        self.emit(self.fn(item))


class LatestByKey(Operator[T]):
    """``[Partition By key Rows 1]``: newest tuple per key, as a table."""

    def __init__(self, key_fn: Callable[[T], Hashable]) -> None:
        super().__init__()
        self.key_fn = key_fn
        self.table: dict[Hashable, T] = {}

    def push(self, item: T) -> None:
        self.table[self.key_fn(item)] = item
        self.emit(item)

    def lookup(self, key: Hashable) -> T | None:
        return self.table.get(key)

    def __len__(self) -> int:
        return len(self.table)


class NowJoin(Operator[T]):
    """``S [Now] ⋈ R``: each stream tuple probes a table and, if the
    probe succeeds, emits ``combine(stream_tuple, table_tuple)``."""

    def __init__(
        self,
        table: LatestByKey,
        probe_key: Callable[[T], Hashable],
        combine: Callable[[T, Any], Any],
        where: Callable[[T, Any], bool] | None = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.probe_key = probe_key
        self.combine = combine
        self.where = where

    def push(self, item: T) -> None:
        match = self.table.lookup(self.probe_key(item))
        if match is None:
            return
        if self.where is not None and not self.where(item, match):
            return
        self.emit(self.combine(item, match))
