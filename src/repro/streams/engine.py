"""Driving continuous queries over merged, time-ordered streams.

Local query processing consumes the inference-produced object event
stream together with sensor streams (Fig. 3). The scheduler merges any
number of already-sorted streams by timestamp and pushes each tuple to
the interested queries — a minimal but faithful stand-in for a CQL
engine's shared scheduler.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

__all__ = ["StreamScheduler", "merge_by_time"]


def merge_by_time(*streams: Iterable[Any]) -> Iterator[Any]:
    """Merge time-sorted streams into one time-sorted stream.

    Tie-break contract (explicit, relied upon by callers): the merge is
    *stable*. At equal timestamps, tuples from an earlier argument
    stream precede tuples from a later one, and tuples within one
    stream keep their original order. The site runtime passes
    ``(sensors, events)`` so same-epoch sensor readings land in window
    tables before the object events that probe them.
    """
    return heapq.merge(*streams, key=lambda item: item.time)


class StreamScheduler:
    """Routes merged tuples to per-type handlers.

    Dispatch is O(handlers actually interested), not O(registered
    routes): the first tuple of each exact type resolves its handler
    list by one isinstance-compatible scan (``issubclass``, so
    subclasses still match routes registered on a base class) and the
    result is cached in a kind → handlers map; every later tuple of
    that type is a dictionary hit.
    """

    def __init__(self) -> None:
        self._routes: list[tuple[type, Callable[[Any], None]]] = []
        self._dispatch: dict[type, tuple[Callable[[Any], None], ...]] = {}

    def route(self, kind: type, handler: Callable[[Any], None]) -> "StreamScheduler":
        """Send tuples of ``kind`` (isinstance semantics) to ``handler``."""
        self._routes.append((kind, handler))
        # A new route may match types already cached; rebuild lazily.
        self._dispatch.clear()
        return self

    def handlers_for(self, kind: type) -> tuple[Callable[[Any], None], ...]:
        """The cached handler chain for one exact tuple type."""
        handlers = self._dispatch.get(kind)
        if handlers is None:
            handlers = tuple(
                handler for route_kind, handler in self._routes
                if issubclass(kind, route_kind)
            )
            self._dispatch[kind] = handlers
        return handlers

    def run(self, *streams: Iterable[Any]) -> int:
        """Drain the merged streams; returns tuples processed."""
        count = 0
        dispatch = self._dispatch
        for item in merge_by_time(*streams):
            kind = type(item)
            handlers = dispatch.get(kind)
            if handlers is None:
                handlers = self.handlers_for(kind)
            for handler in handlers:
                handler(item)
            count += 1
        return count
