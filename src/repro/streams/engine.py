"""Driving continuous queries over merged, time-ordered streams.

Local query processing consumes the inference-produced object event
stream together with sensor streams (Fig. 3). The scheduler merges any
number of already-sorted streams by timestamp and pushes each tuple to
the interested queries — a minimal but faithful stand-in for a CQL
engine's shared scheduler.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

__all__ = ["StreamScheduler", "merge_by_time"]


def merge_by_time(*streams: Iterable[Any]) -> Iterator[Any]:
    """Merge time-sorted streams into one time-sorted stream.

    Ties are broken by stream index, keeping the merge stable (sensor
    readings registered before object events at the same epoch if passed
    first)."""
    return heapq.merge(*streams, key=lambda item: item.time)


class StreamScheduler:
    """Routes merged tuples to per-type handlers."""

    def __init__(self) -> None:
        self._routes: list[tuple[type, Callable[[Any], None]]] = []

    def route(self, kind: type, handler: Callable[[Any], None]) -> "StreamScheduler":
        """Send tuples of ``kind`` (isinstance match) to ``handler``."""
        self._routes.append((kind, handler))
        return self

    def run(self, *streams: Iterable[Any]) -> int:
        """Drain the merged streams; returns tuples processed."""
        count = 0
        for item in merge_by_time(*streams):
            for kind, handler in self._routes:
                if isinstance(item, kind):
                    handler(item)
            count += 1
        return count
