"""Compact per-object query-state encoding (§4.2, Appendix B).

The automaton state that migrates with an object is serialized as:
``stage (varint) | start_time (varint) | last_time (varint) |
n_values (varint) | n × float32``. Table 5.4's byte counts are computed
on this wire format, and the centroid-based sharing of
:mod:`repro.distributed.sharing` diffs these byte strings.

The *snapshot* codecs at the bottom serve site checkpoints instead of
migration: they serialize a whole :class:`KleeneDurationPattern` —
every partition's automaton state plus the fired-alert log — with
float64 values. Migration deliberately rounds collected values to
float32 (Table 5.4's byte budget); a checkpoint must not, because a
restored site has to reproduce bit-identical alert values to the run
that never crashed.
"""

from __future__ import annotations

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import EPC, read_epc, write_epc
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState

__all__ = [
    "encode_pattern_state",
    "decode_pattern_state",
    "snapshot_pattern",
    "restore_pattern",
]


def encode_pattern_state(state: PatternState) -> bytes:
    """Serialize one object's automaton state."""
    writer = ByteWriter()
    writer.varint(state.stage)
    writer.varint(state.start_time)
    writer.varint(state.last_time)
    writer.varint(len(state.values))
    for value in state.values:
        writer.float32(value)
    return writer.getvalue()


def decode_pattern_state(data: bytes) -> PatternState:
    """Inverse of :func:`encode_pattern_state`.

    Malformed input raises :class:`ValueError` (never a bare decoder
    error), matching :meth:`repro.core.collapsed.CollapsedState.from_bytes`.
    """
    import struct

    reader = ByteReader(data)
    try:
        stage = reader.varint()
        start_time = reader.varint()
        last_time = reader.varint()
        count = reader.varint()
        values = [reader.float32() for _ in range(count)]
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed pattern state: {exc}") from exc
    if stage > 2:
        raise ValueError(f"malformed pattern state: stage {stage} out of range")
    return PatternState(stage, start_time, last_time, values)


# -- whole-operator snapshots (site checkpoints) ---------------------------


def snapshot_pattern(pattern: KleeneDurationPattern) -> bytes:
    """Serialize every partition's state and the alert log, exactly.

    Partition keys must be :class:`EPC` tags (true for Q1/Q2, which
    partition by ``tag_id``).
    """
    writer = ByteWriter()
    writer.varint(len(pattern.states))
    for key in sorted(pattern.states):
        state = pattern.states[key]
        write_epc(writer, key)
        writer.varint(state.stage)
        writer.varint(state.start_time)
        writer.varint(state.last_time)
        writer.varint(len(state.values))
        for value in state.values:
            writer.float64(value)
    writer.varint(len(pattern.alerts))
    for alert in pattern.alerts:
        write_epc(writer, alert.key)
        writer.varint(alert.start_time)
        writer.varint(alert.end_time)
        writer.varint(len(alert.values))
        for value in alert.values:
            writer.float64(value)
    return writer.getvalue()


def restore_pattern(pattern: KleeneDurationPattern, data: bytes) -> None:
    """Inverse of :func:`snapshot_pattern` (replaces states and alerts)."""
    import struct

    reader = ByteReader(data)
    try:
        states: dict[EPC, PatternState] = {}
        for _ in range(reader.varint()):
            key = read_epc(reader)
            stage = reader.varint()
            start_time = reader.varint()
            last_time = reader.varint()
            values = [reader.float64() for _ in range(reader.varint())]
            if stage > 2:
                raise ValueError(f"stage {stage} out of range")
            states[key] = PatternState(stage, start_time, last_time, values)
        alerts: list[PatternAlert] = []
        for _ in range(reader.varint()):
            key = read_epc(reader)
            start_time = reader.varint()
            end_time = reader.varint()
            values = tuple(reader.float64() for _ in range(reader.varint()))
            alerts.append(PatternAlert(key, start_time, end_time, values))
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed pattern snapshot: {exc}") from exc
    pattern.states = states
    pattern.alerts = alerts
