"""Compact per-object query-state encoding (§4.2, Appendix B).

The automaton state that migrates with an object is serialized as:
``stage (varint) | start_time (varint) | last_time (varint) |
n_values (varint) | n × float32``. Table 5.4's byte counts are computed
on this wire format, and the centroid-based sharing of
:mod:`repro.distributed.sharing` diffs these byte strings.

The *snapshot* codecs serve site checkpoints instead of migration: they
serialize a whole :class:`KleeneDurationPattern` — every partition's
automaton state plus the fired-alert log — with float64 values.
Migration deliberately rounds collected values to float32 (Table 5.4's
byte budget); a checkpoint must not, because a restored site has to
reproduce bit-identical alert values to the run that never crashed.

Pattern partitions are keyed by :class:`EPC` tags by default (Q1/Q2
partition by ``tag_id``); compiled plans that partition by a composite
key — e.g. the dwell monitor's ``(tag, site, place)`` — pass their own
key codec. :class:`RowCodec` describes whole relation rows field by
field so ``[Partition By k Rows 1]`` windows can be checkpointed
generically with the exact layout Q1's hand-written snapshot
established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import (
    EPC,
    read_epc,
    read_opt_epc,
    write_epc,
    write_opt_epc,
)
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState

__all__ = [
    "encode_pattern_state",
    "decode_pattern_state",
    "write_pattern_state",
    "read_pattern_state",
    "snapshot_pattern",
    "restore_pattern",
    "RowCodec",
]


def encode_pattern_state(state: PatternState) -> bytes:
    """Serialize one object's automaton state."""
    writer = ByteWriter()
    write_pattern_state(writer, state)
    return writer.getvalue()


def decode_pattern_state(data: bytes) -> PatternState:
    """Inverse of :func:`encode_pattern_state`.

    Malformed input raises :class:`ValueError` (never a bare decoder
    error), matching :meth:`repro.core.collapsed.CollapsedState.from_bytes`.
    """
    import struct

    reader = ByteReader(data)
    try:
        state = read_pattern_state(reader)
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed pattern state: {exc}") from exc
    return state


def write_pattern_state(writer: ByteWriter, state: PatternState) -> None:
    """Append one migration-grade (float32) automaton state."""
    writer.varint(state.stage)
    writer.varint(state.start_time)
    writer.varint(state.last_time)
    writer.varint(len(state.values))
    for value in state.values:
        writer.float32(value)


def read_pattern_state(reader: ByteReader) -> PatternState:
    """Inverse of :func:`write_pattern_state` (validates the stage)."""
    stage = reader.varint()
    start_time = reader.varint()
    last_time = reader.varint()
    values = [reader.float32() for _ in range(reader.varint())]
    if stage > 2:
        raise ValueError(f"malformed pattern state: stage {stage} out of range")
    return PatternState(stage, start_time, last_time, values)


# -- whole-operator snapshots (site checkpoints) ---------------------------


def snapshot_pattern(
    pattern: KleeneDurationPattern,
    write_key: Callable[[ByteWriter, Any], None] = write_epc,
) -> bytes:
    """Serialize every partition's state and the alert log, exactly.

    ``write_key`` encodes one partition key; the default handles the
    plain :class:`EPC` keys of Q1/Q2 and keeps their checkpoint bytes
    identical to the original hand-written format.
    """
    writer = ByteWriter()
    writer.varint(len(pattern.states))
    for key in sorted(pattern.states):
        state = pattern.states[key]
        write_key(writer, key)
        writer.varint(state.stage)
        writer.varint(state.start_time)
        writer.varint(state.last_time)
        writer.varint(len(state.values))
        for value in state.values:
            writer.float64(value)
    writer.varint(len(pattern.alerts))
    for alert in pattern.alerts:
        write_key(writer, alert.key)
        writer.varint(alert.start_time)
        writer.varint(alert.end_time)
        writer.varint(len(alert.values))
        for value in alert.values:
            writer.float64(value)
    return writer.getvalue()


def restore_pattern(
    pattern: KleeneDurationPattern,
    data: bytes,
    read_key: Callable[[ByteReader], Any] = read_epc,
) -> None:
    """Inverse of :func:`snapshot_pattern` (replaces states and alerts)."""
    import struct

    reader = ByteReader(data)
    try:
        states: dict[Any, PatternState] = {}
        for _ in range(reader.varint()):
            key = read_key(reader)
            stage = reader.varint()
            start_time = reader.varint()
            last_time = reader.varint()
            values = [reader.float64() for _ in range(reader.varint())]
            if stage > 2:
                raise ValueError(f"stage {stage} out of range")
            states[key] = PatternState(stage, start_time, last_time, values)
        alerts: list[PatternAlert] = []
        for _ in range(reader.varint()):
            key = read_key(reader)
            start_time = reader.varint()
            end_time = reader.varint()
            values = tuple(reader.float64() for _ in range(reader.varint()))
            alerts.append(PatternAlert(key, start_time, end_time, values))
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed pattern snapshot: {exc}") from exc
    pattern.states = states
    pattern.alerts = alerts


# -- relation rows (window checkpoints) ------------------------------------

#: field kind → (writer method taking (ByteWriter, value), reader method).
_FIELD_CODECS: dict[str, tuple[Callable, Callable]] = {
    "varint": (lambda w, v: w.varint(v), lambda r: r.varint()),
    "svarint": (lambda w, v: w.svarint(v), lambda r: r.svarint()),
    "float64": (lambda w, v: w.float64(v), lambda r: r.float64()),
    "float32": (lambda w, v: w.float32(v), lambda r: r.float32()),
    "epc": (write_epc, read_epc),
    "opt_epc": (write_opt_epc, read_opt_epc),
}


@dataclass(frozen=True)
class RowCodec:
    """Field-by-field wire codec for one relation row type.

    ``fields`` maps attribute names to primitive kinds (``varint``,
    ``svarint``, ``float64``, ``float32``, ``epc``, ``opt_epc``);
    ``row`` is the tuple class rebuilt on decode. Declared in query
    specs so checkpointing a window never needs per-query code.
    """

    fields: tuple[tuple[str, str], ...]
    row: type

    def __post_init__(self) -> None:
        for name, kind in self.fields:
            if kind not in _FIELD_CODECS:
                raise ValueError(f"unknown field kind {kind!r} for {name!r}")

    def write(self, writer: ByteWriter, item: Any) -> None:
        for name, kind in self.fields:
            _FIELD_CODECS[kind][0](writer, getattr(item, name))

    def read(self, reader: ByteReader) -> Any:
        return self.row(*(_FIELD_CODECS[kind][1](reader) for _, kind in self.fields))

    def signature(self) -> tuple:
        return ("rowcodec", self.fields, self.row.__qualname__)
