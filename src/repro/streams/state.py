"""Compact per-object query-state encoding (§4.2, Appendix B).

The automaton state that migrates with an object is serialized as:
``stage (varint) | start_time (varint) | last_time (varint) |
n_values (varint) | n × float32``. Table 5.4's byte counts are computed
on this wire format, and the centroid-based sharing of
:mod:`repro.distributed.sharing` diffs these byte strings.
"""

from __future__ import annotations

from repro._util.encoding import ByteReader, ByteWriter
from repro.streams.pattern import PatternState

__all__ = ["encode_pattern_state", "decode_pattern_state"]


def encode_pattern_state(state: PatternState) -> bytes:
    """Serialize one object's automaton state."""
    writer = ByteWriter()
    writer.varint(state.stage)
    writer.varint(state.start_time)
    writer.varint(state.last_time)
    writer.varint(len(state.values))
    for value in state.values:
        writer.float32(value)
    return writer.getvalue()


def decode_pattern_state(data: bytes) -> PatternState:
    """Inverse of :func:`encode_pattern_state`.

    Malformed input raises :class:`ValueError` (never a bare decoder
    error), matching :meth:`repro.core.collapsed.CollapsedState.from_bytes`.
    """
    import struct

    reader = ByteReader(data)
    try:
        stage = reader.varint()
        start_time = reader.varint()
        last_time = reader.varint()
        count = reader.varint()
        values = [reader.float32() for _ in range(count)]
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed pattern state: {exc}") from exc
    if stage > 2:
        raise ValueError(f"malformed pattern state: stage {stage} out of range")
    return PatternState(stage, start_time, last_time, values)
