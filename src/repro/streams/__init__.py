"""CQL-style continuous query processing with pattern matching.

The paper's query processor is CQL [2] extended with SASE-style pattern
matching [1] (§2, §4.2, Appendix B). This package provides the pieces
those queries need:

* :mod:`repro.streams.operators` — push-based relational operators
  (filter, map, partitioned Rows-1 windows, Now-window joins);
* :mod:`repro.streams.pattern` — the ``SEQ(A+)`` Kleene-plus automaton
  with per-partition (per-object) state;
* :mod:`repro.streams.state` — compact per-object query-state encoding
  used for state migration and centroid sharing;
* :mod:`repro.streams.engine` — a time-ordered scheduler that drives
  queries over merged event and sensor streams.
"""

from repro.streams.engine import StreamScheduler
from repro.streams.operators import Filter, LatestByKey, Map, NowJoin
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState
from repro.streams.state import decode_pattern_state, encode_pattern_state

__all__ = [
    "Filter",
    "KleeneDurationPattern",
    "LatestByKey",
    "Map",
    "NowJoin",
    "PatternAlert",
    "PatternState",
    "StreamScheduler",
    "decode_pattern_state",
    "encode_pattern_state",
]
