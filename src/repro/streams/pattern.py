"""SASE-style ``SEQ(A+)`` pattern matching with per-object state.

Query 1's outer block is::

    [ Pattern SEQ(A+)
      Where A[i].tag_id = A[1].tag_id and
            A[A.len].time > A[1].time + 6 hrs ]

i.e. a run of qualifying tuples for the same object whose span exceeds a
duration. The automaton state per object is exactly what Appendix B
prescribes for migration: (i) the current automaton state, (ii) the
minimum values needed for future evaluation (first-event time), and
(iii) the values the query returns (the collected readings). That state
is what :mod:`repro.streams.state` serializes and what the
centroid-sharing technique (§4.2) compresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, NamedTuple

from repro.streams.operators import Operator

__all__ = ["PatternState", "PatternAlert", "KleeneDurationPattern"]


class PatternAlert(NamedTuple):
    """A completed pattern match."""

    key: Hashable
    start_time: int
    end_time: int
    values: tuple[float, ...]


@dataclass
class PatternState:
    """Automaton state of one partition (one object)."""

    #: 0 = waiting for first A; 1 = inside A+; 2 = already fired.
    stage: int = 0
    start_time: int = 0
    last_time: int = 0
    values: list[float] = field(default_factory=list)

    def reset(self) -> None:
        self.stage = 0
        self.start_time = 0
        self.last_time = 0
        self.values.clear()


class KleeneDurationPattern(Operator):
    """``SEQ(A+)`` per key with a minimum-span firing condition.

    Parameters
    ----------
    key_fn:
        Partitioning function (Q1/Q2: the tag id).
    time_fn:
        Event timestamp accessor.
    value_fn:
        Value collected from each qualifying event (Q1/Q2: temperature).
    duration:
        Fire when ``last.time > first.time + duration``.
    max_values:
        Cap on the collected value list (bounds per-object state size).
    refire_gap:
        After firing, suppress further alerts for the same run; a new
        run starts after a reset. ``None`` fires at most once per run.
    max_gap:
        Treat a silence longer than ``max_gap`` between consecutive
        qualifying events as a run break: the stale partial (or fired)
        state resets and the arriving event starts a fresh run. ``None``
        (the default, used by Q1/Q2) keeps runs alive across any gap —
        those queries break runs explicitly via :meth:`reset_key`.
        Dwell-style monitors, whose partitions simply stop receiving
        events when the object moves away, rely on it instead.
    """

    def __init__(
        self,
        key_fn: Callable[[Any], Hashable],
        time_fn: Callable[[Any], int],
        value_fn: Callable[[Any], float],
        duration: int,
        max_values: int = 64,
        refire_gap: int | None = None,
        max_gap: int | None = None,
    ) -> None:
        super().__init__()
        self.key_fn = key_fn
        self.time_fn = time_fn
        self.value_fn = value_fn
        self.duration = duration
        self.max_values = max_values
        self.refire_gap = refire_gap
        self.max_gap = max_gap
        self.states: dict[Hashable, PatternState] = {}
        self.alerts: list[PatternAlert] = []

    def state_of(self, key: Hashable) -> PatternState:
        state = self.states.get(key)
        if state is None:
            state = PatternState()
            self.states[key] = state
        return state

    def push(self, event: Any) -> None:
        key = self.key_fn(event)
        time = self.time_fn(event)
        state = self.state_of(key)
        if (
            self.max_gap is not None
            and state.stage != 0
            and time > state.last_time + self.max_gap
        ):
            state.reset()
        if state.stage == 0:
            state.stage = 1
            state.start_time = time
            state.values.clear()
        state.last_time = time
        if len(state.values) < self.max_values:
            state.values.append(float(self.value_fn(event)))
        if state.stage == 1 and time > state.start_time + self.duration:
            state.stage = 2
            alert = PatternAlert(key, state.start_time, time, tuple(state.values))
            self.alerts.append(alert)
            self.emit(alert)
        elif state.stage == 2 and self.refire_gap is not None:
            if time > state.last_time + self.refire_gap:
                state.stage = 1
                state.start_time = time

    def reset_key(self, key: Hashable, time: int) -> None:
        """The negative condition: the run is broken (Q1: the product is
        back inside a freezer), so the partial match is discarded."""
        state = self.states.get(key)
        if state is not None:
            state.reset()

    # -- migration support -------------------------------------------------

    def export_state(self, key: Hashable) -> PatternState | None:
        return self.states.get(key)

    def import_state(self, key: Hashable, state: PatternState) -> None:
        self.states[key] = state

    def absorb_state(self, key: Hashable, incoming: PatternState) -> None:
        """Merge a migrated automaton state with any local partial match.

        When an object's state arrives *after* the new site has already
        processed the object's first local events (the runtime runs
        inference ticks before routing arrivals), the local automaton
        may hold a young partial run. For a duration pattern the two
        runs are one continuous exposure, so the merge keeps the
        earliest start, the latest event, and the concatenated values —
        and a run that already fired at the previous site suppresses a
        duplicate alert here. If the *combined* span already satisfies
        the duration, the alert fires at merge time: the qualifying
        event exists (the local partial's last event), it just arrived
        before the migrated start of the run.
        """
        local = self.states.get(key)
        if local is None or local.stage == 0:
            self.states[key] = incoming
            local = incoming
        elif incoming.stage == 0:
            return  # nothing was in progress at the previous site
        else:
            if incoming.stage == 2:
                local.stage = 2
            if incoming.start_time < local.start_time:
                local.start_time = incoming.start_time
                local.values = (incoming.values + local.values)[: self.max_values]
            local.last_time = max(local.last_time, incoming.last_time)
        if local.stage == 1 and local.last_time > local.start_time + self.duration:
            local.stage = 2
            alert = PatternAlert(
                key, local.start_time, local.last_time, tuple(local.values)
            )
            self.alerts.append(alert)
            self.emit(alert)

    def evict(self, key: Hashable) -> None:
        self.states.pop(key, None)
