"""Object Naming Service (§4, migration strategy ii).

"When an object reaches a new site, the server there can locate the
object's previous place using the Object Naming Service (ONS) and
retrieve its state from that place."

The registry maps tag → last known site. Lookups and updates are tiny
messages; they are still accounted through the network so the CR
strategy's cost includes its control traffic.
"""

from __future__ import annotations

from repro._util.encoding import ByteWriter
from repro.distributed.network import Network
from repro.sim.tags import EPC

__all__ = ["ObjectNamingService"]

#: the ONS server's synthetic site id in the cost ledger.
ONS_SITE = -2


class ObjectNamingService:
    """Central registry of each object's current site."""

    def __init__(self, network: Network | None = None) -> None:
        self.network = network
        self._registry: dict[EPC, int] = {}

    def _record(self, actor_site: int, kind: str, tag: EPC) -> None:
        if self.network is None:
            return
        payload = ByteWriter().varint(int(tag.kind)).varint(tag.serial).getvalue()
        self.network.send(actor_site, ONS_SITE, kind, payload)

    def update(self, tag: EPC, site: int) -> None:
        """Record that ``tag`` is now handled by ``site``."""
        self._record(site, "ons-update", tag)
        self._registry[tag] = site

    def lookup(self, tag: EPC, asking_site: int) -> int | None:
        """Return the site previously responsible for ``tag``."""
        self._record(asking_site, "ons-lookup", tag)
        return self._registry.get(tag)

    def __len__(self) -> int:
        return len(self._registry)
