"""Writable tag memory (§4, migration strategy iii).

Passive tags carry 4–64 KB of writable memory; writing an object's
inference + query state onto its own tag makes the state available
"anytime anywhere" with zero network cost (a copy stays at the writing
site as backup). This module models the tag's memory budget so the
strategy's feasibility can be evaluated: collapsed inference state plus
pattern state is a few dozen bytes, far below even the smallest tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.tags import EPC

__all__ = ["TagMemory", "TagMemoryError"]


class TagMemoryError(RuntimeError):
    """Raised when a write exceeds the tag's memory budget."""


@dataclass
class TagMemory:
    """On-tag key→bytes storage with a capacity budget."""

    capacity_bytes: int = 4096
    _sections: dict[EPC, dict[str, bytes]] = field(default_factory=dict)

    def write(self, tag: EPC, section: str, data: bytes) -> None:
        sections = self._sections.setdefault(tag, {})
        projected = sum(
            len(v) for k, v in sections.items() if k != section
        ) + len(data)
        if projected > self.capacity_bytes:
            raise TagMemoryError(
                f"{tag}: {projected} bytes exceeds tag capacity "
                f"{self.capacity_bytes}"
            )
        sections[section] = data

    def read(self, tag: EPC, section: str) -> bytes | None:
        return self._sections.get(tag, {}).get(section)

    def used(self, tag: EPC) -> int:
        return sum(len(v) for v in self._sections.get(tag, {}).values())

    def erase(self, tag: EPC) -> None:
        self._sections.pop(tag, None)
