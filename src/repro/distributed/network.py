"""The communication-cost ledger, with per-kind and per-link accounting.

All migrated state crosses a transport that records into this ledger,
so Table 5's communication-cost comparison (centralized vs None vs CR)
is simply the per-kind sums it accumulates, and the per-link
``(src, dst)`` counters give the table's site-to-site breakdown.

Synthetic site ids appear as endpoints: ``-1`` is the central server
(centralized baseline), ``-2`` the Object Naming Service.

Fault-tolerance traffic is kept out of the paper's data kinds: the
at-least-once layer accounts retransmitted payload bytes under the
``retransmit`` kind and acknowledgement frames under ``ack``, so a run
over a lossy transport reports byte-identical *data* totals to the
fault-free run plus an explicit fault-overhead column (Table 5d).

The ad-hoc gauges that grew around the byte kinds (query-plan sharing,
shard/worker load, serving retransmits, edge degradation, stability-gate
pruning) now live on an always-on :class:`~repro.obs.MetricsRegistry`
behind compat properties, so they share one encoding/merge protocol with
the rest of the telemetry layer. The byte kinds themselves stay native
``Counter`` objects: ``send()`` is the hot path, and keeping it
unchanged is what keeps Table 5 accounting byte-identical by
construction.
"""

from __future__ import annotations

from collections import Counter
from typing import NamedTuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "Message",
    "Network",
    "ACK",
    "EDGE_ACK",
    "RETRANSMIT",
    "FAULT_OVERHEAD_KINDS",
]

#: ledger kind for at-least-once acknowledgement frames.
ACK = "ack"
#: ledger kind for the ingest gateway's batch acknowledgements (the
#: edge plane's equivalent of ``ack``; a separate kind keeps edge
#: delivery overhead visible next to the federation's).
EDGE_ACK = "edge-ack"
#: ledger kind for every repeated transmission of a sequenced envelope —
#: reliability-layer retransmits and network-injected duplicates alike.
RETRANSMIT = "retransmit"
#: kinds that exist only because links are lossy.
FAULT_OVERHEAD_KINDS = (ACK, EDGE_ACK, RETRANSMIT)


class Message(NamedTuple):
    """One delivered message."""

    src: int
    dst: int
    kind: str
    payload: bytes


def _registry_counter_property(metric: str, doc: str):
    """A compat property backed by a registry counter: reads return the
    counter's value, writes overwrite it (legacy ``+=`` sites compile to
    read-then-write, which lands on the same series)."""

    def _get(self: "Network") -> int:
        return self.registry.counter(metric).value

    def _set(self: "Network", value: int) -> None:
        self.registry.counter(metric).set(value)

    return property(_get, _set, doc=doc)


class Network:
    """Reliable in-order delivery with cost accounting."""

    def __init__(self, keep_log: bool = False):
        self.bytes_by_kind: Counter = Counter()
        self.messages_by_kind: Counter = Counter()
        #: per-link counters keyed by the ``(src, dst)`` pair.
        self.bytes_by_link: Counter = Counter()
        self.messages_by_link: Counter = Counter()
        self.log: list[Message] = []
        self.keep_log = keep_log
        #: the ledger's own always-on metrics registry — every gauge
        #: below is a view onto a series here. Kept outside the byte
        #: kinds so Table 5's accounting is untouched.
        self.registry = MetricsRegistry()
        #: shard/worker load gauges (process-parallel transports):
        #: current site count per worker and cumulative envelope bytes
        #: delivered into / originated out of each worker's shard.
        self.shard_sites: dict = {}
        self.shard_bytes_in: Counter = Counter()
        self.shard_bytes_out: Counter = Counter()

    # -- registry-backed gauges (compat properties) ---------------------------
    #: query-plan operator gauges (multi-query optimization): operator
    #: instances actually built across all sites' engines, and
    #: registrations served by an operator another query already built.
    plan_operators_built = _registry_counter_property(
        "plan_operators_built", "operator instances built across all sites"
    )
    plan_operators_shared = _registry_counter_property(
        "plan_operators_shared", "operator registrations served by sharing"
    )
    rebalances = _registry_counter_property(
        "rebalances", "times the shard rebalancer moved a site"
    )
    #: serving-frontend gauge: history-request retransmissions issued by
    #: the gather loop (capped-backoff schedule).
    frontend_retransmits = _registry_counter_property(
        "frontend_retransmits", "history-request retransmissions"
    )
    #: edge-ingestion gauges (the readings → edge → gateway hop): batch
    #: payloads that arrived for an already-sealed epoch window, how many
    #: of those were dropped vs merged by a bounded window re-run, and
    #: duplicate batches the gateway's sequence window absorbed.
    edge_late_readings = _registry_counter_property(
        "edge_late_readings", "readings that arrived after their window sealed"
    )
    edge_late_dropped = _registry_counter_property(
        "edge_late_dropped", "late readings dropped by the drop policy"
    )
    edge_window_reruns = _registry_counter_property(
        "edge_window_reruns", "sealed windows re-run to merge late readings"
    )
    edge_duplicate_batches = _registry_counter_property(
        "edge_duplicate_batches", "duplicate batches the dedup window absorbed"
    )

    @property
    def pruned_tags(self) -> Counter:
        """Per-site cumulative tags the stability gate skipped (view onto
        the registry's site-labeled ``pruned_tags`` series)."""
        return self._site_counter("pruned_tags")

    @property
    def full_inference_tags(self) -> Counter:
        """Per-site cumulative tags that ran full inference."""
        return self._site_counter("full_inference_tags")

    def _site_counter(self, metric: str) -> Counter:
        out: Counter = Counter()
        for series in self.registry.counters():
            if series.name == metric:
                out[int(dict(series.labels)["site"])] = series.value
        return out

    def send(self, src: int, dst: int, kind: str, payload: bytes) -> bytes:
        """Deliver ``payload`` and account for its size."""
        self.bytes_by_kind[kind] += len(payload)
        self.messages_by_kind[kind] += 1
        self.bytes_by_link[(src, dst)] += len(payload)
        self.messages_by_link[(src, dst)] += 1
        if self.keep_log:
            self.log.append(Message(src, dst, kind, payload))
        return payload

    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    # -- fault-overhead breakdown --------------------------------------------

    def data_bytes_by_kind(self) -> dict[str, int]:
        """Per-kind byte totals excluding reliability-layer overhead.

        Under any seeded fault plan these match the fault-free run
        exactly (the chaos harness's ledger invariant)."""
        return {
            kind: count
            for kind, count in self.bytes_by_kind.items()
            if kind not in FAULT_OVERHEAD_KINDS
        }

    def fault_overhead_bytes(self) -> int:
        """Bytes spent surviving the network: retransmits + acks."""
        return sum(self.bytes_by_kind[kind] for kind in FAULT_OVERHEAD_KINDS)

    # -- per-link breakdown --------------------------------------------------

    def links(self) -> list[tuple[int, int]]:
        """Every ``(src, dst)`` pair that carried traffic, sorted."""
        return sorted(self.bytes_by_link)

    def link_bytes(self, src: int, dst: int) -> int:
        return self.bytes_by_link[(src, dst)]

    def link_messages(self, src: int, dst: int) -> int:
        return self.messages_by_link[(src, dst)]

    def per_link_rows(self) -> list[tuple[int, int, int, int]]:
        """``(src, dst, messages, bytes)`` rows for benchmark tables."""
        return [
            (src, dst, self.messages_by_link[(src, dst)], self.bytes_by_link[(src, dst)])
            for src, dst in self.links()
        ]

    # -- shard/worker breakdown -----------------------------------------------

    def note_shard_sites(self, sites_by_worker: dict[int, int]) -> None:
        """Record the current site count per worker (gauge, not a sum)."""
        self.shard_sites = dict(sites_by_worker)

    def note_shard_traffic(
        self, worker: int, in_bytes: int = 0, out_bytes: int = 0
    ) -> None:
        self.shard_bytes_in[worker] += in_bytes
        self.shard_bytes_out[worker] += out_bytes

    def note_rebalance(self) -> None:
        self.registry.counter("rebalances").inc()

    # -- serving / edge gauges -------------------------------------------------

    def note_frontend_retransmits(self, n: int = 1) -> None:
        self.registry.counter("frontend_retransmits").inc(n)

    def note_edge_late(self, n: int = 1, dropped: int = 0) -> None:
        self.registry.counter("edge_late_readings").inc(n)
        self.registry.counter("edge_late_dropped").inc(dropped)

    def note_edge_rerun(self, n: int = 1) -> None:
        self.registry.counter("edge_window_reruns").inc(n)

    def note_edge_duplicate(self, n: int = 1) -> None:
        self.registry.counter("edge_duplicate_batches").inc(n)

    def note_pruning(self, site: int, pruned: int, full: int) -> None:
        """Record one boundary's stability-gate split for ``site``."""
        self.registry.counter("pruned_tags", site=site).inc(pruned)
        self.registry.counter("full_inference_tags", site=site).inc(full)

    def pruning_gauges(self) -> dict[str, dict[int, int]]:
        """Per-site skip-rate gauges of the online stability gate."""
        return {
            "pruned_tags": dict(self.pruned_tags),
            "full_inference_tags": dict(self.full_inference_tags),
        }

    def edge_gauges(self) -> dict[str, int]:
        """The edge plane's degradation gauges, for reports and benches."""
        return {
            "late_readings": self.edge_late_readings,
            "late_dropped": self.edge_late_dropped,
            "window_reruns": self.edge_window_reruns,
            "duplicate_batches": self.edge_duplicate_batches,
        }

    def worker_rows(self) -> list[tuple[int, int, int, int]]:
        """``(worker, shard_sites, bytes_in, bytes_out)`` rows; empty
        when no sharded transport fed the ledger."""
        workers = sorted(
            set(self.shard_sites) | set(self.shard_bytes_in) | set(self.shard_bytes_out)
        )
        return [
            (
                w,
                self.shard_sites.get(w, 0),
                self.shard_bytes_in[w],
                self.shard_bytes_out[w],
            )
            for w in workers
        ]
