"""Message passing between sites, with byte accounting.

All migrated state crosses this interface, so Table 5's communication
cost comparison (centralized vs None vs CR) is simply the per-kind sums
this ledger accumulates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = ["Message", "Network"]


class Message(NamedTuple):
    """One delivered message."""

    src: int
    dst: int
    kind: str
    payload: bytes


@dataclass
class Network:
    """Reliable in-order delivery with cost accounting."""

    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    log: list[Message] = field(default_factory=list)
    keep_log: bool = False

    def send(self, src: int, dst: int, kind: str, payload: bytes) -> bytes:
        """Deliver ``payload`` and account for its size."""
        self.bytes_by_kind[kind] += len(payload)
        self.messages_by_kind[kind] += 1
        if self.keep_log:
            self.log.append(Message(src, dst, kind, payload))
        return payload

    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())
