"""Multi-site deployment with state migration (§4, Fig. 3).

Sites process their local streams in lockstep intervals. When a site
first observes a tag, it asks the ONS for the object's previous site
and — under the ``collapsed`` (CR) strategy — fetches the object's
collapsed inference state (candidate weights) from there, seeding local
inference with the object's history without shipping a single raw
reading. The ``none`` strategy transfers nothing, so each site starts
from scratch (Fig. 5e/f's "None" line); its communication cost is zero
(Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from repro.core.collapsed import CollapsedState
from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.network import Network
from repro.distributed.ons import ObjectNamingService
from repro.metrics.accuracy import containment_error_rate
from repro.sim.supplychain import SupplyChainResult
from repro.sim.tags import EPC, TagKind

__all__ = ["DistributedDeployment", "MigrationEvent"]

MigrationStrategy = Literal["none", "collapsed"]


@dataclass(frozen=True)
class MigrationEvent:
    """One object's state hand-off between sites."""

    tag: EPC
    src: int
    dst: int
    time: int
    bytes_sent: int


@dataclass
class _Snapshot:
    time: int
    containment: dict[EPC, EPC | None]
    known: set[EPC] = field(default_factory=set)


class DistributedDeployment:
    """Runs one inference service per site, migrating state on arrival."""

    def __init__(
        self,
        result: SupplyChainResult,
        config: ServiceConfig | None = None,
        strategy: MigrationStrategy = "collapsed",
        network: Network | None = None,
        migration_listener: Callable[[int, int, list[EPC], int], None] | None = None,
    ) -> None:
        if strategy not in ("none", "collapsed"):
            raise ValueError(f"unknown migration strategy {strategy!r}")
        self.result = result
        self.config = config or ServiceConfig(emit_events=False)
        self.strategy = strategy
        self.network = network if network is not None else Network()
        self.ons = ObjectNamingService(self.network)
        self.services = [
            StreamingInference(trace, self.config) for trace in result.traces
        ]
        self.migrations: list[MigrationEvent] = []
        self.migration_listener = migration_listener
        self._seen: list[set[EPC]] = [set() for _ in result.traces]
        self._current_site: dict[EPC, int] = {}
        self.snapshots: list[_Snapshot] = []

    # -- arrival handling ----------------------------------------------------

    def _handle_arrivals(self, site: int, lo: int, hi: int) -> None:
        trace = self.result.traces[site]
        fresh = sorted(
            {r.tag for r in trace.readings_in(lo, hi)} - self._seen[site]
        )
        if not fresh:
            return
        self._seen[site].update(fresh)
        by_source: dict[int, list[EPC]] = {}
        for tag in fresh:
            if self.strategy == "none":
                self._current_site[tag] = site
                continue
            previous = self.ons.lookup(tag, site)
            self.ons.update(tag, site)
            self._current_site[tag] = site
            if previous is not None and previous != site:
                by_source.setdefault(previous, []).append(tag)
        if self.strategy != "collapsed":
            return
        for src, tags in sorted(by_source.items()):
            total = 0
            for tag in tags:
                state = self.services[src].export_state(tag)
                payload = state.to_bytes()
                self.network.send(src, site, "inference-state", payload)
                self.services[site].absorb_state(CollapsedState.from_bytes(payload))
                total += len(payload)
                self.migrations.append(
                    MigrationEvent(tag, src, site, hi, len(payload))
                )
            if self.migration_listener is not None:
                self.migration_listener(src, site, tags, hi)

    # -- the lockstep loop ------------------------------------------------------

    def run(self, horizon: int | None = None) -> None:
        """Process every site in lockstep up to ``horizon``."""
        if horizon is None:
            horizon = self.result.params.horizon
        interval = self.config.run_interval
        for boundary in range(interval, horizon + 1, interval):
            for site, service in enumerate(self.services):
                self._handle_arrivals(site, boundary - interval, boundary)
                service.run_at(boundary)
            self.snapshots.append(self._snapshot(boundary))

    def _snapshot(self, time: int) -> _Snapshot:
        merged: dict[EPC, EPC | None] = {}
        known: set[EPC] = set()
        for tag, site in self._current_site.items():
            merged[tag] = self.services[site].containment.get(tag)
            known.add(tag)
        if self.strategy == "none":
            # Without ONS traffic, ownership falls to the latest seen set.
            for site, seen in enumerate(self._seen):
                for tag in seen:
                    known.add(tag)
        return _Snapshot(time, merged, known)

    # -- metrics ------------------------------------------------------------------

    def containment_error(self) -> float:
        """Mean containment error across lockstep snapshots.

        Each snapshot is scored over the items any site has seen by
        then, against the ground truth at the snapshot time.
        """
        truth = self.result.truth
        scores = []
        for snap in self.snapshots:
            items = [t for t in snap.known if t.kind is TagKind.ITEM]
            if not items:
                continue
            scores.append(
                containment_error_rate(truth, snap.containment, snap.time - 1, items)
            )
        return float(np.mean(scores)) if scores else 0.0

    def detected_changes(self):
        """Change points pooled across sites."""
        out = []
        for service in self.services:
            out.extend(service.changes)
        return out

    def communication_bytes(self) -> int:
        return self.network.total_bytes()
