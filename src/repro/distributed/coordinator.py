"""Multi-site deployment facade (§4, Fig. 3).

:class:`DistributedDeployment` keeps the original constructor and
metric surface (Fig. 5e/f, Table 5 benchmarks run unchanged) but is now
a thin facade over the event-driven :mod:`repro.runtime`: one
:class:`~repro.runtime.node.SiteNode` per site, message-passing
migration with **batched, centroid-compressed** state bundles, and a
pluggable transport (deterministic in-process by default; pass a
:class:`~repro.runtime.transport.ThreadedTransport` to run sites on
worker threads).

Under the ``collapsed`` (CR) strategy, a site that first observes a tag
asks the ONS for the object's previous site and requests its collapsed
inference state (candidate weights) from there — seeding local
inference with the object's history without shipping a single raw
reading. The ``none`` strategy transfers nothing, so each site starts
from scratch (Fig. 5e/f's "None" line); its communication cost is zero
(Table 5).
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.network import Network
from repro.runtime.cluster import Cluster, ClusterSnapshot
from repro.runtime.envelope import MigrationEvent
from repro.runtime.transport import InProcessTransport, Transport
from repro.sim.supplychain import SupplyChainResult
from repro.sim.tags import EPC

__all__ = ["DistributedDeployment", "MigrationEvent"]

MigrationStrategy = Literal["none", "collapsed"]


class DistributedDeployment:
    """Runs one inference service per site, migrating state on arrival."""

    def __init__(
        self,
        result: SupplyChainResult,
        config: ServiceConfig | None = None,
        strategy: MigrationStrategy = "collapsed",
        network: Network | None = None,
        migration_listener: Callable[[int, int, list[EPC], int], None] | None = None,
        transport: Transport | None = None,
        batch_migrations: bool = True,
    ) -> None:
        if transport is None:
            transport = InProcessTransport(ledger=network)
        elif network is not None and transport.ledger is not network:
            raise ValueError("pass the ledger via the transport, not both")
        self.result = result
        self.config = config or ServiceConfig(emit_events=False)
        self.strategy = strategy
        self.cluster = Cluster(
            result.traces,
            self.config,
            strategy=strategy,
            transport=transport,
            batch_migrations=batch_migrations,
            migration_listener=migration_listener,
        )
        self.network = self.cluster.network
        self.ons = self.cluster.ons

    # -- delegation to the runtime ----------------------------------------

    @property
    def services(self) -> list[StreamingInference]:
        return self.cluster.services

    @property
    def migrations(self) -> list[MigrationEvent]:
        return self.cluster.migrations

    @property
    def snapshots(self) -> list[ClusterSnapshot]:
        return self.cluster.snapshots

    def run(self, horizon: int | None = None) -> None:
        """Process every site up to ``horizon`` (default: the sim's)."""
        if horizon is None:
            horizon = self.result.params.horizon
        self.cluster.run(horizon)

    # -- metrics ------------------------------------------------------------

    def containment_error(self) -> float:
        """Mean containment error across interval snapshots."""
        return self.cluster.containment_error(self.result.truth)

    def detected_changes(self):
        """Change points pooled across sites."""
        return self.cluster.detected_changes()

    def communication_bytes(self) -> int:
        return self.cluster.communication_bytes()

    def fault_overhead_bytes(self) -> int:
        """Retransmit + ack bytes (nonzero only on lossy transports)."""
        return self.cluster.fault_overhead_bytes()

    def close(self) -> None:
        self.cluster.close()
