"""Centroid-based query-state sharing (§4.2, Appendix B).

"We choose the most representative query state (the centroid) of all
Qo's based on a distance function that counts the number of bytes that
differ in the query state of two objects. ... Given the centroid, we
compress the query states of other objects based on the distance to
the centroid."

Objects leaving in the same container share most of their automaton
state (same stage, similar timestamps, similar collected values), so
encoding each non-centroid state as a byte-level diff against the
centroid shrinks the migrated bundle by roughly the 10× the paper's
§5.4 table reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import EPC, read_epc, write_epc

__all__ = ["byte_distance", "state_diff", "apply_diff", "SharedStateBundle", "centroid_compress"]


def byte_distance(a: bytes, b: bytes) -> int:
    """Number of differing bytes between two states (the paper's
    distance function): total length minus twice the matched bytes."""
    matcher = SequenceMatcher(None, a, b, autojunk=False)
    matched = sum(block.size for block in matcher.get_matching_blocks())
    return (len(a) - matched) + (len(b) - matched)


def _varint_len(value: int) -> int:
    """Encoded size of a varint (≥1 byte per 7 bits)."""
    return max(1, (value.bit_length() + 6) // 7)


def state_diff(base: bytes, target: bytes) -> bytes:
    """Encode ``target`` as edit operations against ``base``.

    Wire format per opcode: ``op (varint: 0=copy, 1=insert, 2=whole
    state identical to base)`` followed by ``start,len`` varints for
    copies or ``len + literal bytes`` for inserts. The identical case
    gets its own one-byte opcode because quiescent automaton states are
    byte-for-byte equal across most objects of a container.

    The encoder is cost-aware: an equal block is emitted as a copy only
    when the copy encoding is shorter than inlining the bytes — short
    matches interleaved with float noise (typical of collapsed weight
    states) would otherwise make the diff *larger* than the raw state —
    and a whole-state literal is the fallback ceiling, so a diff never
    costs more than ``len(target) + 2``.
    """
    if target == base:
        return ByteWriter().varint(2).getvalue()
    writer = ByteWriter()
    pending = bytearray()  # literal run awaiting flush

    def flush() -> None:
        if pending:
            writer.varint(1).blob(bytes(pending))
            pending.clear()

    matcher = SequenceMatcher(None, base, target, autojunk=False)
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            copy_cost = 1 + _varint_len(i1) + _varint_len(i2 - i1)
            if i2 - i1 > copy_cost:
                flush()
                writer.varint(0).varint(i1).varint(i2 - i1)
            else:
                pending.extend(target[j1:j2])  # same bytes as the base run
        elif tag in ("replace", "insert"):
            pending.extend(target[j1:j2])
        # deletions need no output: absent copies skip base bytes.
    flush()
    encoded = writer.getvalue()
    whole = ByteWriter().varint(1).blob(target).getvalue()
    return whole if len(whole) < len(encoded) else encoded


def apply_diff(base: bytes, diff: bytes) -> bytes:
    """Reconstruct the target state from a base and its diff.

    A malformed diff (truncated varints or literals, unknown opcodes)
    raises :class:`ValueError`.
    """
    reader = ByteReader(diff)
    out = bytearray()
    try:
        while not reader.exhausted():
            op = reader.varint()
            if op == 0:
                start = reader.varint()
                length = reader.varint()
                out.extend(base[start : start + length])
            elif op == 1:
                out.extend(reader.blob())
            elif op == 2:
                return bytes(base)
            else:
                raise ValueError(f"unknown diff opcode {op}")
    except EOFError as exc:
        raise ValueError(f"malformed state diff: {exc}") from exc
    return bytes(out)


@dataclass
class SharedStateBundle:
    """A centroid plus per-object diffs, ready for the wire."""

    centroid_tag: EPC
    centroid_state: bytes
    diffs: dict[EPC, bytes]

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        write_epc(writer, self.centroid_tag)
        writer.blob(self.centroid_state)
        writer.varint(len(self.diffs))
        for tag in sorted(self.diffs):
            write_epc(writer, tag)
            writer.blob(self.diffs[tag])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SharedStateBundle":
        reader = ByteReader(data)
        centroid_tag = read_epc(reader)
        centroid_state = reader.blob()
        count = reader.varint()
        diffs: dict[EPC, bytes] = {}
        for _ in range(count):
            tag = read_epc(reader)
            diffs[tag] = reader.blob()
        return cls(centroid_tag, centroid_state, diffs)

    def byte_size(self) -> int:
        return len(self.to_bytes())

    def reconstruct(self) -> dict[EPC, bytes]:
        """Recover every object's exact state (lossless)."""
        states = {self.centroid_tag: self.centroid_state}
        for tag, diff in self.diffs.items():
            states[tag] = apply_diff(self.centroid_state, diff)
        return states


#: Exact centroid selection costs O(n²) difflib passes. Beyond this
#: bundle size the argmin runs over a deterministic stride sample of
#: candidates and reference states instead: only the *choice* of
#: centroid is approximated — every object's diff stays exact and the
#: bundle stays lossless — so the worst case is a slightly larger wire
#: bundle, never a wrong state. A 700-object bundle drops from ~250k
#: pairwise diffs to at most CANDIDATE_CAP × REFERENCE_CAP.
_EXACT_SELECTION_LIMIT = 32
_CANDIDATE_CAP = 16
_REFERENCE_CAP = 48


def _stride_sample(seq: list, cap: int) -> list:
    """Evenly spaced deterministic sample of ``seq`` (order-preserving)."""
    if len(seq) <= cap:
        return list(seq)
    step = len(seq) / cap
    return [seq[int(i * step)] for i in range(cap)]


def _total_distance(candidate: bytes, reference_states: list[bytes]) -> int:
    """Sum of byte distances from ``candidate`` to each reference.

    One :class:`SequenceMatcher` is reused with the candidate pinned as
    ``seq2`` so difflib builds the candidate's index once per call
    instead of once per pair (``byte_distance`` is symmetric).
    """
    matcher = SequenceMatcher(None, b"", candidate, autojunk=False)
    total = 0
    for state in reference_states:
        matcher.set_seq1(state)
        matched = sum(block.size for block in matcher.get_matching_blocks())
        total += (len(state) - matched) + (len(candidate) - matched)
    return total


def centroid_compress(states: dict[EPC, bytes]) -> SharedStateBundle:
    """Pick the centroid (minimum total byte distance) and diff every
    other state against it.

    Selection is exact up to ``_EXACT_SELECTION_LIMIT`` objects and
    stride-sampled above it (see the cap notes); both paths are fully
    deterministic for a given ``states`` mapping, and reconstruction is
    lossless either way.
    """
    if not states:
        raise ValueError("no states to compress")
    tags = sorted(states)
    if len(tags) == 1:
        only = tags[0]
        return SharedStateBundle(only, states[only], {})
    if len(tags) <= _EXACT_SELECTION_LIMIT:
        candidates, references = tags, tags
    else:
        candidates = _stride_sample(tags, _CANDIDATE_CAP)
        references = _stride_sample(tags, _REFERENCE_CAP)
    best_tag = candidates[0]
    best_cost = None
    for candidate in candidates:
        cost = _total_distance(
            states[candidate],
            [states[other] for other in references if other != candidate],
        )
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_tag = candidate
    centroid_state = states[best_tag]
    diffs = {
        tag: state_diff(centroid_state, states[tag])
        for tag in tags
        if tag != best_tag
    }
    return SharedStateBundle(best_tag, centroid_state, diffs)
