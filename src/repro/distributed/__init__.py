"""Distributed inference and query processing (§4, Fig. 3).

Each site runs inference and query processing on its local streams;
when an object moves between sites its inference state (collapsed
co-location weights) and query state (pattern automaton state) migrate:

* :mod:`repro.distributed.network` — message passing with per-kind byte
  accounting (Table 5's communication costs);
* :mod:`repro.distributed.ons` — the Object Naming Service locating an
  object's previous site;
* :mod:`repro.distributed.tagmem` — writable tag memory (migration
  strategy iii);
* :mod:`repro.distributed.sharing` — centroid-based query-state sharing;
* :mod:`repro.distributed.coordinator` — the multi-site deployment with
  ``none`` / ``collapsed`` (CR) migration strategies;
* :mod:`repro.distributed.centralized` — the centralized baseline that
  ships gzip-compressed raw readings to one processing site.
"""

from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.distributed.network import Network
from repro.distributed.ons import ObjectNamingService
from repro.distributed.sharing import SharedStateBundle, centroid_compress
from repro.distributed.tagmem import TagMemory

__all__ = [
    "CentralizedDeployment",
    "DistributedDeployment",
    "Network",
    "ObjectNamingService",
    "SharedStateBundle",
    "TagMemory",
    "centroid_compress",
]
