"""Distributed inference and query processing (§4, Fig. 3).

Each site runs inference and query processing on its local streams;
when an object moves between sites its inference state (collapsed
co-location weights) and query state (pattern automaton state) migrate:

* :mod:`repro.distributed.network` — the cost ledger with per-kind and
  per-link byte accounting (Table 5's communication costs);
* :mod:`repro.distributed.ons` — the Object Naming Service locating an
  object's previous site;
* :mod:`repro.distributed.tagmem` — writable tag memory (migration
  strategy iii);
* :mod:`repro.distributed.sharing` — centroid-based query-state sharing;
* :mod:`repro.distributed.coordinator` — the multi-site deployment
  facade (``none`` / ``collapsed`` migration strategies) over the
  event-driven :mod:`repro.runtime`;
* :mod:`repro.distributed.centralized` — the centralized baseline that
  ships gzip-compressed raw readings to one processing site.

Attributes resolve lazily (PEP 562): the runtime imports this package's
submodules while the coordinator facade imports the runtime, and lazy
resolution keeps that dependency loop unwound.
"""

from typing import Any

__all__ = [
    "CentralizedDeployment",
    "DistributedDeployment",
    "Network",
    "ObjectNamingService",
    "SharedStateBundle",
    "TagMemory",
    "centroid_compress",
]

_EXPORTS = {
    "CentralizedDeployment": ("repro.distributed.centralized", "CentralizedDeployment"),
    "DistributedDeployment": ("repro.distributed.coordinator", "DistributedDeployment"),
    "Network": ("repro.distributed.network", "Network"),
    "ObjectNamingService": ("repro.distributed.ons", "ObjectNamingService"),
    "SharedStateBundle": ("repro.distributed.sharing", "SharedStateBundle"),
    "TagMemory": ("repro.distributed.tagmem", "TagMemory"),
    "centroid_compress": ("repro.distributed.sharing", "centroid_compress"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
