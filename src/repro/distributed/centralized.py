"""Centralized baseline: ship every raw reading to one site (§5.3).

"For the centralized approach, we assume that all raw data is shipped
to a central location for inference with simple gzip compression of
data" (Appendix C.5). The central site sees one merged trace whose
location domain is the disjoint union of every site's reader set, and
runs the very same streaming inference over it. Accuracy is the best
achievable (full data, global view); the communication cost is the
gzip-compressed reading stream — three orders of magnitude above the
collapsed-state migration (Table 5).
"""

from __future__ import annotations

import gzip

import numpy as np

from repro._util.encoding import ByteWriter
from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.network import Network
from repro.metrics.accuracy import service_containment_error, service_location_error
from repro.sim.layout import Layout
from repro.sim.readers import ReadRateModel
from repro.sim.supplychain import SupplyChainResult
from repro.sim.trace import AWAY, GroundTruth, Location, Reading, Trace

__all__ = ["CentralizedDeployment", "encode_readings", "merge_sites"]

#: the central server's synthetic site id in the cost ledger.
CENTER = -1


def encode_readings(readings: list[Reading]) -> bytes:
    """Wire encoding of a raw reading batch (then gzipped).

    Appendix C.5 ships "all raw data ... with simple gzip compression":
    each reading is a plain fixed-width record (8-byte epoch, 1-byte tag
    kind, 4-byte serial, 2-byte reader id), mirroring the (time, tag id,
    reader id) tuples readers actually produce — no clever columnar or
    delta encoding, exactly as the baseline is described.
    """
    import struct

    writer = ByteWriter()
    writer.varint(len(readings))
    for reading in sorted(readings):
        writer.raw(
            struct.pack(
                "<qBIH",
                reading.time,
                int(reading.tag.kind),
                reading.tag.serial,
                reading.reader,
            )
        )
    return writer.getvalue()


def merge_sites(result: SupplyChainResult) -> tuple[Trace, GroundTruth, list[int]]:
    """Fuse per-site traces into one global trace.

    Reader/location indices are offset per site; the merged read-rate
    matrix is block-diagonal (a reader never sees tags at another
    site). Ground truth is remapped into the merged location domain so
    the standard metrics apply unchanged.
    """
    offsets: list[int] = []
    specs = []
    total = 0
    for site, layout in enumerate(result.layouts):
        offsets.append(total)
        for spec in layout.specs:
            specs.append(
                type(spec)(
                    name=f"s{site}/{spec.name}",
                    kind=spec.kind,
                    period=spec.period,
                    phase=spec.phase,
                    burst=spec.burst,
                )
            )
        total += layout.n_locations
    merged_layout = Layout("central", specs)
    epsilon = result.models[0].epsilon
    pi = np.full((total, total), epsilon)
    for site, model in enumerate(result.models):
        off = offsets[site]
        n = model.layout.n_locations
        pi[off : off + n, off : off + n] = model.pi
    merged_model = ReadRateModel(merged_layout, pi, epsilon)

    merged_table = sorted({tag for trace in result.traces for tag in trace.tag_table})
    merged_index = {tag: i for i, tag in enumerate(merged_table)}
    times_parts: list[np.ndarray] = []
    tag_parts: list[np.ndarray] = []
    reader_parts: list[np.ndarray] = []
    for trace in result.traces:
        remap = np.fromiter(
            (merged_index[tag] for tag in trace.tag_table),
            dtype=np.int64,
            count=len(trace.tag_table),
        )
        times_parts.append(trace.times)
        tag_parts.append(remap[trace.tag_ids] if len(trace) else trace.tag_ids)
        reader_parts.append(trace.readers + offsets[trace.site])
    horizon = result.params.horizon
    merged_trace = Trace.from_columns(
        0,
        merged_layout,
        merged_model,
        np.concatenate(times_parts) if times_parts else np.empty(0, np.int64),
        np.concatenate(tag_parts) if tag_parts else np.empty(0, np.int64),
        np.concatenate(reader_parts) if reader_parts else np.empty(0, np.int64),
        merged_table,
        horizon,
    )

    merged_truth = GroundTruth()
    merged_truth.horizon = result.truth.horizon
    for tag, imap in result.truth.locations.items():
        for time, loc in imap.breakpoints():
            if loc is None or loc == AWAY or loc.site < 0:
                merged_truth.record_location(tag, time, AWAY)
            else:
                merged_truth.record_location(
                    tag, time, Location(0, offsets[loc.site] + loc.place)
                )
    for tag, imap in result.truth.containment.items():
        for time, container in imap.breakpoints():
            merged_truth.record_container(tag, time, container)
    merged_truth.changes = list(result.truth.changes)
    return merged_trace, merged_truth, offsets


class CentralizedDeployment:
    """All raw readings shipped to one site; one global inference."""

    def __init__(
        self,
        result: SupplyChainResult,
        config: ServiceConfig | None = None,
        network: Network | None = None,
    ) -> None:
        self.result = result
        self.config = config or ServiceConfig(emit_events=False)
        self.network = network if network is not None else Network()
        self.trace, self.truth, self.offsets = merge_sites(result)
        self.service = StreamingInference(self.trace, self.config)

    def run(self, horizon: int | None = None) -> None:
        if horizon is None:
            horizon = self.result.params.horizon
        interval = self.config.run_interval
        for boundary in range(interval, horizon + 1, interval):
            for trace in self.result.traces:
                batch = list(trace.readings_in(boundary - interval, boundary))
                if not batch:
                    continue
                payload = gzip.compress(encode_readings(batch))
                self.network.send(trace.site, CENTER, "raw-readings", payload)
            self.service.run_at(boundary)

    def containment_error(self) -> float:
        return service_containment_error(self.truth, self.service)

    def location_error(self) -> float:
        return service_location_error(self.truth, self.service)

    def communication_bytes(self) -> int:
        return self.network.total_bytes()
