"""SMURF* — SMURF extended with containment heuristics (Appendix C.3).

"This method first uses SMURF to smooth raw readings of objects to
estimate their locations individually. The adaptive window used in
SMURF is further stored for containment inference and change detection:
Within the adaptive window for each item, at a particular time t, if
the most frequently co-located case before time t is the same as that
after time t, then there is no containment change, and the most
frequently co-located case is chosen to be the true container.
Otherwise, we further check if none of the top-k co-located cases
before time t is in the set of top-k co-located cases after t. If so,
we report a containment change for this item at time t, and pick the
case that is most co-located with the item in the period from t to the
present."

Co-location here means: the SMURF location estimates of the item and
the case agree during an epoch. This is precisely the heuristic
combination of temporal smoothing + co-location counting that the paper
shows loses to RFINFER's principled iterative feedback.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.smurf import SmurfConfig, SmurfTagEstimate, smooth_trace
from repro.core.changepoint import ChangePoint
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Trace

__all__ = ["SmurfStar", "SmurfStarResult"]


@dataclass
class SmurfStarResult:
    """Containment/location estimates of the SMURF* baseline."""

    containment: dict[EPC, EPC | None]
    estimates: dict[EPC, SmurfTagEstimate]
    changes: list[ChangePoint] = field(default_factory=list)

    def location_at(self, tag: EPC, epoch: int) -> int:
        est = self.estimates.get(tag)
        return est.location_at(epoch) if est is not None else -1

    def location_error(self, truth, site: int, start: int, end: int) -> float:
        """Per-epoch location error against ground truth (for Fig. 5d)."""
        total = 0
        wrong = 0
        for tag, est in self.estimates.items():
            imap = truth.locations.get(tag)
            if imap is None:
                continue
            for seg_start, seg_end, loc in imap.segments(start, end):
                if loc is None or loc.site != site:
                    continue
                span = est.locations[seg_start:seg_end]
                total += span.size
                wrong += int((span != loc.place).sum())
        return wrong / total if total else 0.0


class SmurfStar:
    """The SMURF* containment baseline over one trace."""

    def __init__(
        self,
        trace: Trace,
        config: SmurfConfig | None = None,
        top_k: int = 3,
        change_scan_stride: int = 20,
    ) -> None:
        self.trace = trace
        self.config = config or SmurfConfig()
        self.top_k = top_k
        self.change_scan_stride = change_scan_stride

    def _case_buckets(self) -> dict[tuple[int, int], list[EPC]]:
        """Index of case readings by (epoch, reader)."""
        buckets: dict[tuple[int, int], list[EPC]] = {}
        for case in self.trace.tags(TagKind.CASE):
            times, readers = self.trace.tag_readings(case)
            for epoch, reader in zip(times.tolist(), readers.tolist()):
                buckets.setdefault((epoch, reader), []).append(case)
        return buckets

    def _colocation_epochs(
        self, item: EPC, buckets: dict[tuple[int, int], list[EPC]]
    ) -> dict[EPC, np.ndarray]:
        """Per case, the sorted epochs where it was co-read with ``item``.

        Co-location is counted on *raw readings* (same reader fired for
        both tags in the same epoch): smoothed locations lag by the
        adaptive window during the belt passage, which is the only
        period that separates cases sharing a shelf.
        """
        hits: dict[EPC, list[int]] = {}
        times, readers = self.trace.tag_readings(item)
        for epoch, reader in zip(times.tolist(), readers.tolist()):
            for case in buckets.get((epoch, reader), ()):
                hits.setdefault(case, []).append(epoch)
        return {case: np.asarray(sorted(set(es))) for case, es in hits.items()}

    @staticmethod
    def _top_cases(
        coloc: dict[EPC, np.ndarray], lo: int, hi: int, k: int
    ) -> list[EPC]:
        counts = Counter()
        for case, epochs in coloc.items():
            hits = int(np.searchsorted(epochs, hi) - np.searchsorted(epochs, lo))
            if hits:
                counts[case] = hits
        return [case for case, _ in counts.most_common(k)]

    def run(self, until: int | None = None) -> SmurfStarResult:
        """Smooth every tag, then infer containment per Appendix C.3."""
        horizon = self.trace.horizon if until is None else until
        estimates = smooth_trace(self.trace, self.config)
        buckets = self._case_buckets()
        containment: dict[EPC, EPC | None] = {}
        changes: list[ChangePoint] = []

        for tag, est in estimates.items():
            if tag.kind is not TagKind.ITEM:
                continue
            coloc = self._colocation_epochs(tag, buckets)
            if not coloc:
                containment[tag] = None
                continue
            first = int(min(epochs[0] for epochs in coloc.values()))
            stride = self.change_scan_stride

            change_at: int | None = None
            for t in range(first + stride, horizon - stride, stride):
                before = self._top_cases(coloc, first, t, 1)
                after = self._top_cases(coloc, t, horizon, 1)
                if not before or not after:
                    continue
                if before[0] == after[0]:
                    continue
                top_before = set(self._top_cases(coloc, first, t, self.top_k))
                top_after = set(self._top_cases(coloc, t, horizon, self.top_k))
                if not (top_before & top_after):
                    change_at = t

            if change_at is not None:
                winners = self._top_cases(coloc, change_at, horizon, 1)
                old_winners = self._top_cases(coloc, first, change_at, 1)
                new_container = winners[0] if winners else None
                containment[tag] = new_container
                changes.append(
                    ChangePoint(
                        tag,
                        change_at,
                        old_winners[0] if old_winners else None,
                        new_container,
                        0.0,
                    )
                )
            else:
                winners = self._top_cases(coloc, first, horizon, 1)
                containment[tag] = winners[0] if winners else None

        return SmurfStarResult(containment, estimates, changes)
