"""SMURF — per-tag adaptive-window smoothing (Jeffery et al. 2007).

SMURF views RFID reading streams as random samples of the tags in a
reader's range. For each tag it sizes a sliding window large enough to
catch the tag with high probability given its observed read rate
(``w* ≈ ln(1/δ) / p_avg``), while monitoring for transitions: when the
recent half of the window sees statistically fewer readings than the
read rate predicts (binomial deviation test), the tag has likely moved,
and the window shrinks to adapt.

This is the per-object *temporal* smoothing the paper contrasts with
RFINFER's smoothing over containment relations. Our implementation
produces, per tag, a per-epoch location estimate (the dominant reader
within the current window, held through empty windows) plus the final
adaptive window size — both consumed by SMURF* (Appendix C.3).
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.tags import EPC
from repro.sim.trace import Trace

__all__ = ["SmurfConfig", "SmurfSmoother", "SmurfTagEstimate", "smooth_trace"]


@dataclass(frozen=True)
class SmurfConfig:
    """Tunables of the adaptive smoothing window."""

    #: target probability of missing a present tag entirely.
    miss_probability: float = 0.05
    #: initial and minimum window size (epochs).
    min_window: int = 10
    #: hard cap on the window size (epochs).
    max_window: int = 200
    #: growth step when the window is performing well.
    growth: int = 5
    #: z-score of the binomial deviation test for transitions.
    z_threshold: float = 2.0


@dataclass
class SmurfTagEstimate:
    """Per-tag output: per-epoch locations and the adaptive window."""

    tag: EPC
    #: estimated place per epoch (-1 = unknown / absent).
    locations: np.ndarray
    #: adaptive window size per epoch.
    window_sizes: np.ndarray
    #: estimated per-interrogation read rate at the end of the trace.
    read_rate: float

    def location_at(self, epoch: int) -> int:
        return int(self.locations[epoch])

    def final_window(self) -> int:
        return int(self.window_sizes[-1])


class SmurfSmoother:
    """Runs SMURF over one tag's reading stream."""

    def __init__(self, trace: Trace, config: SmurfConfig | None = None) -> None:
        self.trace = trace
        self.config = config or SmurfConfig()

    def _interrogations_in(self, reader: int, start: int, end: int) -> int:
        """How many times ``reader`` interrogated during [start, end)."""
        spec = self.trace.layout.specs[reader]
        if spec.period == 1:
            return max(end - start, 0)
        count = 0
        for epoch in range(max(start, 0), end):
            if spec.is_active(epoch):
                count += 1
        return count

    def smooth(self, tag: EPC) -> SmurfTagEstimate:
        """Produce per-epoch location estimates for one tag."""
        config = self.config
        horizon = self.trace.horizon
        locations = np.full(horizon, -1, dtype=np.int64)
        window_sizes = np.full(horizon, config.min_window, dtype=np.int64)
        tag_times, tag_readers = self.trace.tag_readings(tag)
        if tag_times.size == 0:
            return SmurfTagEstimate(tag, locations, window_sizes, 0.0)
        readings = list(zip(tag_times.tolist(), tag_readers.tolist()))

        window: deque[tuple[int, int]] = deque()
        pointer = 0
        w = config.min_window
        last_location = -1
        read_rate = 0.5

        for epoch in range(horizon):
            while pointer < len(readings) and readings[pointer][0] <= epoch:
                window.append(readings[pointer])
                pointer += 1
            while window and window[0][0] <= epoch - w:
                window.popleft()

            if window:
                counts = Counter(r for _, r in window)
                dominant, dominant_count = counts.most_common(1)[0]
                interrogations = self._interrogations_in(
                    dominant, epoch - w + 1, epoch + 1
                )
                if interrogations > 0:
                    read_rate = min(max(dominant_count / interrogations, 0.05), 0.99)
                last_location = int(dominant)

                # Transition monitor: too few readings in the recent half
                # of the window → the tag likely moved; shrink to adapt.
                half_start = epoch - w // 2 + 1
                recent = sum(1 for t, r in window if t >= half_start and r == dominant)
                half_interrogations = self._interrogations_in(
                    dominant, half_start, epoch + 1
                )
                expected = half_interrogations * read_rate
                deviation = math.sqrt(
                    max(half_interrogations * read_rate * (1 - read_rate), 1e-9)
                )
                if expected - recent > config.z_threshold * deviation:
                    w = max(config.min_window, w // 2)
                else:
                    target = math.ceil(
                        math.log(1.0 / config.miss_probability) / read_rate
                    )
                    if w < min(target, config.max_window):
                        w = min(w + config.growth, config.max_window)

            locations[epoch] = last_location
            window_sizes[epoch] = w

        return SmurfTagEstimate(tag, locations, window_sizes, read_rate)


def smooth_trace(
    trace: Trace, config: SmurfConfig | None = None
) -> dict[EPC, SmurfTagEstimate]:
    """Run SMURF independently over every tag in the trace."""
    smoother = SmurfSmoother(trace, config)
    return {tag: smoother.smooth(tag) for tag in trace.tags()}
