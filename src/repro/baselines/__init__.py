"""Baselines the paper compares against.

* :mod:`repro.baselines.smurf` — SMURF adaptive-window RFID smoothing
  (Jeffery et al., VLDB Journal 2007), which cleans each tag's readings
  independently with a statistically sized sliding window.
* :mod:`repro.baselines.smurf_star` — SMURF*, the paper's extension of
  SMURF with heuristics for containment inference and containment-change
  detection (Appendix C.3).
"""

from repro.baselines.smurf import SmurfConfig, SmurfSmoother, smooth_trace
from repro.baselines.smurf_star import SmurfStar, SmurfStarResult

__all__ = [
    "SmurfConfig",
    "SmurfSmoother",
    "SmurfStar",
    "SmurfStarResult",
    "smooth_trace",
]
