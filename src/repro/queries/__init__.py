"""The paper's monitoring queries (§2, §5.4).

* :mod:`repro.queries.q1` — Query 1: alert when a frozen product sits
  outside a freezer at room temperature for the exposure duration
  (hybrid query: containment + location + temperature).
* :mod:`repro.queries.q2` — Query 2: alert when a frozen product is
  exposed to temperature above a threshold for a duration (location
  only, §5.4).
* :mod:`repro.queries.tracking` — a tracking query: report pallets/cases
  deviating from their intended path (§1's tracking query class).
"""

from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.queries.tracking import PathDeviationQuery

__all__ = [
    "FreezerExposureQuery",
    "PathDeviationQuery",
    "TemperatureExposureQuery",
]
