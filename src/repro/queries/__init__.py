"""The paper's monitoring queries (§2, §5.4), as compiled plans.

Queries are written as declarative specs (:mod:`repro.queries.spec` —
select/window/join-latest/filter/pattern blocks mirroring the paper's
CQL+SEQ syntax) and lowered by :mod:`repro.queries.compiler` into a
DAG of incremental operators with multi-query sharing, uniform state
migration, and generic checkpointing (:mod:`repro.queries.protocol`).

* :mod:`repro.queries.q1` — Query 1: alert when a frozen product sits
  outside a freezer at room temperature for the exposure duration
  (hybrid query: containment + location + temperature).
* :mod:`repro.queries.q2` — Query 2: alert when a frozen product is
  exposed to temperature above a threshold for a duration (location
  only, §5.4).
* :mod:`repro.queries.tracking` — a tracking query: report pallets/cases
  deviating from their intended path (§1's tracking query class).
* :mod:`repro.queries.legacy` — the pre-compiler hand-written
  implementations, kept as the equivalence suite's reference oracles.

Further monitors (dwell-time violations, co-location breaches) live in
:mod:`repro.workloads.monitors` — each is a spec, not a subsystem.
"""

from repro.queries.compiler import CompiledPlan, DeclarativeQuery, QueryEngine
from repro.queries.protocol import QueryState
from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.queries.spec import QuerySpec
from repro.queries.tracking import PathDeviationQuery

__all__ = [
    "CompiledPlan",
    "DeclarativeQuery",
    "FreezerExposureQuery",
    "PathDeviationQuery",
    "QueryEngine",
    "QuerySpec",
    "QueryState",
    "TemperatureExposureQuery",
]
