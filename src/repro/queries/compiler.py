"""Compiling query specs into shared, migratable operator plans.

The :class:`QueryEngine` is one site's operator runtime. Registering a
:class:`~repro.queries.spec.QuerySpec` lowers it into a DAG of
push-based incremental operators (:mod:`repro.streams.operators`) and
returns a :class:`CompiledPlan` — the uniform handle the rest of the
system talks to:

* **multi-query optimization** — operators are hash-consed on their
  structural signature, so identical local sub-plans across registered
  queries (Q1/Q2's frozen-product filter, temperature window, and
  events × latest-temperature join) are instantiated exactly once and
  shared; the engine counts built vs shared instances and the site
  runtime surfaces the totals in the communication ledger;
* **plan placement** — each plan splits into per-site *local* operators
  (filters, windows, joins: they stay put) and *global* pattern blocks
  (``SEQ(A+)`` automata, route conformance) whose per-object state
  migrates with the objects (Appendix B);
* **a uniform state protocol** — every compiled plan implements
  :class:`~repro.queries.protocol.QueryState`:
  ``export_state``/``import_state`` move one object's automaton state
  between sites on the byte formats Table 5 accounts, and
  ``snapshot_state``/``restore_state`` serialize the whole plan
  (automata, alert logs, window relations) for site checkpoints. The
  wire layouts are the ones the original hand-written queries
  established, so compiled plans are byte-compatible with them —
  the equivalence suite asserts it bit for bit.

**Join timing.** When a join's probe side and its window's build side
share an upstream operator (the co-location monitor joins events
against the latest event per storage location), window updates are
wired at :data:`~repro.streams.operators.WINDOW_UPDATE_PRIORITY` so a
tuple probes the relation *as of the previous instant* before being
folded in — CQL's pre-update ``[Now]`` semantics, deterministic
regardless of registration order.
"""

from __future__ import annotations

import struct
from collections import namedtuple
from functools import lru_cache
from operator import attrgetter
from typing import Any, Callable, Hashable, NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.core.events import ObjectEvent
from repro.queries.spec import (
    JoinLatest,
    KleeneDuration,
    Latest,
    Node,
    QuerySpec,
    RouteConformance,
    Stream,
    Where,
)
from repro.sim.sensors import SensorReading
from repro.sim.tags import EPC, read_epc, write_epc
from repro.streams.operators import (
    WINDOW_UPDATE_PRIORITY,
    Filter,
    LatestByKey,
    NowJoin,
    Operator,
)
from repro.streams.pattern import KleeneDurationPattern
from repro.streams.state import (
    decode_pattern_state,
    encode_pattern_state,
    read_pattern_state,
    snapshot_pattern,
    restore_pattern,
    write_pattern_state,
)

__all__ = [
    "QueryEngine",
    "CompiledPlan",
    "CompiledPattern",
    "RouteAutomaton",
    "DeclarativeQuery",
    "DeviationAlert",
    "STREAM_TYPES",
]

#: stream name → tuple type the runtime feeds it with.
STREAM_TYPES: dict[str, type] = {
    "events": ObjectEvent,
    "sensors": SensorReading,
}


@lru_cache(maxsize=None)
def _row_type(names: tuple[str, ...]):
    """Cached output-row type for one join projection."""
    return namedtuple("Row", names)


def _getter(fields: tuple[str, ...]) -> Callable[[Any], Hashable]:
    """Attribute getter: scalar for one field, tuple for several."""
    return attrgetter(*fields) if len(fields) > 1 else attrgetter(fields[0])


class _SourceOp(Operator):
    """Entry point of one named stream; forwards every pushed tuple."""

    def push(self, item: Any) -> None:
        self.emit(item)


# -- global blocks ---------------------------------------------------------


class CompiledPattern:
    """One compiled ``SEQ(A+)`` block: automaton + state codecs.

    Partition keys are the object tag alone (Q1/Q2) or a composite
    ``(tag, int, ...)`` whose first component is the tag (the dwell
    monitor). Migration is keyed by tag: simple-key patterns use the
    raw Table-5 wire format the hand-written queries established;
    composite-key patterns frame every partition belonging to the tag.
    """

    def __init__(self, node: KleeneDuration) -> None:
        self.node = node
        self.key_fn = _getter(node.key)
        self.time_fn = attrgetter(node.time)
        self.simple_key = len(node.key) == 1
        self.pattern = KleeneDurationPattern(
            key_fn=self.key_fn,
            time_fn=self.time_fn,
            value_fn=attrgetter(node.value),
            duration=node.duration,
            max_values=node.max_values,
            max_gap=node.max_gap,
        )

    # -- wiring ---------------------------------------------------------

    def on_reset(self, item: Any) -> None:
        """A run-break tuple: discard the partition's partial match."""
        self.pattern.reset_key(self.key_fn(item), self.time_fn(item))

    # -- answers ---------------------------------------------------------

    @property
    def alerts(self) -> list:
        return self.pattern.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return [(alert.key, alert.end_time) for alert in self.pattern.alerts]

    @property
    def states(self) -> dict:
        return self.pattern.states

    # -- per-object migration (QueryState) --------------------------------

    def _partitions_of(self, tag: EPC) -> list:
        return sorted(key for key in self.pattern.states if key[0] == tag)

    def export_key_state(self, tag: EPC) -> bytes | None:
        if self.simple_key:
            state = self.pattern.export_state(tag)
            return None if state is None else encode_pattern_state(state)
        partitions = self._partitions_of(tag)
        if not partitions:
            return None
        writer = ByteWriter()
        writer.varint(len(partitions))
        for key in partitions:
            for component in key[1:]:
                writer.svarint(component)
            write_pattern_state(writer, self.pattern.states[key])
        return writer.getvalue()

    def absorb_key_state(self, tag: EPC, data: bytes) -> None:
        if self.simple_key:
            self.pattern.absorb_state(tag, decode_pattern_state(data))
            return
        arity = len(self.node.key) - 1
        reader = ByteReader(data)
        try:
            for _ in range(reader.varint()):
                components = tuple(reader.svarint() for _ in range(arity))
                state = read_pattern_state(reader)
                self.pattern.absorb_state((tag, *components), state)
        except (EOFError, struct.error, IndexError) as exc:
            raise ValueError(f"malformed pattern partition bundle: {exc}") from exc

    # -- checkpoint section (QueryState) ----------------------------------

    def _write_key(self, writer: ByteWriter, key: Hashable) -> None:
        if self.simple_key:
            write_epc(writer, key)
        else:
            write_epc(writer, key[0])
            for component in key[1:]:
                writer.svarint(component)

    def _read_key(self, reader: ByteReader) -> Hashable:
        if self.simple_key:
            return read_epc(reader)
        tag = read_epc(reader)
        return (tag, *(reader.svarint() for _ in range(len(self.node.key) - 1)))

    def write_snapshot(self, writer: ByteWriter) -> None:
        writer.blob(snapshot_pattern(self.pattern, write_key=self._write_key))

    def read_snapshot(self, reader: ByteReader) -> None:
        restore_pattern(self.pattern, reader.blob(), read_key=self._read_key)


class DeviationAlert(NamedTuple):
    """An object observed off its intended route."""

    tag: EPC
    time: int
    site: int
    expected: tuple[int, ...]


class _RouteProgress:
    """Per-object tracking state (migrates with the object)."""

    __slots__ = ("position", "deviated", "history")

    def __init__(
        self, position: int = 0, deviated: bool = False,
        history: list[int] | None = None,
    ) -> None:
        self.position = position
        self.deviated = deviated
        self.history = history if history is not None else []

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _RouteProgress)
            and (self.position, self.deviated, self.history)
            == (other.position, other.deviated, other.history)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_RouteProgress({self.position}, {self.deviated}, {self.history})"
        )


class RouteAutomaton(Operator):
    """The tracking query's global block: route conformance per object.

    Raises one alert the first time an object shows up at a site that
    is neither the current nor the next step of its intended route.
    State and alert wire formats are the ones the hand-written
    :class:`PathDeviationQuery` established.
    """

    def __init__(self, node: RouteConformance) -> None:
        super().__init__()
        self.routes: dict[EPC, tuple[int, ...]] = dict(node.routes)
        self.progress: dict[EPC, _RouteProgress] = {}
        self.alerts: list[DeviationAlert] = []
        self._tag = attrgetter(node.key)
        self._time = attrgetter(node.time)
        self._site = attrgetter(node.site)

    def push(self, event: Any) -> None:
        tag = self._tag(event)
        route = self.routes.get(tag)
        if route is None:
            return
        state = self.progress.setdefault(tag, _RouteProgress())
        if state.deviated:
            return
        site = self._site(event)
        if not state.history or state.history[-1] != site:
            state.history.append(site)
        if state.position < len(route) and site == route[state.position]:
            return  # still at the expected site
        if state.position + 1 < len(route) and site == route[state.position + 1]:
            state.position += 1  # advanced to the next expected site
            return
        state.deviated = True
        expected = route[state.position : state.position + 2]
        alert = DeviationAlert(tag, self._time(event), site, expected)
        self.alerts.append(alert)
        self.emit(alert)

    def path_of(self, tag: EPC) -> list[int]:
        """Sites visited so far (the "list the path taken" query)."""
        state = self.progress.get(tag)
        return list(state.history) if state is not None else []

    # -- answers ---------------------------------------------------------

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return [(alert.tag, alert.time) for alert in self.alerts]

    @property
    def states(self) -> dict:
        return self.progress

    # -- per-object migration (QueryState) --------------------------------

    def export_key_state(self, tag: EPC) -> bytes | None:
        state = self.progress.get(tag)
        if state is None:
            return None
        writer = ByteWriter()
        writer.varint(state.position)
        writer.varint(1 if state.deviated else 0)
        writer.varint(len(state.history))
        for site in state.history:
            writer.varint(site)
        return writer.getvalue()

    def absorb_key_state(self, tag: EPC, data: bytes) -> None:
        """Merge migrated route progress with any local observations.

        The previous site's history precedes anything seen locally, so
        its sites are prepended; progress keeps the furthest position
        and an established deviation stays established.
        """
        reader = ByteReader(data)
        try:
            position = reader.varint()
            deviated = bool(reader.varint())
            history = [reader.varint() for _ in range(reader.varint())]
        except EOFError as exc:
            raise ValueError(f"malformed route state: {exc}") from exc
        state = self.progress.setdefault(tag, _RouteProgress())
        state.position = max(state.position, position)
        state.deviated = state.deviated or deviated
        merged = list(history)
        for site in state.history:
            if not merged or merged[-1] != site:
                merged.append(site)
        state.history = merged

    # -- checkpoint section (QueryState) ----------------------------------

    def write_snapshot(self, writer: ByteWriter) -> None:
        writer.varint(len(self.progress))
        for tag in sorted(self.progress):
            state = self.progress[tag]
            write_epc(writer, tag)
            writer.varint(state.position)
            writer.varint(1 if state.deviated else 0)
            writer.varint(len(state.history))
            for site in state.history:
                writer.svarint(site)
        writer.varint(len(self.alerts))
        for alert in self.alerts:
            write_epc(writer, alert.tag)
            writer.varint(alert.time)
            writer.svarint(alert.site)
            writer.varint(len(alert.expected))
            for site in alert.expected:
                writer.svarint(site)

    def read_snapshot(self, reader: ByteReader) -> None:
        progress: dict[EPC, _RouteProgress] = {}
        for _ in range(reader.varint()):
            tag = read_epc(reader)
            position = reader.varint()
            deviated = bool(reader.varint())
            history = [reader.svarint() for _ in range(reader.varint())]
            progress[tag] = _RouteProgress(position, deviated, history)
        alerts: list[DeviationAlert] = []
        for _ in range(reader.varint()):
            tag = read_epc(reader)
            time = reader.varint()
            site = reader.svarint()
            expected = tuple(reader.svarint() for _ in range(reader.varint()))
            alerts.append(DeviationAlert(tag, time, site, expected))
        self.progress = progress
        self.alerts = alerts


# -- the compiled plan -----------------------------------------------------


class CompiledPlan:
    """One registered query, lowered onto (possibly shared) operators.

    Implements the :class:`~repro.queries.protocol.QueryState` protocol
    uniformly for every spec: migration moves per-object state of the
    plan's *global* blocks; checkpoints serialize each stateful
    operator's self-delimiting section in a fixed order (global blocks
    in declaration order, then windows in spec-traversal order) — for
    Q1/Q2/tracking that is exactly the hand-written byte layout.
    """

    def __init__(
        self,
        spec: QuerySpec,
        global_ops: list,
        windows: list[LatestByKey],
        labels: dict[str, Any],
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.global_ops = global_ops
        self.windows = windows
        self.stateful = list(global_ops) + list(windows)
        self.labels = labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPlan({self.name!r}, {len(self.global_ops)} global, "
            f"{len(self.windows)} windows)"
        )

    # -- answers ---------------------------------------------------------

    @property
    def alerts(self) -> list:
        if len(self.global_ops) == 1:
            return self.global_ops[0].alerts
        return [alert for op in self.global_ops for alert in op.alerts]

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return [pair for op in self.global_ops for pair in op.alert_pairs()]

    def active_states(self) -> dict:
        """Per-object automaton states currently held (for sharing)."""
        out: dict = {}
        for op in self.global_ops:
            out.update(op.states)
        return out

    # -- QueryState: per-object migration ---------------------------------

    def export_state(self, tag: EPC) -> bytes | None:
        """Serialize one object's global-block state for migration."""
        if len(self.global_ops) == 1:
            return self.global_ops[0].export_key_state(tag)
        writer = ByteWriter()
        any_state = False
        for op in self.global_ops:
            raw = op.export_key_state(tag)
            if raw is None:
                writer.varint(0)
            else:
                any_state = True
                writer.varint(1)
                writer.blob(raw)
        return writer.getvalue() if any_state else None

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Absorb a migrated state (merging with local partial state)."""
        if len(self.global_ops) == 1:
            self.global_ops[0].absorb_key_state(tag, data)
            return
        reader = ByteReader(data)
        try:
            for op in self.global_ops:
                if reader.varint():
                    op.absorb_key_state(tag, reader.blob())
        except (EOFError, struct.error, IndexError) as exc:
            raise ValueError(f"malformed plan state bundle: {exc}") from exc

    # -- QueryState: site checkpoints -------------------------------------

    def snapshot_state(self) -> bytes:
        writer = ByteWriter()
        for op in self.stateful:
            op.write_snapshot(writer)
        return writer.getvalue()

    def restore_state(self, data: bytes) -> None:
        reader = ByteReader(data)
        try:
            for op in self.stateful:
                op.read_snapshot(reader)
        except ValueError:
            raise
        except (EOFError, struct.error, IndexError) as exc:
            raise ValueError(f"malformed plan snapshot: {exc}") from exc


# -- the engine ------------------------------------------------------------


class QueryEngine:
    """One site's operator runtime: registry, sharing, dispatch."""

    def __init__(self) -> None:
        #: structural signature → live operator instance.
        self._ops: dict[tuple, Any] = {}
        self.sources: dict[str, _SourceOp] = {}
        #: registered stream tuple type → source operator.
        self._by_type: dict[type, _SourceOp] = {}
        #: exact pushed type → resolved source (isinstance semantics,
        #: like the stream scheduler; ``None`` caches a miss).
        self._dispatch: dict[type, _SourceOp | None] = {}
        self.plans: dict[str, CompiledPlan] = {}
        #: operator instances actually created.
        self.operators_built = 0
        #: cross-query cache hits (a later registration reusing an
        #: operator an earlier one built) — the multi-query optimization
        #: counter the ledger surfaces.
        self.operators_shared = 0

    def register(self, spec: QuerySpec) -> CompiledPlan:
        """Lower ``spec`` onto the engine's shared operator pool."""
        plan = _PlanBuilder(self).build(spec)
        self.plans[spec.name] = plan
        return plan

    def push(self, item: Any) -> None:
        """Dispatch one stream tuple to its source operator (once,
        regardless of how many plans consume the stream).

        Dispatch is by exact type with a cached isinstance fallback,
        so subclasses of a stream's tuple type reach the stream — the
        same semantics hand-written queries get from the scheduler's
        per-type routes. Tuples matching no registered stream are
        dropped.
        """
        kind = type(item)
        try:
            source = self._dispatch[kind]
        except KeyError:
            source = next(
                (
                    src
                    for base, src in self._by_type.items()
                    if issubclass(kind, base)
                ),
                None,
            )
            self._dispatch[kind] = source
        if source is not None:
            source.emit(item)


class _PlanBuilder:
    """One registration pass: instantiates, wires, and records ops."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        #: signatures that existed before this registration began —
        #: hits against them are cross-query sharing.
        self._preexisting = set(engine._ops)
        self.global_ops: list = []
        self.windows: list[LatestByKey] = []
        self._window_ids: set[int] = set()

    def build(self, spec: QuerySpec) -> CompiledPlan:
        self._instantiate(spec.output)
        labels = {
            label: self._instantiate(node) for label, node in spec.labels.items()
        }
        return CompiledPlan(spec, self.global_ops, self.windows, labels)

    def _instantiate(self, node: Node) -> Any:
        signature = node.signature()
        op = self.engine._ops.get(signature)
        if op is not None:
            if signature in self._preexisting:
                self.engine.operators_shared += 1
                self._preexisting.discard(signature)  # count once per plan
            self._record(node, op)
            # A cached node's entire sub-DAG is necessarily cached too;
            # walk it anyway (without rewiring) so this plan records
            # every window/global block it transitively consumes — its
            # checkpoint must cover shared state it depends on — and so
            # the sharing gauge counts the whole reused sub-plan.
            for child in self._children(node):
                self._instantiate(child)
            return op
        op = self._create(node)
        self.engine._ops[signature] = op
        self.engine.operators_built += 1
        self._record(node, op)
        return op

    @staticmethod
    def _children(node: Node) -> tuple[Node, ...]:
        if isinstance(node, (Where, Latest, RouteConformance)):
            return (node.source,)
        if isinstance(node, JoinLatest):
            return (node.source, node.window)
        if isinstance(node, KleeneDuration):
            return (node.source, *node.resets)
        return ()

    def _record(self, node: Node, op: Any) -> None:
        if isinstance(node, Latest) and id(op) not in self._window_ids:
            self._window_ids.add(id(op))
            self.windows.append(op)
        elif isinstance(node, (KleeneDuration, RouteConformance)):
            if op not in self.global_ops:
                self.global_ops.append(op)

    def _create(self, node: Node) -> Any:
        if isinstance(node, Stream):
            if node.name not in STREAM_TYPES:
                raise ValueError(f"unknown stream {node.name!r}")
            source = _SourceOp()
            self.engine.sources[node.name] = source
            self.engine._by_type[STREAM_TYPES[node.name]] = source
            self.engine._dispatch.clear()  # new stream may claim cached misses
            return source
        if isinstance(node, Where):
            parent = self._instantiate(node.source)
            op = Filter(node.predicate)
            parent.subscribe(op)
            return op
        if isinstance(node, Latest):
            parent = self._instantiate(node.source)
            op = LatestByKey(_getter(node.key), codec=node.codec)
            # Updates run after same-instant join probes ([Now] is
            # evaluated against the pre-update relation).
            parent.subscribe(op, priority=WINDOW_UPDATE_PRIORITY)
            return op
        if isinstance(node, JoinLatest):
            parent = self._instantiate(node.source)
            window = self._instantiate(node.window)
            row_type = _row_type(tuple(name for name, _ in node.select))
            plan = []
            for _, path in node.select:
                side, _, field = path.partition(".")
                if side not in ("left", "right") or not field:
                    raise ValueError(f"malformed projection path {path!r}")
                plan.append((side == "left", field))

            def combine(left: Any, right: Any, _plan=tuple(plan), _row=row_type):
                return _row(
                    *(
                        getattr(left if is_left else right, field)
                        for is_left, field in _plan
                    )
                )

            op = NowJoin(window, _getter(node.probe), combine)
            parent.subscribe(op)
            return op
        if isinstance(node, KleeneDuration):
            parent = self._instantiate(node.source)
            block = CompiledPattern(node)
            parent.subscribe(block.pattern)
            for reset_node in node.resets:
                self._instantiate(reset_node).subscribe(block.on_reset)
            return block
        if isinstance(node, RouteConformance):
            parent = self._instantiate(node.source)
            op = RouteAutomaton(node)
            parent.subscribe(op)
            return op
        raise ValueError(f"unknown spec node {type(node).__name__}")


# -- facade base -----------------------------------------------------------


class DeclarativeQuery:
    """Base facade: a spec compiled standalone, re-bindable into a
    site's shared engine.

    Constructed, the query owns a private :class:`QueryEngine` so it
    can be driven directly (``on_event``/``on_sensor``) by schedulers,
    benchmarks, and tests. A :class:`~repro.runtime.node.SiteNode`
    instead calls :meth:`bind` to recompile the spec into the site's
    shared engine — multi-query optimization happens there — and from
    then on drives the engine, not the facade. The facade keeps
    answering through whatever plan it is currently bound to.
    """

    def __init__(self, spec: QuerySpec) -> None:
        self.spec = spec
        self._engine = QueryEngine()
        self._plan = self._engine.register(spec)

    def bind(self, engine: QueryEngine) -> CompiledPlan:
        """Recompile into ``engine`` (dropping any standalone state)."""
        self._plan = engine.register(self.spec)
        self._engine = engine
        return self._plan

    @property
    def plan(self) -> CompiledPlan:
        return self._plan

    # -- stream handlers (standalone driving) ------------------------------

    def on_event(self, event: ObjectEvent) -> None:
        self._engine.push(event)

    def on_sensor(self, reading: SensorReading) -> None:
        self._engine.push(reading)

    # -- answers ---------------------------------------------------------

    @property
    def alerts(self) -> list:
        return self._plan.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return self._plan.alert_pairs()

    def active_states(self) -> dict:
        return self._plan.active_states()

    # -- QueryState (delegated) -------------------------------------------

    def export_state(self, tag: EPC) -> bytes | None:
        return self._plan.export_state(tag)

    def import_state(self, tag: EPC, data: bytes) -> None:
        self._plan.import_state(tag, data)

    def snapshot_state(self) -> bytes:
        return self._plan.snapshot_state()

    def restore_state(self, data: bytes) -> None:
        self._plan.restore_state(data)
