"""Tracking query: path-deviation monitoring (§1).

"Report any pallet that has deviated from its intended path." Each
monitored tag carries an intended route (sequence of site ids); the
query tracks per-object progress along that route from the inferred
event stream and raises an alert the first time the object shows up at
a site that is not the next (or current) step of its route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.core.events import ObjectEvent
from repro.sim.tags import EPC, read_epc, write_epc

__all__ = ["PathDeviationQuery", "DeviationAlert"]


class DeviationAlert(NamedTuple):
    """An object observed off its intended route."""

    tag: EPC
    time: int
    site: int
    expected: tuple[int, ...]


@dataclass
class _RouteProgress:
    """Per-object tracking state (migrates with the object)."""

    position: int = 0
    deviated: bool = False
    history: list[int] = field(default_factory=list)


class PathDeviationQuery:
    """Continuous route conformance checking."""

    def __init__(self, routes: dict[EPC, tuple[int, ...]]) -> None:
        self.routes = dict(routes)
        self.progress: dict[EPC, _RouteProgress] = {}
        self.alerts: list[DeviationAlert] = []

    def on_event(self, event: ObjectEvent) -> None:
        route = self.routes.get(event.tag)
        if route is None:
            return
        state = self.progress.setdefault(event.tag, _RouteProgress())
        if state.deviated:
            return
        if not state.history or state.history[-1] != event.site:
            state.history.append(event.site)
        if state.position < len(route) and event.site == route[state.position]:
            return  # still at the expected site
        if state.position + 1 < len(route) and event.site == route[state.position + 1]:
            state.position += 1  # advanced to the next expected site
            return
        state.deviated = True
        expected = route[state.position : state.position + 2]
        self.alerts.append(DeviationAlert(event.tag, event.time, event.site, expected))

    def path_of(self, tag: EPC) -> list[int]:
        """Sites visited so far (the "list the path taken" query)."""
        state = self.progress.get(tag)
        return list(state.history) if state is not None else []

    # -- migrated state (runtime QueryRouter hooks) ------------------------

    def export_state(self, tag: EPC) -> bytes | None:
        """Serialize one object's route progress for migration."""
        state = self.progress.get(tag)
        if state is None:
            return None
        writer = ByteWriter()
        writer.varint(state.position)
        writer.varint(1 if state.deviated else 0)
        writer.varint(len(state.history))
        for site in state.history:
            writer.varint(site)
        return writer.getvalue()

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Merge migrated route progress with any local observations.

        The previous site's history precedes anything seen locally, so
        its sites are prepended; progress keeps the furthest position
        and an established deviation stays established.
        """
        reader = ByteReader(data)
        try:
            position = reader.varint()
            deviated = bool(reader.varint())
            history = [reader.varint() for _ in range(reader.varint())]
        except EOFError as exc:
            raise ValueError(f"malformed route state: {exc}") from exc
        state = self.progress.setdefault(tag, _RouteProgress())
        state.position = max(state.position, position)
        state.deviated = state.deviated or deviated
        merged = list(history)
        for site in state.history:
            if not merged or merged[-1] != site:
                merged.append(site)
        state.history = merged

    # -- checkpoint hooks (crash recovery) ---------------------------------

    def snapshot_state(self) -> bytes:
        """Checkpoint all route progress and fired alerts (routes are
        constructor state and come back with the rebuilt instance)."""
        writer = ByteWriter()
        writer.varint(len(self.progress))
        for tag in sorted(self.progress):
            state = self.progress[tag]
            write_epc(writer, tag)
            writer.varint(state.position)
            writer.varint(1 if state.deviated else 0)
            writer.varint(len(state.history))
            for site in state.history:
                writer.svarint(site)
        writer.varint(len(self.alerts))
        for alert in self.alerts:
            write_epc(writer, alert.tag)
            writer.varint(alert.time)
            writer.svarint(alert.site)
            writer.varint(len(alert.expected))
            for site in alert.expected:
                writer.svarint(site)
        return writer.getvalue()

    def restore_state(self, data: bytes) -> None:
        reader = ByteReader(data)
        try:
            progress: dict[EPC, _RouteProgress] = {}
            for _ in range(reader.varint()):
                tag = read_epc(reader)
                position = reader.varint()
                deviated = bool(reader.varint())
                history = [reader.svarint() for _ in range(reader.varint())]
                progress[tag] = _RouteProgress(position, deviated, history)
            alerts: list[DeviationAlert] = []
            for _ in range(reader.varint()):
                tag = read_epc(reader)
                time = reader.varint()
                site = reader.svarint()
                expected = tuple(reader.svarint() for _ in range(reader.varint()))
                alerts.append(DeviationAlert(tag, time, site, expected))
        except EOFError as exc:
            raise ValueError(f"malformed tracking snapshot: {exc}") from exc
        self.progress = progress
        self.alerts = alerts
