"""Tracking query: path-deviation monitoring (§1).

"Report any pallet that has deviated from its intended path." Each
monitored tag carries an intended route (sequence of site ids); the
query tracks per-object progress along that route from the inferred
event stream and raises an alert the first time the object shows up at
a site that is not the next (or current) step of its route.

The spec is a single global block — a
:class:`~repro.queries.spec.RouteConformance` automaton over the event
stream — whose per-object progress migrates with the objects exactly
like a pattern block's automaton state.
"""

from __future__ import annotations

from repro.queries.compiler import (
    DeclarativeQuery,
    DeviationAlert,
    RouteAutomaton,
)
from repro.queries.spec import QuerySpec, RouteConformance, Stream
from repro.sim.tags import EPC

__all__ = ["PathDeviationQuery", "DeviationAlert", "path_deviation_spec"]


def path_deviation_spec(
    routes: dict[EPC, tuple[int, ...]], name: str = "tracking"
) -> QuerySpec:
    """Build the tracking query as a declarative spec."""
    automaton = RouteConformance(Stream("events"), routes)
    return QuerySpec(name, automaton, labels={"route": automaton})


class PathDeviationQuery(DeclarativeQuery):
    """Continuous route conformance checking (a compiled-plan facade)."""

    def __init__(self, routes: dict[EPC, tuple[int, ...]]) -> None:
        self.routes = dict(routes)
        super().__init__(path_deviation_spec(self.routes))

    @property
    def _automaton(self) -> RouteAutomaton:
        return self._plan.labels["route"]

    @property
    def progress(self) -> dict:
        """Per-object route progress (the migratable automaton state)."""
        return self._automaton.progress

    def path_of(self, tag: EPC) -> list[int]:
        """Sites visited so far (the "list the path taken" query)."""
        return self._automaton.path_of(tag)
