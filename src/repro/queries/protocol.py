"""The uniform query-state protocol (§4.2, Appendix B).

Every continuous query the runtime manages — compiled plans and any
remaining hand-written class — speaks :class:`QueryState`. It replaces
the old ad-hoc per-query byte codecs with one contract the
:class:`~repro.runtime.router.QueryRouter`, the
:class:`~repro.runtime.node.SiteNode` migration bundles, and
:mod:`repro.runtime.checkpoint` all consume generically:

* ``export_state(tag)`` / ``import_state(tag, data)`` — *migration*:
  one object's global-block automaton state, on the compact (float32)
  wire format Table 5 accounts and centroid sharing
  (:mod:`repro.distributed.sharing`) diffs. ``export_state`` returns
  ``None`` when the query holds nothing for the object; ``import_state``
  must *merge* with local partial state, because the new site may have
  processed the object's first local events before the hand-off lands.
* ``snapshot_state()`` / ``restore_state(data)`` — *checkpoints*: the
  query's complete state (automata, alert logs, window relations) with
  float64 exactness, because a restored site must reproduce
  bit-identical results to the run that never crashed.

Malformed input to either decoder raises :class:`ValueError`, like
every other wire format in this repository.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.sim.tags import EPC

__all__ = ["QueryState"]


@runtime_checkable
class QueryState(Protocol):
    """State hooks a query exposes to the distributed runtime."""

    def export_state(self, tag: EPC) -> bytes | None:
        """Serialize one object's migratable state (``None``: nothing)."""
        ...

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Merge one object's migrated state into local state."""
        ...

    def snapshot_state(self) -> bytes:
        """Serialize the query's complete state for a site checkpoint."""
        ...

    def restore_state(self, data: bytes) -> None:
        """Rebuild complete state from :meth:`snapshot_state` output."""
        ...
