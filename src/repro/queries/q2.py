"""Query 2 (§5.4): temperature-exposure monitoring (location only).

"Q2 ... reports the frozen food that has been exposed to temperature
over 10 degrees for 10 hours." Unlike Q1 it never consults the inferred
container — which is why §5.4 finds its accuracy higher: location
inference is more accurate than containment inference.

As a spec, Q2 is Q1 minus the container clauses: the same shared local
sub-plan (:func:`~repro.queries.q1.exposure_join`) feeds a ``SEQ(A+)``
block gated only on temperature. Registered alongside Q1 in one
engine, the frozen-product filter, temperature window, and join are
instantiated once and shared.
"""

from __future__ import annotations

from repro.queries.compiler import CompiledPattern, DeclarativeQuery
from repro.queries.q1 import exposure_join
from repro.queries.spec import Compare, KleeneDuration, QuerySpec, Where
from repro.streams.operators import LatestByKey
from repro.streams.pattern import KleeneDurationPattern
from repro.workloads.catalog import ProductCatalog

__all__ = ["TemperatureExposureQuery", "temperature_exposure_spec"]


def temperature_exposure_spec(
    catalog: ProductCatalog,
    exposure_duration: int = 400,
    temp_threshold: float = 10.0,
    name: str = "q2",
) -> QuerySpec:
    """Build Query 2 as a declarative spec."""
    _, window, joined = exposure_join(catalog)
    warm = Where(joined, Compare("temp", ">", temp_threshold))
    cold = Where(joined, Compare("temp", "<=", temp_threshold))
    pattern = KleeneDuration(
        warm,
        key=("tag",),
        time="time",
        value="temp",
        duration=exposure_duration,
        resets=(cold,),
    )
    return QuerySpec(
        name, pattern, labels={"pattern": pattern, "temperature": window}
    )


class TemperatureExposureQuery(DeclarativeQuery):
    """Continuous evaluation of Query 2 (a compiled-plan facade)."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 400,
        temp_threshold: float = 10.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        super().__init__(
            temperature_exposure_spec(catalog, exposure_duration, temp_threshold)
        )

    @property
    def pattern(self) -> KleeneDurationPattern:
        """The compiled ``SEQ(A+)`` automaton (global block)."""
        block: CompiledPattern = self._plan.labels["pattern"]
        return block.pattern

    @property
    def temperature(self) -> LatestByKey:
        """The compiled ``[Partition By sensor Rows 1]`` window."""
        return self._plan.labels["temperature"]
