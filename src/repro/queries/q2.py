"""Query 2 (§5.4): temperature-exposure monitoring (location only).

"Q2 ... reports the frozen food that has been exposed to temperature
over 10 degrees for 10 hours." Unlike Q1 it never consults the inferred
container — which is why §5.4 finds its accuracy higher: location
inference is more accurate than containment inference.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.events import ObjectEvent
from repro.queries.q1 import (
    ExposureTuple,
    restore_exposure_query,
    snapshot_exposure_query,
)
from repro.sim.sensors import SensorReading
from repro.sim.tags import EPC
from repro.streams.operators import LatestByKey
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState
from repro.streams.state import decode_pattern_state, encode_pattern_state
from repro.workloads.catalog import ProductCatalog

__all__ = ["TemperatureExposureQuery"]


class TemperatureExposureQuery:
    """Continuous evaluation of Query 2."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 400,
        temp_threshold: float = 10.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        self.temperature = LatestByKey(lambda s: (s.site, s.sensor))
        self.pattern = KleeneDurationPattern(
            key_fn=lambda s: s.tag,
            time_fn=lambda s: s.time,
            value_fn=lambda s: s.temp,
            duration=exposure_duration,
        )

    def on_sensor(self, reading: SensorReading) -> None:
        self.temperature.push(reading)

    def on_event(self, event: ObjectEvent) -> None:
        if not self.catalog.is_frozen_product(event.tag):
            return
        reading = self.temperature.lookup((event.site, event.place))
        if reading is None:
            return
        if reading.temp > self.temp_threshold:
            self.pattern.push(
                ExposureTuple(event.time, event.tag, event.place, reading.temp)
            )
        else:
            self.pattern.reset_key(event.tag, event.time)

    @property
    def alerts(self) -> list[PatternAlert]:
        return self.pattern.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return [(alert.key, alert.end_time) for alert in self.alerts]

    def export_state(self, tag: EPC) -> bytes | None:
        state = self.pattern.export_state(tag)
        return None if state is None else encode_pattern_state(state)

    def import_state(self, tag: EPC, data: bytes) -> None:
        self.pattern.absorb_state(tag, decode_pattern_state(data))

    def active_states(self) -> dict[EPC, PatternState]:
        return dict(self.pattern.states)

    # -- checkpoint hooks (crash recovery) --------------------------------

    def snapshot_state(self) -> bytes:
        return snapshot_exposure_query(self)

    def restore_state(self, data: bytes) -> None:
        restore_exposure_query(self, data)
