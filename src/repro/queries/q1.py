"""Query 1 (§2): freezer-exposure monitoring (hybrid query).

::

    Select tag_id, A[].temp
    From ( Select Rstream(R.tag_id, R.loc, T.temp)
           From Products [Now] as R,
                Temperature [Partition By sensor Rows 1] as T
           Where (!(R.container IsA 'freezer') or R.container = NULL)
                 and R.loc = T.loc and T.temp > 0 °C
         ) As Global Stream S
    [ Pattern SEQ(A+)
      Where A[i].tag_id = A[1].tag_id and
            A[A.len].time > A[1].time + 6 hrs ]

Q1 is now a *declarative spec* compiled into an operator plan
(:mod:`repro.queries.compiler`): the inner block — frozen-product
filter, ``[Partition By sensor Rows 1]`` temperature window, and the
events × latest-temperature ``[Now]`` join — is local processing whose
operators are shared with any other registered query that uses them
(Q2 shares all three); the outer ``SEQ(A+)`` block consumes the
*global* stream S, so its per-object automaton state migrates between
sites (Appendix B). The 6-hour constant is a parameter here because
reproduction traces are minutes long, not days.
"""

from __future__ import annotations

from repro.queries.compiler import CompiledPattern, DeclarativeQuery
from repro.queries.legacy import ExposureTuple
from repro.queries.spec import (
    And,
    Compare,
    ContainerIsFreezer,
    IsFrozenProduct,
    JoinLatest,
    KleeneDuration,
    Latest,
    Node,
    Not,
    QuerySpec,
    Stream,
    Where,
)
from repro.sim.sensors import SensorReading
from repro.streams.operators import LatestByKey
from repro.streams.pattern import KleeneDurationPattern
from repro.streams.state import RowCodec
from repro.workloads.catalog import ProductCatalog

__all__ = [
    "FreezerExposureQuery",
    "ExposureTuple",
    "SENSOR_CODEC",
    "exposure_join",
    "freezer_exposure_spec",
]

#: wire layout of one temperature reading in window checkpoints — the
#: exact field order and widths the hand-written Q1 snapshot used.
SENSOR_CODEC = RowCodec(
    fields=(
        ("time", "varint"),
        ("site", "svarint"),
        ("sensor", "varint"),
        ("temp", "float64"),
    ),
    row=SensorReading,
)

#: the shared join's Rstream projection. ``container`` rides along even
#: though Q2 never reads it: an identical projection is what lets the
#: multi-query optimizer instantiate the join once for both queries.
EXPOSURE_SELECT = (
    ("time", "left.time"),
    ("tag", "left.tag"),
    ("place", "left.place"),
    ("container", "left.container"),
    ("temp", "right.temp"),
)


def exposure_join(catalog: ProductCatalog) -> tuple[Node, Latest, Node]:
    """The local sub-plan Q1 and Q2 share: frozen-product filter,
    latest-temperature window, and the events × temperature join.

    Returns ``(filtered_events, window, joined)``. Built separately by
    each query's spec; structural signatures make the compiler unify
    the instances when both are registered in one engine (§4.2's shared
    local processing).
    """
    events = Stream("events")
    sensors = Stream("sensors")
    frozen = Where(events, IsFrozenProduct(catalog))
    window = Latest(sensors, key=("site", "sensor"), codec=SENSOR_CODEC)
    joined = JoinLatest(
        frozen, window, probe=("site", "place"), select=EXPOSURE_SELECT
    )
    return frozen, window, joined


def freezer_exposure_spec(
    catalog: ProductCatalog,
    exposure_duration: int = 300,
    temp_threshold: float = 0.0,
    name: str = "q1",
) -> QuerySpec:
    """Build Query 1 as a declarative spec."""
    frozen, window, joined = exposure_join(catalog)
    outside = Not(ContainerIsFreezer(catalog))
    warm = Where(joined, And((outside, Compare("temp", ">", temp_threshold))))
    cold = Where(joined, And((outside, Compare("temp", "<=", temp_threshold))))
    back_inside = Where(frozen, ContainerIsFreezer(catalog))
    pattern = KleeneDuration(
        warm,
        key=("tag",),
        time="time",
        value="temp",
        duration=exposure_duration,
        resets=(back_inside, cold),
    )
    return QuerySpec(
        name, pattern, labels={"pattern": pattern, "temperature": window}
    )


class FreezerExposureQuery(DeclarativeQuery):
    """Continuous evaluation of Query 1 (a compiled-plan facade)."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 300,
        temp_threshold: float = 0.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        super().__init__(
            freezer_exposure_spec(catalog, exposure_duration, temp_threshold)
        )

    @property
    def pattern(self) -> KleeneDurationPattern:
        """The compiled ``SEQ(A+)`` automaton (global block)."""
        block: CompiledPattern = self._plan.labels["pattern"]
        return block.pattern

    @property
    def temperature(self) -> LatestByKey:
        """The compiled ``[Partition By sensor Rows 1]`` window."""
        return self._plan.labels["temperature"]
