"""Query 1 (§2): freezer-exposure monitoring (hybrid query).

::

    Select tag_id, A[].temp
    From ( Select Rstream(R.tag_id, R.loc, T.temp)
           From Products [Now] as R,
                Temperature [Partition By sensor Rows 1] as T
           Where (!(R.container IsA 'freezer') or R.container = NULL)
                 and R.loc = T.loc and T.temp > 0 °C
         ) As Global Stream S
    [ Pattern SEQ(A+)
      Where A[i].tag_id = A[1].tag_id and
            A[A.len].time > A[1].time + 6 hrs ]

The inner block is local processing (events × latest temperature per
sensor); the outer pattern block consumes the *global* stream S, so its
per-object automaton state migrates between sites (Appendix B). The
6-hour constant is a parameter here because reproduction traces are
minutes long, not days.
"""

from __future__ import annotations

import struct
from typing import Hashable, NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.core.events import ObjectEvent
from repro.sim.sensors import SensorReading
from repro.streams.operators import LatestByKey
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState
from repro.streams.state import (
    decode_pattern_state,
    encode_pattern_state,
    restore_pattern,
    snapshot_pattern,
)
from repro.sim.tags import EPC
from repro.workloads.catalog import ProductCatalog

__all__ = [
    "FreezerExposureQuery",
    "ExposureTuple",
    "snapshot_exposure_query",
    "restore_exposure_query",
]


def snapshot_exposure_query(query) -> bytes:
    """Checkpoint an exposure query (Q1/Q2): automaton states, fired
    alerts, and the ``[Partition By sensor Rows 1]`` temperature table.

    The temperature table matters for crash recovery: without it, the
    first events after a restart would find no latest reading and the
    restored site would silently miss pattern pushes the fault-free run
    made.
    """
    writer = ByteWriter()
    writer.blob(snapshot_pattern(query.pattern))
    table = query.temperature.table
    writer.varint(len(table))
    for key in sorted(table):
        reading = table[key]
        writer.varint(reading.time)
        writer.svarint(reading.site)
        writer.varint(reading.sensor)
        writer.float64(reading.temp)
    return writer.getvalue()


def restore_exposure_query(query, data: bytes) -> None:
    """Inverse of :func:`snapshot_exposure_query`."""
    reader = ByteReader(data)
    try:
        restore_pattern(query.pattern, reader.blob())
        table = {}
        for _ in range(reader.varint()):
            reading = SensorReading(
                time=reader.varint(),
                site=reader.svarint(),
                sensor=reader.varint(),
                temp=reader.float64(),
            )
            table[(reading.site, reading.sensor)] = reading
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed exposure-query snapshot: {exc}") from exc
    query.temperature.table = table


class ExposureTuple(NamedTuple):
    """One tuple of the inner query's output stream S."""

    time: int
    tag: EPC
    place: int
    temp: float


class FreezerExposureQuery:
    """Continuous evaluation of Query 1 over merged event/sensor streams."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 300,
        temp_threshold: float = 0.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        # Temperature [Partition By sensor Rows 1]
        self.temperature = LatestByKey(lambda s: (s.site, s.sensor))
        # Pattern SEQ(A+) over the global stream, partitioned by tag id.
        self.pattern = KleeneDurationPattern(
            key_fn=lambda s: s.tag,
            time_fn=lambda s: s.time,
            value_fn=lambda s: s.temp,
            duration=exposure_duration,
        )

    # -- stream handlers ----------------------------------------------------

    def on_sensor(self, reading: SensorReading) -> None:
        self.temperature.push(reading)

    def on_event(self, event: ObjectEvent) -> None:
        if not self.catalog.is_frozen_product(event.tag):
            return
        if self.catalog.is_freezer(event.container):
            # Back under refrigeration: the exposure run is broken.
            self.pattern.reset_key(event.tag, event.time)
            return
        reading = self.temperature.lookup((event.site, event.place))
        if reading is None:
            return
        if reading.temp > self.temp_threshold:
            self.pattern.push(
                ExposureTuple(event.time, event.tag, event.place, reading.temp)
            )
        else:
            # Measurably cold (e.g. a freezer location): not exposed.
            self.pattern.reset_key(event.tag, event.time)

    # -- results and migrated state ------------------------------------------

    @property
    def alerts(self) -> list[PatternAlert]:
        return self.pattern.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        """(tag, alert time) pairs for F-measure scoring."""
        return [(alert.key, alert.end_time) for alert in self.alerts]

    def export_state(self, tag: EPC) -> bytes | None:
        state = self.pattern.export_state(tag)
        return None if state is None else encode_pattern_state(state)

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Absorb a migrated automaton state (merging with any local
        partial match the new site has already built up)."""
        self.pattern.absorb_state(tag, decode_pattern_state(data))

    def active_states(self) -> dict[EPC, PatternState]:
        """Per-object automaton states currently held (for sharing)."""
        return dict(self.pattern.states)

    # -- checkpoint hooks (crash recovery) --------------------------------

    def snapshot_state(self) -> bytes:
        return snapshot_exposure_query(self)

    def restore_state(self, data: bytes) -> None:
        restore_exposure_query(self, data)
