"""The original hand-written monitoring queries (reference oracles).

These are the pre-compiler implementations of Q1, Q2, and the tracking
query, kept verbatim as the *reference path* the equivalence suite
(``tests/test_query_plans.py``) and the query-state benchmark compare
compiled plans against: alerts, migrated per-object state bytes, and
checkpoint payloads must match bit for bit. They are not registered by
any example or runtime code path — new scenarios are written as specs
(:mod:`repro.queries.spec`), not as classes like these.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Hashable, NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.core.events import ObjectEvent
from repro.sim.sensors import SensorReading
from repro.sim.tags import EPC, read_epc, write_epc
from repro.streams.operators import LatestByKey
from repro.streams.pattern import KleeneDurationPattern, PatternAlert, PatternState
from repro.streams.state import (
    decode_pattern_state,
    encode_pattern_state,
    restore_pattern,
    snapshot_pattern,
)
from repro.workloads.catalog import ProductCatalog

__all__ = [
    "ExposureTuple",
    "LegacyFreezerExposureQuery",
    "LegacyTemperatureExposureQuery",
    "LegacyPathDeviationQuery",
    "snapshot_exposure_query",
    "restore_exposure_query",
]


def snapshot_exposure_query(query) -> bytes:
    """Checkpoint an exposure query (Q1/Q2): automaton states, fired
    alerts, and the ``[Partition By sensor Rows 1]`` temperature table.

    The temperature table matters for crash recovery: without it, the
    first events after a restart would find no latest reading and the
    restored site would silently miss pattern pushes the fault-free run
    made.
    """
    writer = ByteWriter()
    writer.blob(snapshot_pattern(query.pattern))
    table = query.temperature.table
    writer.varint(len(table))
    for key in sorted(table):
        reading = table[key]
        writer.varint(reading.time)
        writer.svarint(reading.site)
        writer.varint(reading.sensor)
        writer.float64(reading.temp)
    return writer.getvalue()


def restore_exposure_query(query, data: bytes) -> None:
    """Inverse of :func:`snapshot_exposure_query`."""
    reader = ByteReader(data)
    try:
        restore_pattern(query.pattern, reader.blob())
        table = {}
        for _ in range(reader.varint()):
            reading = SensorReading(
                time=reader.varint(),
                site=reader.svarint(),
                sensor=reader.varint(),
                temp=reader.float64(),
            )
            table[(reading.site, reading.sensor)] = reading
    except (EOFError, struct.error, IndexError) as exc:
        raise ValueError(f"malformed exposure-query snapshot: {exc}") from exc
    query.temperature.table = table


class ExposureTuple(NamedTuple):
    """One tuple of the inner query's output stream S."""

    time: int
    tag: EPC
    place: int
    temp: float


class LegacyFreezerExposureQuery:
    """Hand-written continuous evaluation of Query 1."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 300,
        temp_threshold: float = 0.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        # Temperature [Partition By sensor Rows 1]
        self.temperature = LatestByKey(lambda s: (s.site, s.sensor))
        # Pattern SEQ(A+) over the global stream, partitioned by tag id.
        self.pattern = KleeneDurationPattern(
            key_fn=lambda s: s.tag,
            time_fn=lambda s: s.time,
            value_fn=lambda s: s.temp,
            duration=exposure_duration,
        )

    # -- stream handlers ----------------------------------------------------

    def on_sensor(self, reading: SensorReading) -> None:
        self.temperature.push(reading)

    def on_event(self, event: ObjectEvent) -> None:
        if not self.catalog.is_frozen_product(event.tag):
            return
        if self.catalog.is_freezer(event.container):
            # Back under refrigeration: the exposure run is broken.
            self.pattern.reset_key(event.tag, event.time)
            return
        reading = self.temperature.lookup((event.site, event.place))
        if reading is None:
            return
        if reading.temp > self.temp_threshold:
            self.pattern.push(
                ExposureTuple(event.time, event.tag, event.place, reading.temp)
            )
        else:
            # Measurably cold (e.g. a freezer location): not exposed.
            self.pattern.reset_key(event.tag, event.time)

    # -- results and migrated state ------------------------------------------

    @property
    def alerts(self) -> list[PatternAlert]:
        return self.pattern.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        """(tag, alert time) pairs for F-measure scoring."""
        return [(alert.key, alert.end_time) for alert in self.alerts]

    def export_state(self, tag: EPC) -> bytes | None:
        state = self.pattern.export_state(tag)
        return None if state is None else encode_pattern_state(state)

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Absorb a migrated automaton state (merging with any local
        partial match the new site has already built up)."""
        self.pattern.absorb_state(tag, decode_pattern_state(data))

    def active_states(self) -> dict[EPC, PatternState]:
        """Per-object automaton states currently held (for sharing)."""
        return dict(self.pattern.states)

    # -- checkpoint hooks (crash recovery) --------------------------------

    def snapshot_state(self) -> bytes:
        return snapshot_exposure_query(self)

    def restore_state(self, data: bytes) -> None:
        restore_exposure_query(self, data)


class LegacyTemperatureExposureQuery:
    """Hand-written continuous evaluation of Query 2."""

    def __init__(
        self,
        catalog: ProductCatalog,
        exposure_duration: int = 400,
        temp_threshold: float = 10.0,
    ) -> None:
        self.catalog = catalog
        self.temp_threshold = temp_threshold
        self.temperature = LatestByKey(lambda s: (s.site, s.sensor))
        self.pattern = KleeneDurationPattern(
            key_fn=lambda s: s.tag,
            time_fn=lambda s: s.time,
            value_fn=lambda s: s.temp,
            duration=exposure_duration,
        )

    def on_sensor(self, reading: SensorReading) -> None:
        self.temperature.push(reading)

    def on_event(self, event: ObjectEvent) -> None:
        if not self.catalog.is_frozen_product(event.tag):
            return
        reading = self.temperature.lookup((event.site, event.place))
        if reading is None:
            return
        if reading.temp > self.temp_threshold:
            self.pattern.push(
                ExposureTuple(event.time, event.tag, event.place, reading.temp)
            )
        else:
            self.pattern.reset_key(event.tag, event.time)

    @property
    def alerts(self) -> list[PatternAlert]:
        return self.pattern.alerts

    def alert_pairs(self) -> list[tuple[Hashable, int]]:
        return [(alert.key, alert.end_time) for alert in self.alerts]

    def export_state(self, tag: EPC) -> bytes | None:
        state = self.pattern.export_state(tag)
        return None if state is None else encode_pattern_state(state)

    def import_state(self, tag: EPC, data: bytes) -> None:
        self.pattern.absorb_state(tag, decode_pattern_state(data))

    def active_states(self) -> dict[EPC, PatternState]:
        return dict(self.pattern.states)

    # -- checkpoint hooks (crash recovery) --------------------------------

    def snapshot_state(self) -> bytes:
        return snapshot_exposure_query(self)

    def restore_state(self, data: bytes) -> None:
        restore_exposure_query(self, data)


class _LegacyDeviationAlert(NamedTuple):
    """An object observed off its intended route."""

    tag: EPC
    time: int
    site: int
    expected: tuple[int, ...]


@dataclass
class _RouteProgress:
    """Per-object tracking state (migrates with the object)."""

    position: int = 0
    deviated: bool = False
    history: list[int] = field(default_factory=list)


class LegacyPathDeviationQuery:
    """Hand-written continuous route conformance checking."""

    def __init__(self, routes: dict[EPC, tuple[int, ...]]) -> None:
        self.routes = dict(routes)
        self.progress: dict[EPC, _RouteProgress] = {}
        self.alerts: list[_LegacyDeviationAlert] = []

    def on_event(self, event: ObjectEvent) -> None:
        route = self.routes.get(event.tag)
        if route is None:
            return
        state = self.progress.setdefault(event.tag, _RouteProgress())
        if state.deviated:
            return
        if not state.history or state.history[-1] != event.site:
            state.history.append(event.site)
        if state.position < len(route) and event.site == route[state.position]:
            return  # still at the expected site
        if state.position + 1 < len(route) and event.site == route[state.position + 1]:
            state.position += 1  # advanced to the next expected site
            return
        state.deviated = True
        expected = route[state.position : state.position + 2]
        self.alerts.append(
            _LegacyDeviationAlert(event.tag, event.time, event.site, expected)
        )

    def path_of(self, tag: EPC) -> list[int]:
        """Sites visited so far (the "list the path taken" query)."""
        state = self.progress.get(tag)
        return list(state.history) if state is not None else []

    # -- migrated state (runtime QueryRouter hooks) ------------------------

    def export_state(self, tag: EPC) -> bytes | None:
        """Serialize one object's route progress for migration."""
        state = self.progress.get(tag)
        if state is None:
            return None
        writer = ByteWriter()
        writer.varint(state.position)
        writer.varint(1 if state.deviated else 0)
        writer.varint(len(state.history))
        for site in state.history:
            writer.varint(site)
        return writer.getvalue()

    def import_state(self, tag: EPC, data: bytes) -> None:
        """Merge migrated route progress with any local observations."""
        reader = ByteReader(data)
        try:
            position = reader.varint()
            deviated = bool(reader.varint())
            history = [reader.varint() for _ in range(reader.varint())]
        except EOFError as exc:
            raise ValueError(f"malformed route state: {exc}") from exc
        state = self.progress.setdefault(tag, _RouteProgress())
        state.position = max(state.position, position)
        state.deviated = state.deviated or deviated
        merged = list(history)
        for site in state.history:
            if not merged or merged[-1] != site:
                merged.append(site)
        state.history = merged

    # -- checkpoint hooks (crash recovery) ---------------------------------

    def snapshot_state(self) -> bytes:
        """Checkpoint all route progress and fired alerts (routes are
        constructor state and come back with the rebuilt instance)."""
        writer = ByteWriter()
        writer.varint(len(self.progress))
        for tag in sorted(self.progress):
            state = self.progress[tag]
            write_epc(writer, tag)
            writer.varint(state.position)
            writer.varint(1 if state.deviated else 0)
            writer.varint(len(state.history))
            for site in state.history:
                writer.svarint(site)
        writer.varint(len(self.alerts))
        for alert in self.alerts:
            write_epc(writer, alert.tag)
            writer.varint(alert.time)
            writer.svarint(alert.site)
            writer.varint(len(alert.expected))
            for site in alert.expected:
                writer.svarint(site)
        return writer.getvalue()

    def restore_state(self, data: bytes) -> None:
        reader = ByteReader(data)
        try:
            progress: dict[EPC, _RouteProgress] = {}
            for _ in range(reader.varint()):
                tag = read_epc(reader)
                position = reader.varint()
                deviated = bool(reader.varint())
                history = [reader.svarint() for _ in range(reader.varint())]
                progress[tag] = _RouteProgress(position, deviated, history)
            alerts: list[_LegacyDeviationAlert] = []
            for _ in range(reader.varint()):
                tag = read_epc(reader)
                time = reader.varint()
                site = reader.svarint()
                expected = tuple(reader.svarint() for _ in range(reader.varint()))
                alerts.append(_LegacyDeviationAlert(tag, time, site, expected))
        except EOFError as exc:
            raise ValueError(f"malformed tracking snapshot: {exc}") from exc
        self.progress = progress
        self.alerts = alerts
