"""Declarative query specs: the CQL+SEQ AST compiled plans are built from.

A monitoring query is no longer a hand-written class; it is a *spec* —
a small AST mirroring the paper's query syntax (§2, Appendix B) —
handed to the :mod:`repro.queries.compiler`:

* :class:`Stream` — a named input stream (``events``, ``sensors``);
* :class:`Where` — a ``Where`` clause over one stream (declarative
  :class:`Predicate` values, so identical clauses are recognizably
  identical across queries);
* :class:`Latest` — the ``[Partition By k Rows 1]`` window;
* :class:`JoinLatest` — ``S [Now] ⋈ R`` against such a window, with a
  declarative projection (``Select Rstream(...)``);
* :class:`KleeneDuration` — the global ``Pattern SEQ(A+)`` block with a
  minimum-span firing condition and explicit run-break inputs;
* :class:`RouteConformance` — the tracking query's per-object route
  automaton (§1), the second global block kind.

Every node carries a structural :meth:`~Node.signature`. Two nodes with
equal signatures compute the same thing, which is what lets the
compiler's multi-query optimizer instantiate a shared sub-plan once per
site (§4.2's shared local processing): Q1 and Q2 registered together
share one frozen-product filter, one temperature window, and one
events × latest-temperature join. Context objects (the product catalog,
route tables) participate by identity — two specs share sub-plans only
when they reference the *same* catalog.

The split the paper's Appendix B prescribes falls out of the node
kinds: everything below a global block (:class:`KleeneDuration`,
:class:`RouteConformance`) is per-site local processing whose operators
stay put; the global blocks hold per-object automaton state that
migrates with the objects.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.sim.tags import EPC, TagKind
from repro.streams.state import RowCodec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.workloads.catalog import ProductCatalog

__all__ = [
    "Node",
    "Stream",
    "Where",
    "Latest",
    "JoinLatest",
    "KleeneDuration",
    "RouteConformance",
    "QuerySpec",
    "Predicate",
    "Compare",
    "Not",
    "And",
    "IsFrozenProduct",
    "ContainerIsFreezer",
    "KindIs",
    "TypeConflict",
]


def _sig(value: Any) -> Any:
    """Signature of one node field.

    Nodes and codecs contribute their structural signature; context
    objects (catalogs, route tables — anything unhashable) contribute
    their identity, so sharing only unifies sub-plans built over the
    same live object.
    """
    if isinstance(value, (Node, Predicate)):
        return value.signature()
    if isinstance(value, RowCodec):
        return value.signature()
    if isinstance(value, tuple):
        return tuple(_sig(v) for v in value)
    try:
        hash(value)
    except TypeError:
        return ("id", id(value))
    return value


class _Signed:
    """Shared ``signature()``: class name + per-field signatures."""

    def signature(self) -> tuple:
        fields = getattr(self, "__dataclass_fields__", {})
        return (type(self).__name__,) + tuple(
            _sig(getattr(self, name)) for name in fields
        )


# -- predicates ------------------------------------------------------------


class Predicate(_Signed):
    """A declarative boolean clause evaluated on one tuple."""

    def __call__(self, item: Any) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """``field <op> value`` — e.g. ``Compare("temp", ">", 0.0)``."""

    field: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __call__(self, item: Any) -> bool:
        return _OPS[self.op](getattr(item, self.field), self.value)


@dataclass(frozen=True, eq=False)
class Not(Predicate):
    """Negation of an inner predicate."""

    inner: Predicate

    def __call__(self, item: Any) -> bool:
        return not self.inner(item)


@dataclass(frozen=True, eq=False)
class And(Predicate):
    """Conjunction of clauses (empty conjunction is true)."""

    clauses: tuple[Predicate, ...]

    def __call__(self, item: Any) -> bool:
        return all(clause(item) for clause in self.clauses)


@dataclass(frozen=True, eq=False)
class IsFrozenProduct(Predicate):
    """Catalog join: the tuple's tag names a frozen product (§2)."""

    catalog: ProductCatalog
    field: str = "tag"

    def __call__(self, item: Any) -> bool:
        return self.catalog.is_frozen_product(getattr(item, self.field))


@dataclass(frozen=True, eq=False)
class ContainerIsFreezer(Predicate):
    """Q1's ``R.container IsA 'freezer'`` clause."""

    catalog: ProductCatalog
    field: str = "container"

    def __call__(self, item: Any) -> bool:
        return self.catalog.is_freezer(getattr(item, self.field))


@dataclass(frozen=True)
class KindIs(Predicate):
    """The tuple's tag is of one packaging level (case, item, pallet)."""

    kind: TagKind
    field: str = "tag"

    def __call__(self, item: Any) -> bool:
        tag: EPC = getattr(item, self.field)
        return tag.kind is self.kind


@dataclass(frozen=True, eq=False)
class TypeConflict(Predicate):
    """Two tags on one tuple carry incompatible product types.

    ``conflicts`` is a frozenset of unordered type pairs (each pair a
    frozenset of two type names). The co-location monitor uses it to
    flag e.g. ``{"frozen", "chemical"}`` sharing a storage location.
    """

    catalog: ProductCatalog
    conflicts: frozenset
    left: str = "tag"
    right: str = "other"

    def __call__(self, item: Any) -> bool:
        a = getattr(item, self.left)
        b = getattr(item, self.right)
        if a == b:
            return False
        pair = frozenset(
            (self.catalog.product_type(a), self.catalog.product_type(b))
        )
        return pair in self.conflicts


# -- plan nodes ------------------------------------------------------------


class Node(_Signed):
    """Base class for spec AST nodes."""


@dataclass(frozen=True)
class Stream(Node):
    """A named input stream; the runtime feeds ``events`` (inferred
    :class:`~repro.core.events.ObjectEvent`) and ``sensors``
    (:class:`~repro.sim.sensors.SensorReading`)."""

    name: str


@dataclass(frozen=True, eq=False)
class Where(Node):
    """Forward source tuples satisfying a predicate."""

    source: Node
    predicate: Predicate


@dataclass(frozen=True, eq=False)
class Latest(Node):
    """``source [Partition By key Rows 1]`` — newest tuple per key.

    ``codec`` describes the row layout so site checkpoints can
    serialize the relation; windows referenced only transiently may
    omit it.
    """

    source: Node
    key: tuple[str, ...]
    codec: RowCodec | None = None


@dataclass(frozen=True, eq=False)
class JoinLatest(Node):
    """``source [Now] ⋈ window`` with a declarative projection.

    ``probe`` names the stream-tuple fields matched against the
    window's partition key. ``select`` is the Rstream projection: a
    tuple of ``(output_field, "left.x" | "right.y")`` pairs building
    the joined output row.
    """

    source: Node
    window: Latest
    probe: tuple[str, ...]
    select: tuple[tuple[str, str], ...]


@dataclass(frozen=True, eq=False)
class KleeneDuration(Node):
    """The global ``Pattern SEQ(A+)`` block (Appendix B).

    Qualifying tuples arrive from ``source``; tuples from any
    ``resets`` node break the partition's run (the pattern's negative
    condition). ``key`` partitions the automaton — a single field for
    per-object patterns (Q1/Q2's ``tag``), a composite for e.g. the
    dwell monitor's ``(tag, site, place)``; the *first* component must
    be the object tag, because that is what migration is keyed by.
    """

    source: Node
    key: tuple[str, ...]
    time: str
    value: str
    duration: int
    resets: tuple[Node, ...] = ()
    max_values: int = 64
    max_gap: int | None = None


@dataclass(frozen=True, eq=False)
class RouteConformance(Node):
    """The tracking query's global block: per-object route progress.

    ``routes`` maps monitored tags to their intended site sequence;
    the automaton raises one alert the first time an object shows up
    at a site that is neither the current nor the next step.
    """

    source: Node
    routes: Mapping[EPC, tuple[int, ...]]
    key: str = "tag"
    time: str = "time"
    site: str = "site"


@dataclass(eq=False)
class QuerySpec(_Signed):
    """One continuous query: a name, one global block, named handles.

    ``output`` is the query's global pattern block (its alerts are the
    query's answers). ``labels`` names interesting nodes so facades and
    tests can reach the compiled operator instances (e.g. Q1 labels its
    temperature window ``temperature`` and its pattern ``pattern``).
    """

    name: str
    output: Node
    labels: dict[str, Node] = field(default_factory=dict)
