"""The manufacturer's catalog: descriptive attributes per tag (§2).

Raw RFID data and inferred events carry only identities; properties
like "this case is a freezer case" or "this item is a frozen food"
come from the manufacturer's database and are joined in at query time
(Q1's ``R.container IsA 'freezer'``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.tags import EPC

__all__ = ["ProductCatalog"]


@dataclass
class ProductCatalog:
    """Attribute lookups for containers and products."""

    freezer_cases: set[EPC] = field(default_factory=set)
    frozen_items: set[EPC] = field(default_factory=set)
    product_types: dict[EPC, str] = field(default_factory=dict)

    def is_freezer(self, container: EPC | None) -> bool:
        """Q1's ``container IsA 'freezer'`` predicate."""
        return container is not None and container in self.freezer_cases

    def is_frozen_product(self, tag: EPC) -> bool:
        return tag in self.frozen_items

    def register_freezer_case(self, case: EPC, items: list[EPC]) -> None:
        """Mark a case as a freezer case full of frozen products."""
        self.freezer_cases.add(case)
        self.product_types[case] = "frozen"
        for item in items:
            self.frozen_items.add(item)
            self.product_types[item] = "frozen"

    def register_typed_case(
        self, case: EPC, items: list[EPC], product_type: str
    ) -> None:
        """Catalog a case of uniform product type (e.g. ``"chemical"``),
        for attribute joins like the co-location monitor's type-conflict
        predicate."""
        self.product_types[case] = product_type
        for item in items:
            self.product_types[item] = product_type

    def product_type(self, tag: EPC) -> str:
        return self.product_types.get(tag, "dry")
