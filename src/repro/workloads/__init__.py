"""Workload generators parameterized as in Table 2, plus scenarios.

* :mod:`repro.workloads.catalog` — the manufacturer's database mapping
  tag ids to product/container attributes (§2: "optional attributes
  describing object properties ... obtained from the manufacturer's
  database").
* :mod:`repro.workloads.scenarios` — scripted scenarios: the Fig. 4
  evidence journey and the cold-chain deployment exercising Q1/Q2.
"""

from repro.workloads.catalog import ProductCatalog
from repro.workloads.scenarios import (
    ColdChainScenario,
    EvidenceScenario,
    cold_chain_scenario,
    evidence_scenario,
)

__all__ = [
    "ColdChainScenario",
    "EvidenceScenario",
    "ProductCatalog",
    "cold_chain_scenario",
    "evidence_scenario",
]
