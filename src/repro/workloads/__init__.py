"""Workload generators parameterized as in Table 2, plus scenarios.

* :mod:`repro.workloads.catalog` — the manufacturer's database mapping
  tag ids to product/container attributes (§2: "optional attributes
  describing object properties ... obtained from the manufacturer's
  database").
* :mod:`repro.workloads.scenarios` — scripted scenarios: the Fig. 4
  evidence journey and the cold-chain deployment exercising Q1/Q2.
* :mod:`repro.workloads.monitors` — further monitoring scenarios
  written as declarative query specs (dwell-time violations,
  co-location breaches).
"""

from repro.workloads.catalog import ProductCatalog
from repro.workloads.scenarios import (
    ColdChainScenario,
    EvidenceScenario,
    cold_chain_scenario,
    evidence_scenario,
)

__all__ = [
    "ColdChainScenario",
    "ColocationBreachQuery",
    "DwellTimeQuery",
    "EvidenceScenario",
    "ProductCatalog",
    "cold_chain_scenario",
    "evidence_scenario",
]

_MONITOR_EXPORTS = {"ColocationBreachQuery", "DwellTimeQuery"}


def __getattr__(name: str):
    # Lazy: monitors import the query compiler, which imports this
    # package's catalog module — importing eagerly here would cycle.
    if name in _MONITOR_EXPORTS:
        from repro.workloads import monitors

        return getattr(monitors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
