"""Scripted scenarios used by figures, examples, and query benches.

* :func:`evidence_scenario` — the Fig. 4 journey: one object whose
  candidate containers are the real container R (always co-located), a
  false container NRC (co-located at the door and on the shelf but not
  at the belt), and a false container NRNC (co-located only at the
  door).
* :func:`cold_chain_scenario` — a cold-chain deployment for Q1/Q2:
  freezer cases on freezer shelves, room cases on room shelves, and
  injected exposures (frozen items moved into room cases), optionally
  spanning two sites so exposure runs cross a state migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import spawn_rng
from repro.sim.layout import Layout, warehouse_layout
from repro.sim.readers import ObservationSampler, RateSpec, ReadRateModel
from repro.sim.sensors import TemperatureField, room_and_freezer_field
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import AWAY, GroundTruth, Location, Trace
from repro.sim.world import World
from repro.workloads.catalog import ProductCatalog

__all__ = [
    "EvidenceScenario",
    "evidence_scenario",
    "ColdChainScenario",
    "cold_chain_scenario",
    "CareFacilityScenario",
    "care_facility_scenario",
]


@dataclass
class EvidenceScenario:
    """The Fig. 4 setup plus everything needed to run inference on it."""

    truth: GroundTruth
    trace: Trace
    layout: Layout
    model: ReadRateModel
    object_tag: EPC
    real: EPC  # R: travelled with the object the whole way
    nrc: EPC  # co-located at door and shelf, not at belt
    nrnc: EPC  # co-located at the door only
    horizon: int


def evidence_scenario(
    seed: int = 0,
    read_rate: RateSpec = 0.8,
    overlap_rate: RateSpec = 0.5,
    door_until: int = 90,
    belt_until: int = 110,
    horizon: int = 260,
) -> EvidenceScenario:
    """Build the three-candidate journey of Fig. 4."""
    layout = warehouse_layout(name="evidence")
    model = ReadRateModel.build(
        layout, main_rate=read_rate, overlap_rate=overlap_rate, seed=seed
    )
    world = World()
    rng = spawn_rng(seed, "evidence")
    real = EPC(TagKind.CASE, 0)
    nrc = EPC(TagKind.CASE, 1)
    nrnc = EPC(TagKind.CASE, 2)
    obj = EPC(TagKind.ITEM, 0)
    shelf = int(layout.shelf_indices[0])
    other_shelf = int(layout.shelf_indices[-1])

    world.register(real, 0, location=Location(0, layout.entry))
    world.register(obj, 0, container=real)
    world.move(obj, 0, Location(0, layout.entry))
    world.register(nrc, 0, location=Location(0, layout.entry))
    world.register(nrnc, 0, location=Location(0, layout.entry))

    # R rides with the object: door → belt → shelf.
    world.move(real, door_until, Location(0, layout.belt))
    world.move(real, belt_until, Location(0, shelf))
    # NRC skips the belt but reappears on the object's shelf.
    world.move(nrc, door_until, Location(0, other_shelf))
    world.move(nrc, belt_until + 10, Location(0, shelf))
    # NRNC leaves for a different shelf and never comes back.
    world.move(nrnc, door_until, Location(0, other_shelf))

    world.truth.horizon = horizon
    sampler = ObservationSampler(seed=spawn_rng(seed, "evidence-sampler"))
    trace = sampler.sample_site(world.truth, 0, layout, model, horizon)
    return EvidenceScenario(
        world.truth, trace, layout, model, obj, real, nrc, nrnc, horizon
    )


@dataclass
class ColdChainScenario:
    """A cold-chain deployment for the hybrid monitoring queries."""

    truth: GroundTruth
    traces: list[Trace]
    layouts: list[Layout]
    models: list[ReadRateModel]
    fields: list[TemperatureField]
    catalog: ProductCatalog
    horizon: int
    #: (item, moved-out time, moved-back time or None) ground truth.
    exposures: list[tuple[EPC, int, int | None]] = field(default_factory=list)

    @property
    def trace(self) -> Trace:
        if len(self.traces) != 1:
            raise ValueError("multi-site scenario; index .traces")
        return self.traces[0]

    def sensor_stream(self, site: int, seed: int = 0) -> list:
        return list(self.fields[site].stream(self.horizon, seed=seed))


def cold_chain_scenario(
    n_freezer_cases: int = 6,
    n_room_cases: int = 6,
    items_per_case: int = 6,
    n_exposures: int = 4,
    n_short_exposures: int = 1,
    exposure_start: int = 250,
    exposure_spacing: int = 60,
    short_exposure_length: int = 120,
    horizon: int = 1200,
    n_sites: int = 1,
    site_leave_time: int | None = None,
    transit_time: int = 30,
    read_rate: RateSpec = 0.8,
    overlap_rate: RateSpec = 0.5,
    seed: int = 0,
) -> ColdChainScenario:
    """Build a cold-chain deployment with injected exposures.

    Freezer cases (with frozen items) sit on freezer shelves; room cases
    on room-temperature shelves. ``n_exposures`` frozen items are moved
    into room cases at staggered times; the first ``n_short_exposures``
    of them are moved back before any exposure duration elapses
    (negative examples). With ``n_sites=2`` every case travels to the
    second site at ``site_leave_time``, so exposure runs span a state
    migration.
    """
    if n_exposures > n_freezer_cases:
        raise ValueError("at most one exposure per freezer case")
    rng = spawn_rng(seed, "cold-chain")
    layouts = [
        warehouse_layout(name=f"cold-{s}", n_shelves=4) for s in range(n_sites)
    ]
    models = [
        ReadRateModel.build(
            layout,
            main_rate=read_rate,
            overlap_rate=overlap_rate,
            seed=spawn_rng(seed, "cold-rates", s),
        )
        for s, layout in enumerate(layouts)
    ]
    fields = [
        room_and_freezer_field(s, layout, freezer_shelves=(0, 1))
        for s, layout in enumerate(layouts)
    ]
    world = World()
    catalog = ProductCatalog()

    n_cases = n_freezer_cases + n_room_cases
    cases = [EPC(TagKind.CASE, i) for i in range(n_cases)]
    items: dict[EPC, list[EPC]] = {}
    serial = 0
    for idx, case in enumerate(cases):
        world.register(case, 0)
        contents = []
        for _ in range(items_per_case):
            item = EPC(TagKind.ITEM, serial)
            serial += 1
            world.register(item, 0, container=case)
            contents.append(item)
        items[case] = contents
        if idx < n_freezer_cases:
            catalog.register_freezer_case(case, contents)

    def shelf_for(layout: Layout, idx: int) -> int:
        freezer = idx < n_freezer_cases
        pool = layout.shelf_indices[:2] if freezer else layout.shelf_indices[2:]
        return int(pool[idx % len(pool)])

    # Site 0 intake: staggered entry → belt → shelf.
    belt_free = 0
    for idx, case in enumerate(cases):
        t_entry = idx * 8
        world.move(case, t_entry, Location(0, layouts[0].entry))
        t_belt = max(t_entry + 5, belt_free)
        world.move(case, t_belt, Location(0, layouts[0].belt))
        belt_free = t_belt + 5
        world.move(case, t_belt + 5, Location(0, shelf_for(layouts[0], idx)))

    # Exposures: move a frozen item into a room case.
    exposures: list[tuple[EPC, int, int | None]] = []
    for k in range(n_exposures):
        src = cases[k]
        dst = cases[n_freezer_cases + (k % n_room_cases)]
        victim = items[src][int(rng.integers(items_per_case))]
        t_out = exposure_start + k * exposure_spacing
        world.set_container(victim, t_out, dst, anomalous=True)
        world.move(victim, t_out, world.location(dst))
        t_back: int | None = None
        if k < n_short_exposures:
            t_back = t_out + short_exposure_length
            world.set_container(victim, t_back, src, anomalous=True)
            world.move(victim, t_back, world.location(src))
        exposures.append((victim, t_out, t_back))

    # Optional migration to a second site.
    if n_sites >= 2:
        leave = site_leave_time if site_leave_time is not None else horizon // 2
        belt_free = 0
        for idx, case in enumerate(cases):
            t_exit = leave + idx * 4
            world.move(case, t_exit, Location(0, layouts[0].exit))
            world.move(case, t_exit + 5, AWAY)
            t_entry = t_exit + 5 + transit_time
            world.move(case, t_entry, Location(1, layouts[1].entry))
            t_belt = max(t_entry + 5, belt_free)
            world.move(case, t_belt, Location(1, layouts[1].belt))
            belt_free = t_belt + 5
            world.move(case, t_belt + 5, Location(1, shelf_for(layouts[1], idx)))

    world.truth.horizon = horizon
    sampler = ObservationSampler(seed=spawn_rng(seed, "cold-sampler"))
    traces = sampler.sample_all_sites(world.truth, layouts, models, horizon)
    return ColdChainScenario(
        world.truth, traces, layouts, models, fields, catalog, horizon, exposures
    )


@dataclass
class CareFacilityScenario:
    """A care facility whose exit door is dwell-monitored.

    Residents wear CASE tags and live on room shelves; the monitoring
    question is "who has been lingering at the exit door longer than
    ``dwell_limit`` epochs?" — the paper's elderly-care scenario, fed
    through the edge ingestion plane in the tests.
    """

    truth: GroundTruth
    traces: list[Trace]
    layouts: list[Layout]
    models: list[ReadRateModel]
    horizon: int
    #: dwell threshold (epochs at the exit) the workload monitors with.
    dwell_limit: int
    #: residents who lingered at the exit past ``dwell_limit``
    #: (tag, arrived-at-exit time) — each must raise an alert.
    wanderers: list[tuple[EPC, int]] = field(default_factory=list)
    #: residents who visited the exit but returned inside the limit —
    #: negatives that must NOT alert.
    returners: list[tuple[EPC, int]] = field(default_factory=list)

    def exit_violations(self, violations) -> list:
        """Filter dwell-query violations down to the exit door.

        A dwell monitor keyed on (tag, site, place) also fires for
        residents parked on their room shelves all day; exit
        monitoring only cares about the door.
        """
        doors = {(site, layout.exit) for site, layout in enumerate(self.layouts)}
        return [v for v in violations if (v[1], v[2]) in doors]


def care_facility_scenario(
    n_residents: int = 8,
    n_wanderers: int = 3,
    n_returners: int = 1,
    wander_start: int = 300,
    wander_spacing: int = 150,
    dwell_limit: int = 120,
    linger: int = 220,
    quick_visit: int = 40,
    horizon: int = 900,
    read_rate: RateSpec = 0.95,
    overlap_rate: RateSpec = 0.3,
    seed: int = 0,
) -> CareFacilityScenario:
    """Build the exit-monitoring workload.

    ``n_residents`` residents settle onto room shelves; ``n_wanderers``
    of them walk to the exit door at staggered times. The first
    ``n_returners`` head back to their room after ``quick_visit``
    epochs (inside ``dwell_limit`` — negatives); the rest linger for
    ``linger`` epochs (past the limit — each must alert) before staff
    walk them back.
    """
    if n_wanderers > n_residents:
        raise ValueError("more wanderers than residents")
    if n_returners > n_wanderers:
        raise ValueError("more returners than wanderers")
    if quick_visit >= dwell_limit:
        raise ValueError("quick_visit must stay inside dwell_limit")
    if linger <= dwell_limit:
        raise ValueError("linger must exceed dwell_limit")
    rng = spawn_rng(seed, "care-facility")
    layout = warehouse_layout(name="care-facility", n_shelves=4)
    model = ReadRateModel.build(
        layout,
        main_rate=read_rate,
        overlap_rate=overlap_rate,
        seed=spawn_rng(seed, "care-rates"),
    )
    world = World()
    residents = [EPC(TagKind.CASE, i) for i in range(n_residents)]
    shelves = layout.shelf_indices

    # Morning intake: entry → belt → room shelf, staggered.
    rooms: dict[EPC, int] = {}
    belt_free = 0
    for idx, resident in enumerate(residents):
        world.register(resident, 0)
        t_entry = idx * 8
        world.move(resident, t_entry, Location(0, layout.entry))
        t_belt = max(t_entry + 5, belt_free)
        world.move(resident, t_belt, Location(0, layout.belt))
        belt_free = t_belt + 5
        room = int(shelves[idx % len(shelves)])
        rooms[resident] = room
        world.move(resident, t_belt + 5, Location(0, room))

    # Wanderers drift to the exit door at staggered times.
    wanderers: list[tuple[EPC, int]] = []
    returners: list[tuple[EPC, int]] = []
    order = list(rng.permutation(n_residents)[:n_wanderers])
    for k, pick in enumerate(order):
        resident = residents[int(pick)]
        t_out = wander_start + k * wander_spacing
        world.move(resident, t_out, Location(0, layout.exit))
        stay = quick_visit if k < n_returners else linger
        world.move(resident, t_out + stay, Location(0, rooms[resident]))
        if k < n_returners:
            returners.append((resident, t_out))
        else:
            wanderers.append((resident, t_out))

    world.truth.horizon = horizon
    sampler = ObservationSampler(seed=spawn_rng(seed, "care-sampler"))
    traces = sampler.sample_all_sites(world.truth, [layout], [model], horizon)
    return CareFacilityScenario(
        world.truth,
        traces,
        [layout],
        [model],
        horizon,
        dwell_limit,
        wanderers,
        returners,
    )
