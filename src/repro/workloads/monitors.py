"""New monitoring scenarios written as specs, not subsystems.

The point of the declarative query layer: a new monitoring scenario is
a handful of AST nodes reusing the existing operator runtime — it gets
multi-query sharing, per-object state migration, and site checkpoints
for free. Two monitors ship here:

* :class:`DwellTimeQuery` — "report any object that has sat in one
  storage location longer than *T*": a ``SEQ(A+)`` block partitioned by
  ``(tag, site, place)`` whose ``max_gap`` breaks a run once the object
  stops being read at the location.
* :class:`ColocationBreachQuery` — "report objects sharing a storage
  location with incompatible goods" (e.g. frozen food next to
  chemicals): events join the latest occupant per location ([Now] ⋈
  latest-by-place, probing the pre-update relation so an object never
  conflicts with itself at its own instant), a catalog type-conflict
  predicate gates the pattern, and a sustained conflict fires.

Both are federation-ready: their per-object automaton state migrates
with the objects exactly like Q1/Q2's, and their windows checkpoint
through the same :class:`~repro.queries.protocol.QueryState` protocol.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.events import ObjectEvent
from repro.queries.compiler import CompiledPattern, DeclarativeQuery
from repro.queries.spec import (
    JoinLatest,
    KindIs,
    KleeneDuration,
    Latest,
    Not,
    QuerySpec,
    Stream,
    TypeConflict,
    Where,
)
from repro.sim.tags import EPC, TagKind
from repro.streams.pattern import KleeneDurationPattern
from repro.streams.state import RowCodec
from repro.workloads.catalog import ProductCatalog

__all__ = [
    "EVENT_CODEC",
    "DwellTimeQuery",
    "ColocationBreachQuery",
    "dwell_time_spec",
    "colocation_breach_spec",
]

#: wire layout of one object event in window checkpoints (the
#: co-location monitor's latest-occupant relation).
EVENT_CODEC = RowCodec(
    fields=(
        ("time", "varint"),
        ("tag", "epc"),
        ("site", "svarint"),
        ("place", "varint"),
        ("container", "opt_epc"),
    ),
    row=ObjectEvent,
)


def dwell_time_spec(
    max_dwell: int,
    kind: TagKind = TagKind.CASE,
    max_gap: int = 60,
    name: str = "dwell",
) -> QuerySpec:
    """Dwell-time violation: ``kind``-level objects read at one
    ``(site, place)`` for a span exceeding ``max_dwell``.

    ``max_gap`` is the silence that ends a visit: once the object stops
    being read at the location for longer than it, the next sighting
    starts a fresh visit instead of extending a stale one.
    """
    monitored = Where(Stream("events"), KindIs(kind))
    pattern = KleeneDuration(
        monitored,
        key=("tag", "site", "place"),
        time="time",
        value="place",
        duration=max_dwell,
        max_gap=max_gap,
    )
    return QuerySpec(name, pattern, labels={"pattern": pattern})


class DwellTimeQuery(DeclarativeQuery):
    """Dwell-time violation monitor (a compiled-plan facade)."""

    def __init__(
        self,
        max_dwell: int,
        kind: TagKind = TagKind.CASE,
        max_gap: int = 60,
    ) -> None:
        self.max_dwell = max_dwell
        super().__init__(dwell_time_spec(max_dwell, kind=kind, max_gap=max_gap))

    @property
    def pattern(self) -> KleeneDurationPattern:
        block: CompiledPattern = self._plan.labels["pattern"]
        return block.pattern

    def violations(self) -> list[tuple[EPC, int, int, int]]:
        """(tag, site, place, alert time) for every fired violation."""
        return [
            (alert.key[0], alert.key[1], alert.key[2], alert.end_time)
            for alert in self.alerts
        ]


#: join projection for the co-location monitor: the probing event's
#: identity/location plus the latest previous occupant's tag.
_COLOCATION_SELECT = (
    ("time", "left.time"),
    ("tag", "left.tag"),
    ("site", "left.site"),
    ("place", "left.place"),
    ("other", "right.tag"),
)


def colocation_breach_spec(
    catalog: ProductCatalog,
    conflicts: Iterable[Iterable[str]] = (("frozen", "chemical"),),
    duration: int = 60,
    max_gap: int = 60,
    name: str = "colocation",
) -> QuerySpec:
    """Co-location breach: an object sharing a storage location with an
    incompatible product type for longer than ``duration``.

    ``conflicts`` lists unordered product-type pairs (from the
    manufacturer's catalog) that must not share a location.
    """
    normalized = frozenset(frozenset(pair) for pair in conflicts)
    events = Stream("events")
    occupancy = Latest(events, key=("site", "place"), codec=EVENT_CODEC)
    joined = JoinLatest(
        events, occupancy, probe=("site", "place"), select=_COLOCATION_SELECT
    )
    conflict = TypeConflict(catalog, normalized)
    breach = Where(joined, conflict)
    clear = Where(joined, Not(conflict))
    pattern = KleeneDuration(
        breach,
        key=("tag", "site", "place"),
        time="time",
        value="place",
        duration=duration,
        resets=(clear,),
        max_gap=max_gap,
    )
    return QuerySpec(
        name, pattern, labels={"pattern": pattern, "occupancy": occupancy}
    )


class ColocationBreachQuery(DeclarativeQuery):
    """Co-location breach monitor (a compiled-plan facade)."""

    def __init__(
        self,
        catalog: ProductCatalog,
        conflicts: Iterable[Iterable[str]] = (("frozen", "chemical"),),
        duration: int = 60,
        max_gap: int = 60,
    ) -> None:
        self.catalog = catalog
        super().__init__(
            colocation_breach_spec(
                catalog, conflicts, duration=duration, max_gap=max_gap
            )
        )

    @property
    def pattern(self) -> KleeneDurationPattern:
        block: CompiledPattern = self._plan.labels["pattern"]
        return block.pattern

    def breaches(self) -> list[tuple[EPC, int, int, int]]:
        """(tag, site, place, alert time) for every fired breach."""
        return [
            (alert.key[0], alert.key[1], alert.key[2], alert.end_time)
            for alert in self.alerts
        ]
