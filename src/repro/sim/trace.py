"""Raw RFID readings, traces, and ground truth.

A raw RFID reading is ``(time, tag id, reader id)`` — nothing more
(§1: "this is a fundamental limitation of RFID technology"). A
:class:`Trace` is the stream of readings observed at one site, together
with the site's layout and measured read-rate model (read rates are
measured with reference tags in deployments, §3.1).

:class:`GroundTruth` is the simulator's record of what actually
happened: true locations, true containment, and injected containment
changes. It is used only for evaluation and for sampling synthetic
readings — never by the inference algorithms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Iterator, NamedTuple

from repro._util.intervals import IntervalMap
from repro.sim.tags import EPC, TagKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.layout import Layout
    from repro.sim.readers import ReadRateModel

__all__ = ["Location", "AWAY", "Reading", "ContainmentChange", "GroundTruth", "Trace"]


class Location(NamedTuple):
    """A physical position: (site index, reader/place index within site)."""

    site: int
    place: int


#: The object is not at any monitored site (in transit / departed).
AWAY = Location(-1, -1)


class Reading(NamedTuple):
    """One raw RFID observation."""

    time: int
    tag: EPC
    reader: int


class ContainmentChange(NamedTuple):
    """Ground-truth record of an (anomalous) containment change."""

    time: int
    tag: EPC
    old_container: EPC | None
    new_container: EPC | None


class GroundTruth:
    """True world state recorded by the simulator (evaluation only)."""

    def __init__(self) -> None:
        self.locations: dict[EPC, IntervalMap[Location]] = {}
        self.containment: dict[EPC, IntervalMap[EPC | None]] = {}
        self.changes: list[ContainmentChange] = []
        self.horizon: int = 0

    # -- recording (used by simulators) --------------------------------

    def record_location(self, tag: EPC, time: int, location: Location) -> None:
        """Record that ``tag`` is at ``location`` from ``time`` onward."""
        self.locations.setdefault(tag, IntervalMap(AWAY)).set_from(time, location)

    def record_container(self, tag: EPC, time: int, container: EPC | None) -> None:
        """Record that ``tag`` is inside ``container`` from ``time`` onward."""
        self.containment.setdefault(tag, IntervalMap(None)).set_from(time, container)

    def record_change(
        self, time: int, tag: EPC, old: EPC | None, new: EPC | None
    ) -> None:
        """Record an anomalous containment change (for F-measure scoring)."""
        self.changes.append(ContainmentChange(time, tag, old, new))

    # -- queries (used by metrics and samplers) -------------------------

    def location_at(self, tag: EPC, time: int) -> Location:
        imap = self.locations.get(tag)
        return imap.value_at(time) if imap is not None else AWAY

    def container_at(self, tag: EPC, time: int) -> EPC | None:
        imap = self.containment.get(tag)
        return imap.value_at(time) if imap is not None else None

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """All known tags, optionally filtered by packaging level."""
        pool: Iterable[EPC] = self.locations.keys()
        if kind is None:
            return sorted(pool)
        return sorted(t for t in pool if t.kind is kind)

    def items(self) -> list[EPC]:
        return self.tags(TagKind.ITEM)

    def cases(self) -> list[EPC]:
        return self.tags(TagKind.CASE)

    def pallets(self) -> list[EPC]:
        return self.tags(TagKind.PALLET)

    def changes_in(self, start: int, end: int) -> list[ContainmentChange]:
        """Anomalous changes with ``start <= time < end``."""
        return [c for c in self.changes if start <= c.time < end]

    def present_at_site(self, site: int, time: int) -> list[EPC]:
        """Tags physically at ``site`` during epoch ``time``."""
        return [
            tag
            for tag, imap in self.locations.items()
            if (loc := imap.value_at(time)) is not None and loc.site == site
        ]


class Trace:
    """The raw reading stream observed at one site.

    Readings are stored sorted by time and indexed per tag for the
    inference engine (which iterates a tag's readings inside a window).
    """

    def __init__(
        self,
        site: int,
        layout: "Layout",
        model: "ReadRateModel",
        readings: Iterable[Reading],
        horizon: int,
    ) -> None:
        self.site = site
        self.layout = layout
        self.model = model
        self.readings: list[Reading] = sorted(readings)
        self.horizon = horizon
        self._by_tag: dict[EPC, list[tuple[int, int]]] = defaultdict(list)
        for r in self.readings:
            self._by_tag[r.tag].append((r.time, r.reader))

    def __len__(self) -> int:
        return len(self.readings)

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """Tags with at least one reading, optionally filtered by kind."""
        if kind is None:
            return sorted(self._by_tag)
        return sorted(t for t in self._by_tag if t.kind is kind)

    def tag_readings(self, tag: EPC) -> list[tuple[int, int]]:
        """All ``(time, reader)`` pairs for ``tag``, in time order."""
        return self._by_tag.get(tag, [])

    def tag_readings_in(self, tag: EPC, start: int, end: int) -> list[tuple[int, int]]:
        """``(time, reader)`` pairs for ``tag`` with ``start <= time < end``."""
        from bisect import bisect_left

        rows = self._by_tag.get(tag, [])
        lo = bisect_left(rows, (start, -1))
        hi = bisect_left(rows, (end, -1))
        return rows[lo:hi]

    def readings_in(self, start: int, end: int) -> Iterator[Reading]:
        """All readings with ``start <= time < end``, in time order."""
        from bisect import bisect_left

        lo = bisect_left(self.readings, Reading(start, EPC(TagKind.PALLET, -1), -1))
        for idx in range(lo, len(self.readings)):
            reading = self.readings[idx]
            if reading.time >= end:
                break
            yield reading

    def first_seen(self, tag: EPC) -> int | None:
        """Epoch of the first reading of ``tag`` (None if never read)."""
        rows = self._by_tag.get(tag)
        return rows[0][0] if rows else None

    def last_seen(self, tag: EPC) -> int | None:
        """Epoch of the last reading of ``tag`` (None if never read)."""
        rows = self._by_tag.get(tag)
        return rows[-1][0] if rows else None

    def restricted(self, epochs: "set[int] | None" = None) -> "Trace":
        """A copy keeping only readings whose epoch is in ``epochs``."""
        if epochs is None:
            return self
        kept = [r for r in self.readings if r.time in epochs]
        return Trace(self.site, self.layout, self.model, kept, self.horizon)
