"""Raw RFID readings, traces, and ground truth.

A raw RFID reading is ``(time, tag id, reader id)`` — nothing more
(§1: "this is a fundamental limitation of RFID technology"). A
:class:`Trace` is the stream of readings observed at one site, together
with the site's layout and measured read-rate model (read rates are
measured with reference tags in deployments, §3.1).

Storage is **columnar**: readings live in sorted parallel numpy arrays
(epoch, tag index, reader index) against an interned tag table, kept in
two orders — time-major for stream scans and tag-major for per-tag
window extraction. ``tag_readings_in`` is two ``searchsorted`` calls
returning array views; nothing on the inference hot path materializes
Python tuples. The :class:`Reading` namedtuple remains the row-level
interchange format for codecs, CSV IO, and tests.

:class:`GroundTruth` is the simulator's record of what actually
happened: true locations, true containment, and injected containment
changes. It is used only for evaluation and for sampling synthetic
readings — never by the inference algorithms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro._util.intervals import IntervalMap
from repro.sim.tags import EPC, TagKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.layout import Layout
    from repro.sim.readers import ReadRateModel

__all__ = ["Location", "AWAY", "Reading", "ContainmentChange", "GroundTruth", "Trace"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class Location(NamedTuple):
    """A physical position: (site index, reader/place index within site)."""

    site: int
    place: int


#: The object is not at any monitored site (in transit / departed).
AWAY = Location(-1, -1)


class Reading(NamedTuple):
    """One raw RFID observation."""

    time: int
    tag: EPC
    reader: int


class ContainmentChange(NamedTuple):
    """Ground-truth record of an (anomalous) containment change."""

    time: int
    tag: EPC
    old_container: EPC | None
    new_container: EPC | None


class GroundTruth:
    """True world state recorded by the simulator (evaluation only)."""

    def __init__(self) -> None:
        self.locations: dict[EPC, IntervalMap[Location]] = {}
        self.containment: dict[EPC, IntervalMap[EPC | None]] = {}
        self.changes: list[ContainmentChange] = []
        self.horizon: int = 0

    # -- recording (used by simulators) --------------------------------

    def record_location(self, tag: EPC, time: int, location: Location) -> None:
        """Record that ``tag`` is at ``location`` from ``time`` onward."""
        self.locations.setdefault(tag, IntervalMap(AWAY)).set_from(time, location)

    def record_container(self, tag: EPC, time: int, container: EPC | None) -> None:
        """Record that ``tag`` is inside ``container`` from ``time`` onward."""
        self.containment.setdefault(tag, IntervalMap(None)).set_from(time, container)

    def record_change(
        self, time: int, tag: EPC, old: EPC | None, new: EPC | None
    ) -> None:
        """Record an anomalous containment change (for F-measure scoring)."""
        self.changes.append(ContainmentChange(time, tag, old, new))

    # -- queries (used by metrics and samplers) -------------------------

    def location_at(self, tag: EPC, time: int) -> Location:
        imap = self.locations.get(tag)
        return imap.value_at(time) if imap is not None else AWAY

    def container_at(self, tag: EPC, time: int) -> EPC | None:
        imap = self.containment.get(tag)
        return imap.value_at(time) if imap is not None else None

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """All known tags, optionally filtered by packaging level."""
        pool: Iterable[EPC] = self.locations.keys()
        if kind is None:
            return sorted(pool)
        return sorted(t for t in pool if t.kind is kind)

    def items(self) -> list[EPC]:
        return self.tags(TagKind.ITEM)

    def cases(self) -> list[EPC]:
        return self.tags(TagKind.CASE)

    def pallets(self) -> list[EPC]:
        return self.tags(TagKind.PALLET)

    def changes_in(self, start: int, end: int) -> list[ContainmentChange]:
        """Anomalous changes with ``start <= time < end``."""
        return [c for c in self.changes if start <= c.time < end]

    def present_at_site(self, site: int, time: int) -> list[EPC]:
        """Tags physically at ``site`` during epoch ``time``."""
        return [
            tag
            for tag, imap in self.locations.items()
            if (loc := imap.value_at(time)) is not None and loc.site == site
        ]


class Trace:
    """The raw reading stream observed at one site (columnar).

    Two parallel-array orderings are kept:

    * **time-major** (``times``, ``tag_ids``, ``readers``) — sorted by
      ``(time, tag, reader)``, driving stream scans and CSV export;
    * **tag-major** (``tag_times``, ``tag_readers`` with ``tag_starts``
      offsets) — sorted by ``(tag, time, reader)``, so a tag's readings
      are one contiguous slice and a window restriction is two
      ``searchsorted`` calls.

    ``tag_table`` interns every tag with at least one reading, in EPC
    order; ``tag_ids`` index into it.
    """

    def __init__(
        self,
        site: int,
        layout: "Layout",
        model: "ReadRateModel",
        readings: Iterable[Reading],
        horizon: int,
    ) -> None:
        rows = list(readings)
        table = sorted({r.tag for r in rows})
        index = {tag: i for i, tag in enumerate(table)}
        times = np.fromiter((r.time for r in rows), dtype=np.int64, count=len(rows))
        tag_ids = np.fromiter(
            (index[r.tag] for r in rows), dtype=np.int64, count=len(rows)
        )
        readers = np.fromiter(
            (r.reader for r in rows), dtype=np.int64, count=len(rows)
        )
        self._init_columns(site, layout, model, times, tag_ids, readers, table, horizon)

    @classmethod
    def from_columns(
        cls,
        site: int,
        layout: "Layout",
        model: "ReadRateModel",
        times: np.ndarray,
        tag_ids: np.ndarray,
        readers: np.ndarray,
        tag_table: Sequence[EPC],
        horizon: int,
    ) -> "Trace":
        """Build a trace directly from parallel reading columns.

        ``tag_table`` need not be sorted or fully used; the constructor
        re-interns so that ``tag_table`` ends up EPC-sorted and every
        entry has at least one reading (the :meth:`tags` contract).
        """
        trace = cls.__new__(cls)
        times = np.ascontiguousarray(times, dtype=np.int64)
        tag_ids = np.ascontiguousarray(tag_ids, dtype=np.int64)
        readers = np.ascontiguousarray(readers, dtype=np.int64)
        table = list(tag_table)
        used = np.unique(tag_ids) if tag_ids.size else _EMPTY_I64
        order = sorted(used.tolist(), key=lambda i: table[i])
        remap = np.zeros(len(table), dtype=np.int64)
        for new_id, old_id in enumerate(order):
            remap[old_id] = new_id
        compact = [table[i] for i in order]
        trace._init_columns(
            site,
            layout,
            model,
            times,
            remap[tag_ids] if tag_ids.size else tag_ids,
            readers,
            compact,
            horizon,
        )
        return trace

    def _init_columns(
        self,
        site: int,
        layout: "Layout",
        model: "ReadRateModel",
        times: np.ndarray,
        tag_ids: np.ndarray,
        readers: np.ndarray,
        tag_table: list[EPC],
        horizon: int,
    ) -> None:
        self.site = site
        self.layout = layout
        self.model = model
        self.horizon = horizon
        self.tag_table: list[EPC] = tag_table
        self._tag_index: dict[EPC, int] = {t: i for i, t in enumerate(tag_table)}
        # Time-major order (== sorted(readings) of the tuple era, since
        # tag ids follow EPC order).
        order = np.lexsort((readers, tag_ids, times))
        self.times = times[order]
        self.tag_ids = tag_ids[order]
        self.readers = readers[order]
        # Tag-major order: each tag's readings are one contiguous,
        # time-sorted slice.
        torder = np.lexsort((readers, times, tag_ids))
        self.tag_times = times[torder]
        self.tag_readers = readers[torder]
        counts = np.bincount(tag_ids, minlength=len(tag_table)) if tag_ids.size else (
            np.zeros(len(tag_table), dtype=np.int64)
        )
        self.tag_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        self._readings_cache: list[Reading] | None = None
        self._time_key_cache: tuple[np.ndarray, int] | None = None

    # -- tuple-level views (IO, codecs, tests) ---------------------------

    @property
    def readings(self) -> list[Reading]:
        """The readings as (time, tag, reader) tuples, in time order.

        Materialized lazily and cached — the inference hot path never
        calls this; it exists for codecs, persistence, and tests.
        """
        if self._readings_cache is None:
            table = self.tag_table
            self._readings_cache = [
                Reading(int(t), table[i], int(r))
                for t, i, r in zip(
                    self.times.tolist(), self.tag_ids.tolist(), self.readers.tolist()
                )
            ]
        return self._readings_cache

    def __len__(self) -> int:
        return int(self.times.size)

    # -- tag-level access -------------------------------------------------

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """Tags with at least one reading, optionally filtered by kind."""
        if kind is None:
            return list(self.tag_table)
        return [t for t in self.tag_table if t.kind is kind]

    def tag_id(self, tag: EPC) -> int | None:
        """Interned index of ``tag`` (None if it never produced a reading)."""
        return self._tag_index.get(tag)

    def tag_slice(self, tag: EPC) -> tuple[int, int]:
        """``[lo, hi)`` bounds of ``tag``'s readings in the tag-major arrays."""
        idx = self._tag_index.get(tag)
        if idx is None:
            return 0, 0
        return int(self.tag_starts[idx]), int(self.tag_starts[idx + 1])

    def tag_readings(self, tag: EPC) -> tuple[np.ndarray, np.ndarray]:
        """``(times, readers)`` array views for ``tag``, in time order."""
        lo, hi = self.tag_slice(tag)
        return self.tag_times[lo:hi], self.tag_readers[lo:hi]

    def reading_count(self, tag: EPC) -> int:
        """Number of readings of ``tag`` in the whole trace."""
        lo, hi = self.tag_slice(tag)
        return hi - lo

    def _time_keys(self) -> tuple[np.ndarray, int]:
        """Composite ``tag_id * mult + time`` keys over the tag-major
        order (cached) — they make per-tag time-range lookups for *all*
        tags two vectorized ``searchsorted`` calls."""
        if self._time_key_cache is None:
            if self.tag_times.size:
                mult = int(self.tag_times.max()) + 2
                counts = np.diff(self.tag_starts)
                ids = np.repeat(
                    np.arange(len(self.tag_table), dtype=np.int64), counts
                )
                keys = ids * mult + self.tag_times
            else:
                mult = 2
                keys = np.empty(0, dtype=np.int64)
            self._time_key_cache = (keys, mult)
        return self._time_key_cache

    def tag_range_bounds(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-tag ``[a, b)`` bounds (tag-major indices) of readings
        with ``start <= time < end`` — for every tag in one shot.

        Work is O(n_tags · log n_readings) regardless of the range, so
        window builds stay bounded by the window, not the stream age.
        """
        keys, mult = self._time_keys()
        ids = np.arange(len(self.tag_table), dtype=np.int64)
        lo = min(max(int(start), 0), mult - 1)
        hi = min(max(int(end), 0), mult - 1)
        a = np.searchsorted(keys, ids * mult + lo, side="left")
        b = np.searchsorted(keys, ids * mult + hi, side="left")
        return a, b

    def tag_readings_in(
        self, tag: EPC, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, readers)`` array views with ``start <= time < end``.

        Two ``searchsorted`` calls into the tag's contiguous slice — no
        Python-level iteration, no copies.
        """
        lo, hi = self.tag_slice(tag)
        seg = self.tag_times[lo:hi]
        a = int(np.searchsorted(seg, start, side="left"))
        b = int(np.searchsorted(seg, end, side="left"))
        return seg[a:b], self.tag_readers[lo + a : lo + b]

    # -- stream-level access ------------------------------------------------

    def time_slice(self, start: int, end: int) -> tuple[int, int]:
        """``[lo, hi)`` bounds of epochs ``start <= t < end`` in the
        time-major arrays."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return lo, hi

    def readings_in_columns(
        self, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, tag_ids, readers)`` views for ``start <= time < end``."""
        lo, hi = self.time_slice(start, end)
        return self.times[lo:hi], self.tag_ids[lo:hi], self.readers[lo:hi]

    def tags_read_in(self, start: int, end: int) -> list[EPC]:
        """Distinct tags with at least one reading in ``[start, end)``."""
        _, tag_ids, _ = self.readings_in_columns(start, end)
        return [self.tag_table[i] for i in np.unique(tag_ids).tolist()]

    def readings_in(self, start: int, end: int) -> Iterator[Reading]:
        """All readings with ``start <= time < end``, in time order."""
        times, tag_ids, readers = self.readings_in_columns(start, end)
        table = self.tag_table
        for t, i, r in zip(times.tolist(), tag_ids.tolist(), readers.tolist()):
            yield Reading(t, table[i], r)

    def first_seen(self, tag: EPC) -> int | None:
        """Epoch of the first reading of ``tag`` (None if never read)."""
        lo, hi = self.tag_slice(tag)
        return int(self.tag_times[lo]) if hi > lo else None

    def last_seen(self, tag: EPC) -> int | None:
        """Epoch of the last reading of ``tag`` (None if never read)."""
        lo, hi = self.tag_slice(tag)
        return int(self.tag_times[hi - 1]) if hi > lo else None

    def restricted(self, epochs: "set[int] | None" = None) -> "Trace":
        """A copy keeping only readings whose epoch is in ``epochs``."""
        if epochs is None:
            return self
        wanted = np.fromiter(epochs, dtype=np.int64, count=len(epochs))
        keep = np.isin(self.times, wanted)
        return Trace.from_columns(
            self.site,
            self.layout,
            self.model,
            self.times[keep],
            self.tag_ids[keep],
            self.readers[keep],
            self.tag_table,
            self.horizon,
        )
