"""Reader placement and interrogation schedules for one site.

A site (warehouse, hospital storage area, ...) has a set of static
readers; the discrete location set R used by the inference model is
exactly the set of those readers' positions (§3.1: "it suffices to
localize objects to the nearest reader").

Readers interrogate on schedules (Appendix C.1: non-shelf readers every
second, shelf readers every 10 seconds). A schedule is ``(period, phase,
burst)``: the reader is active at epoch ``t`` iff
``(t - phase) mod period < burst``. ``burst > 1`` models a mobile reader
sweeping shelves — it parks at one shelf for ``burst`` consecutive
epochs, then moves on (§5.3's mobile-reader deployment).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["ReaderKind", "ReaderSpec", "Layout", "warehouse_layout"]


class ReaderKind(enum.IntEnum):
    """Functional role of a reader within a site."""

    ENTRY = 0
    BELT = 1
    SHELF = 2
    EXIT = 3


@dataclass(frozen=True)
class ReaderSpec:
    """One reader: its role and interrogation schedule."""

    name: str
    kind: ReaderKind
    period: int = 1
    phase: int = 0
    burst: int = 1

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 1 <= self.burst <= self.period:
            raise ValueError(f"burst must be in [1, period], got {self.burst}")

    def is_active(self, epoch: int) -> bool:
        """True if this reader interrogates during ``epoch``."""
        return (epoch - self.phase) % self.period < self.burst


class Layout:
    """Immutable description of one site's readers and their geometry."""

    def __init__(self, name: str, specs: list[ReaderSpec]) -> None:
        if not specs:
            raise ValueError("a layout needs at least one reader")
        self.name = name
        self.specs = tuple(specs)
        self.n_locations = len(specs)
        self.shelf_indices = tuple(
            i for i, s in enumerate(specs) if s.kind is ReaderKind.SHELF
        )
        self._index_of_kind = {
            kind: next((i for i, s in enumerate(specs) if s.kind is kind), None)
            for kind in ReaderKind
        }
        # Adjacent shelves overlap in read range (Appendix C.1/C.2): we
        # treat consecutive shelf readers as neighbours.
        self.adjacent_pairs = tuple(
            (a, b) for a, b in zip(self.shelf_indices, self.shelf_indices[1:])
        )
        self.pattern_period = math.lcm(*(s.period for s in specs))
        self._active_cache = lru_cache(maxsize=None)(self._active_uncached)

    def index_of(self, kind: ReaderKind) -> int:
        """Location index of the (first) reader of the given kind."""
        idx = self._index_of_kind[kind]
        if idx is None:
            raise KeyError(f"layout {self.name!r} has no {kind.name} reader")
        return idx

    @property
    def entry(self) -> int:
        return self.index_of(ReaderKind.ENTRY)

    @property
    def belt(self) -> int:
        return self.index_of(ReaderKind.BELT)

    @property
    def exit(self) -> int:
        return self.index_of(ReaderKind.EXIT)

    def pattern_key(self, epoch: int) -> int:
        """Key identifying which readers are active at ``epoch``.

        Activity is periodic with period ``pattern_period``, so the key
        is simply the epoch modulo that period — used to cache per-epoch
        quantities in the inference engine.
        """
        return epoch % self.pattern_period

    def active_readers(self, key: int) -> tuple[int, ...]:
        """Indices of readers active at any epoch with this pattern key."""
        return self._active_cache(key % self.pattern_period)

    def _active_uncached(self, key: int) -> tuple[int, ...]:
        return tuple(i for i, s in enumerate(self.specs) if s.is_active(key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({self.name!r}, {self.n_locations} readers)"


def warehouse_layout(
    name: str = "warehouse",
    n_shelves: int = 4,
    shelf_period: int = 10,
    mobile_shelf_scan: bool = False,
    mobile_dwell: int = 10,
) -> Layout:
    """Standard warehouse: entry, belt, ``n_shelves`` shelves, exit.

    With ``mobile_shelf_scan`` (the §5.3 cost-effective deployment), the
    static shelf readers are replaced by one mobile reader sweeping the
    aisle: shelf location ``i`` is interrogated only while the mobile
    reader parks there, i.e. for ``mobile_dwell`` consecutive epochs once
    every ``n_shelves * mobile_dwell`` epochs.
    """
    specs = [
        ReaderSpec("entry", ReaderKind.ENTRY),
        ReaderSpec("belt", ReaderKind.BELT),
    ]
    for i in range(n_shelves):
        if mobile_shelf_scan:
            specs.append(
                ReaderSpec(
                    f"shelf-{i}",
                    ReaderKind.SHELF,
                    period=n_shelves * mobile_dwell,
                    phase=i * mobile_dwell,
                    burst=mobile_dwell,
                )
            )
        else:
            # Shelf readers interrogate synchronously (one inventory
            # sweep every `shelf_period` epochs). Synchronized sweeps
            # match the paper's model, in which each epoch carries the
            # evidence of every reader simultaneously; staggered phases
            # would create epochs whose only evidence is one reader's
            # *absence* pattern, which the per-epoch-independent model
            # misreads as teleportation toward uncovered shelves.
            specs.append(
                ReaderSpec(f"shelf-{i}", ReaderKind.SHELF, period=shelf_period, phase=0)
            )
    specs.append(ReaderSpec("exit", ReaderKind.EXIT))
    return Layout(name, specs)
