"""A minimal discrete-event simulation engine.

The paper's evaluation uses CSIM, a process-oriented commercial
simulator. We substitute a heap-based event engine: callbacks scheduled
at integer epochs, executed in (time, FIFO) order. Warehouse lifecycles
are expressed as chains of scheduled callbacks, which is sufficient for
the supply-chain workloads of Appendix C.1 and keeps the engine tiny and
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator"]


class Simulator:
    """Heap-based discrete-event simulator over integer epochs."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self._running = False

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at epoch ``time``.

        Events scheduled for the past raise — a simulation that rewinds
        time is always a bug in the caller.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} < now ({self.now})")
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` epochs from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, fn, *args)

    def run(self, until: int | None = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final simulation time. When ``until`` is given, time
        is advanced to exactly ``until`` even if the queue drains early
        (so traces have a well-defined horizon).
        """
        self._running = True
        try:
            while self._queue:
                time, _, fn, args = self._queue[0]
                if until is not None and time >= until:
                    break
                heapq.heappop(self._queue)
                self.now = time
                fn(*args)
        finally:
            self._running = False
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
