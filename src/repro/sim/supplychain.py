"""End-to-end supply-chain simulation (Appendix C.1, Table 2).

A supply chain is a single-source DAG of warehouses. Pallets of cases of
items are injected at the source at a fixed period, flow through
warehouses (with the entry/belt/shelf/exit lifecycle of
:mod:`repro.sim.warehouse`), and are dispatched round-robin to successor
warehouses. Running a simulation yields one raw-reading
:class:`~repro.sim.trace.Trace` per warehouse plus the shared
:class:`~repro.sim.trace.GroundTruth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import spawn_rng
from repro.sim.anomalies import AnomalyInjector
from repro.sim.engine import Simulator
from repro.sim.layout import Layout, warehouse_layout
from repro.sim.readers import ObservationSampler, RateSpec, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import GroundTruth, Trace
from repro.sim.warehouse import Warehouse, WarehouseParams
from repro.sim.world import World

__all__ = ["SupplyChainParams", "SupplyChainResult", "SupplyChainSimulation", "simulate"]


@dataclass(frozen=True)
class SupplyChainParams:
    """All knobs of Table 2 (plus layout/timing details)."""

    n_warehouses: int = 1
    #: DAG edges as (src, dst) pairs; default is a chain 0 → 1 → … → N-1.
    edges: tuple[tuple[int, int], ...] | None = None
    injection_period: int = 60
    cases_per_pallet: int = 5
    items_per_case: int = 20
    transit_time: int = 30
    horizon: int = 1500
    main_read_rate: RateSpec = 0.8
    overlap_rate: RateSpec = 0.5
    n_shelves: int = 4
    mobile_shelf_scan: bool = False
    anomaly_interval: int | None = None
    anomaly_removal_fraction: float = 0.0
    warehouse: WarehouseParams = field(default_factory=WarehouseParams)
    #: stop injecting new pallets this many epochs before the horizon so
    #: the trailing traces are not dominated by half-finished journeys.
    injection_cutoff: int = 0
    seed: int = 0

    def dag_edges(self) -> tuple[tuple[int, int], ...]:
        if self.edges is not None:
            return self.edges
        return tuple((i, i + 1) for i in range(self.n_warehouses - 1))


@dataclass
class SupplyChainResult:
    """Everything a simulation produced."""

    params: SupplyChainParams
    truth: GroundTruth
    traces: list[Trace]
    layouts: list[Layout]
    models: list[ReadRateModel]

    @property
    def trace(self) -> Trace:
        """The single-site trace (convenience for 1-warehouse runs)."""
        if len(self.traces) != 1:
            raise ValueError("result has multiple sites; index .traces instead")
        return self.traces[0]

    def total_readings(self) -> int:
        return sum(len(t) for t in self.traces)


class SupplyChainSimulation:
    """Builds and runs one supply-chain scenario."""

    def __init__(self, params: SupplyChainParams) -> None:
        self.params = params
        self.sim = Simulator()
        self.world = World()
        self.truth = self.world.truth
        self.layouts = [
            warehouse_layout(
                name=f"wh-{i}",
                n_shelves=params.n_shelves,
                mobile_shelf_scan=params.mobile_shelf_scan,
            )
            for i in range(params.n_warehouses)
        ]
        self.models = [
            ReadRateModel.build(
                layout,
                main_rate=params.main_read_rate,
                overlap_rate=params.overlap_rate,
                seed=spawn_rng(params.seed, "rates", i),
            )
            for i, layout in enumerate(self.layouts)
        ]
        self._successors: dict[int, list[int]] = {i: [] for i in range(params.n_warehouses)}
        for src, dst in params.dag_edges():
            self._successors[src].append(dst)
        self._rr_counter: dict[int, int] = dict.fromkeys(self._successors, 0)
        self.warehouses = [
            Warehouse(
                self.sim,
                site,
                layout,
                WarehouseParams(
                    entry_dwell=params.warehouse.entry_dwell,
                    belt_epochs_per_case=params.warehouse.belt_epochs_per_case,
                    shelf_dwell_mean=params.warehouse.shelf_dwell_mean,
                    shelf_dwell_jitter=params.warehouse.shelf_dwell_jitter,
                    exit_dwell=params.warehouse.exit_dwell,
                    cases_per_outgoing_pallet=params.cases_per_pallet,
                ),
                self.world,
                self._dispatch,
                seed=spawn_rng(params.seed, "wh", site),
            )
            for site, layout in enumerate(self.layouts)
        ]
        self._serials = {TagKind.PALLET: 0, TagKind.CASE: 0, TagKind.ITEM: 0}
        self._rng = spawn_rng(params.seed, "chain")

    # -- tag creation ----------------------------------------------------

    def _fresh(self, kind: TagKind) -> EPC:
        serial = self._serials[kind]
        self._serials[kind] = serial + 1
        return EPC(kind, serial)

    def _inject_pallet(self) -> None:
        now = self.sim.now
        params = self.params
        pallet = self._fresh(TagKind.PALLET)
        self.world.register(pallet, now)
        cases = []
        for _ in range(params.cases_per_pallet):
            case = self._fresh(TagKind.CASE)
            self.world.register(case, now, container=pallet)
            cases.append(case)
            for _ in range(params.items_per_case):
                item = self._fresh(TagKind.ITEM)
                self.world.register(item, now, container=case)
        self.warehouses[0].receive(pallet, cases, now)
        next_time = now + params.injection_period
        if next_time < params.horizon - params.injection_cutoff:
            self.sim.schedule_at(next_time, self._inject_pallet)

    # -- dispatch between warehouses --------------------------------------

    def _dispatch(self, site: int, pallet: EPC, cases: list[EPC], time: int) -> None:
        successors = self._successors[site]
        if not successors:
            return  # final destination: objects leave the supply chain
        nxt = successors[self._rr_counter[site] % len(successors)]
        self._rr_counter[site] += 1
        arrival = time + self.params.transit_time
        if arrival < self.params.horizon:
            self.warehouses[nxt].receive(pallet, cases, arrival)

    # -- running -----------------------------------------------------------

    def run(self) -> SupplyChainResult:
        params = self.params
        self.sim.schedule_at(0, self._inject_pallet)
        if params.anomaly_interval is not None:
            AnomalyInjector(
                self.sim,
                self.warehouses,
                interval=params.anomaly_interval,
                removal_fraction=params.anomaly_removal_fraction,
                seed=spawn_rng(params.seed, "anomaly"),
            )
        self.sim.run(until=params.horizon)
        self.truth.horizon = params.horizon
        sampler = ObservationSampler(seed=spawn_rng(params.seed, "sampler"))
        traces = sampler.sample_all_sites(
            self.truth, self.layouts, self.models, params.horizon
        )
        return SupplyChainResult(params, self.truth, traces, self.layouts, self.models)


def simulate(params: SupplyChainParams | None = None, **overrides) -> SupplyChainResult:
    """One-call convenience: build params, run, return the result."""
    if params is None:
        params = SupplyChainParams(**overrides)
    elif overrides:
        raise TypeError("pass either a params object or keyword overrides, not both")
    return SupplyChainSimulation(params).run()
