"""Emulation of the paper's RFID lab deployment (§5.2, Appendix C.2).

The physical lab had 2 ThingMagic Mercury5 readers driving 7 antennas
(1 entry, 1 belt, 4 shelf, 1 exit), 20 cases of 5 items each, and Alien
squiggle Gen-2 tags. Eight traces T1…T8 vary the average read rate RR,
the shelf overlap rate OR, and whether containment changes occur:

=====  =====  =====  ==============================================
trace   RR     OR    containment changes
=====  =====  =====  ==============================================
T1     0.85   0.25   none
T2     0.85   0.50   none
T3     0.70   0.25   none (added environmental noise lowers RR)
T4     0.70   0.50   none
T5–T8  as T1–T4 with 3 item moves + 1 item removal on the shelves
=====  =====  =====  ==============================================

We cannot re-run the physical lab, so we generate traces with exactly
these measured profiles: per-antenna read rates sampled around the
trace's average (the paper stresses the rates were heterogeneous), the
same reader order and interrogation counts (5 per non-shelf reader,
dozens per shelf reader), and the same change pattern (35% of cases
affected). The substitution preserves what the evaluation measures —
inference accuracy as a function of RR/OR/noise/changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.rng import spawn_rng
from repro.sim.layout import Layout, warehouse_layout
from repro.sim.readers import ObservationSampler, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import AWAY, GroundTruth, Location, Trace
from repro.sim.world import World

__all__ = ["LabProfile", "LAB_PROFILES", "LabResult", "generate_lab_trace"]


@dataclass(frozen=True)
class LabProfile:
    """Characteristics of one lab trace."""

    name: str
    read_rate: float
    overlap_rate: float
    with_changes: bool

    @property
    def read_rate_range(self) -> tuple[float, float]:
        """Heterogeneous per-antenna rates around the trace average."""
        return (self.read_rate - 0.07, self.read_rate + 0.07)

    @property
    def overlap_rate_range(self) -> tuple[float, float]:
        return (max(self.overlap_rate - 0.1, 0.05), self.overlap_rate + 0.1)


LAB_PROFILES: dict[str, LabProfile] = {
    "T1": LabProfile("T1", 0.85, 0.25, False),
    "T2": LabProfile("T2", 0.85, 0.50, False),
    "T3": LabProfile("T3", 0.70, 0.25, False),
    "T4": LabProfile("T4", 0.70, 0.50, False),
    "T5": LabProfile("T5", 0.85, 0.25, True),
    "T6": LabProfile("T6", 0.85, 0.50, True),
    "T7": LabProfile("T7", 0.70, 0.25, True),
    "T8": LabProfile("T8", 0.70, 0.50, True),
}


@dataclass
class LabResult:
    """A generated lab trace plus its ground truth."""

    profile: LabProfile
    truth: GroundTruth
    trace: Trace
    layout: Layout
    model: ReadRateModel


def generate_lab_trace(
    profile: LabProfile | str,
    seed: int = 0,
    n_cases: int = 20,
    items_per_case: int = 5,
    entry_dwell: int = 5,
    belt_dwell: int = 5,
    stagger: int = 8,
    shelves_until: int = 700,
    horizon: int = 900,
) -> LabResult:
    """Generate one lab trace with the given profile.

    Cases enter one at a time (staggered), pass entry → belt → shelf,
    sit shelved until ``shelves_until``, then exit. For change profiles,
    3 items are moved between cases and 1 item is removed while all
    cases are shelved — the paper's "containment changes in 35% of the
    cases" (3 source + 3 destination + 1 removal source out of 20).
    """
    if isinstance(profile, str):
        profile = LAB_PROFILES[profile]
    rng = spawn_rng(seed, "lab", profile.name)
    layout = warehouse_layout(name=f"lab-{profile.name}", n_shelves=4)
    model = ReadRateModel.build(
        layout,
        main_rate=profile.read_rate_range,
        overlap_rate=profile.overlap_rate_range,
        seed=spawn_rng(seed, "lab-rates", profile.name),
    )
    world = World()
    site = 0

    cases = [EPC(TagKind.CASE, i) for i in range(n_cases)]
    items = {
        case: [
            EPC(TagKind.ITEM, case.serial * items_per_case + j)
            for j in range(items_per_case)
        ]
        for case in cases
    }
    for case in cases:
        world.register(case, 0)
        for it in items[case]:
            world.register(it, 0, container=case)

    belt_free = 0
    all_shelved_at = 0
    for idx, case in enumerate(cases):
        t_entry = idx * stagger
        world.move(case, t_entry, Location(site, layout.entry))
        t_belt = max(t_entry + entry_dwell, belt_free)
        world.move(case, t_belt, Location(site, layout.belt))
        belt_free = t_belt + belt_dwell
        shelf = layout.shelf_indices[idx % len(layout.shelf_indices)]
        t_shelf = t_belt + belt_dwell
        world.move(case, t_shelf, Location(site, shelf))
        all_shelved_at = max(all_shelved_at, t_shelf)

    if profile.with_changes:
        change_base = all_shelved_at + 60
        shuffled = list(rng.permutation(n_cases))
        # Three moves between distinct case pairs, then one removal.
        for k in range(3):
            src = cases[int(shuffled[2 * k])]
            dst = cases[int(shuffled[2 * k + 1])]
            moved = items[src][int(rng.integers(len(items[src])))]
            when = change_base + 40 * k
            world.set_container(moved, when, dst, anomalous=True)
            world.move(moved, when, world.location(dst))
        removal_src = cases[int(shuffled[6])]
        candidates = world.items_in(removal_src)
        removed = candidates[int(rng.integers(len(candidates)))]
        when = change_base + 40 * 3
        world.set_container(removed, when, None, anomalous=True)
        world.move(removed, when, AWAY)

    for idx, case in enumerate(cases):
        t_exit = shelves_until + idx * 4
        world.move(case, t_exit, Location(site, layout.exit))
        world.move(case, t_exit + entry_dwell, AWAY)

    world.truth.horizon = horizon
    sampler = ObservationSampler(seed=spawn_rng(seed, "lab-sampler", profile.name))
    trace = sampler.sample_site(world.truth, site, layout, model, horizon)
    return LabResult(profile, world.truth, trace, layout, model)
