"""EPC-style tag identities.

Per the EPC tag data standard (and §2 of the paper), a tag id encodes its
packaging level — pallet, case, or item. Algorithms rely only on that
level plus uniqueness, so an :class:`EPC` is a ``(kind, serial)`` pair.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = ["TagKind", "EPC"]


class TagKind(enum.IntEnum):
    """Packaging level encoded in a tag id."""

    PALLET = 0
    CASE = 1
    ITEM = 2


_PREFIX = {TagKind.PALLET: "P", TagKind.CASE: "C", TagKind.ITEM: "I"}
_KIND_OF_PREFIX = {v: k for k, v in _PREFIX.items()}


class EPC(NamedTuple):
    """A unique tag identity: packaging level + serial number."""

    kind: TagKind
    serial: int

    def __str__(self) -> str:
        return f"{_PREFIX[self.kind]}-{self.serial:06d}"

    @classmethod
    def parse(cls, text: str) -> "EPC":
        """Parse the ``P-000123`` string form back into an :class:`EPC`."""
        prefix, _, serial = text.partition("-")
        if prefix not in _KIND_OF_PREFIX or not serial.isdigit():
            raise ValueError(f"not a valid EPC string: {text!r}")
        return cls(_KIND_OF_PREFIX[prefix], int(serial))

    @property
    def is_container(self) -> bool:
        """True for tags that can contain others (cases and pallets)."""
        return self.kind is not TagKind.ITEM


def pallet(serial: int) -> EPC:
    """Shorthand constructor for a pallet tag."""
    return EPC(TagKind.PALLET, serial)


def case(serial: int) -> EPC:
    """Shorthand constructor for a case tag."""
    return EPC(TagKind.CASE, serial)


def item(serial: int) -> EPC:
    """Shorthand constructor for an item tag."""
    return EPC(TagKind.ITEM, serial)
