"""EPC-style tag identities.

Per the EPC tag data standard (and §2 of the paper), a tag id encodes its
packaging level — pallet, case, or item. Algorithms rely only on that
level plus uniqueness, so an :class:`EPC` is a ``(kind, serial)`` pair.

This module also owns the tag's *wire codec* — two varints, with kind
``3`` as the "no tag" sentinel of the optional form — shared by every
serialized format that names tags (collapsed states, envelopes, shared
bundles, checkpoints), so the primitive cannot drift between them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro._util.encoding import ByteReader, ByteWriter

__all__ = [
    "TagKind",
    "EPC",
    "write_epc",
    "read_epc",
    "write_opt_epc",
    "read_opt_epc",
]

#: wire sentinel for "no tag" in the optional codec (one past the
#: highest real :class:`TagKind` value).
_NONE_KIND = 3


class TagKind(enum.IntEnum):
    """Packaging level encoded in a tag id."""

    PALLET = 0
    CASE = 1
    ITEM = 2


_PREFIX = {TagKind.PALLET: "P", TagKind.CASE: "C", TagKind.ITEM: "I"}
_KIND_OF_PREFIX = {v: k for k, v in _PREFIX.items()}


class EPC(NamedTuple):
    """A unique tag identity: packaging level + serial number."""

    kind: TagKind
    serial: int

    def __str__(self) -> str:
        return f"{_PREFIX[self.kind]}-{self.serial:06d}"

    @classmethod
    def parse(cls, text: str) -> "EPC":
        """Parse the ``P-000123`` string form back into an :class:`EPC`."""
        prefix, _, serial = text.partition("-")
        if prefix not in _KIND_OF_PREFIX or not serial.isdigit():
            raise ValueError(f"not a valid EPC string: {text!r}")
        return cls(_KIND_OF_PREFIX[prefix], int(serial))

    @property
    def is_container(self) -> bool:
        """True for tags that can contain others (cases and pallets)."""
        return self.kind is not TagKind.ITEM


def pallet(serial: int) -> EPC:
    """Shorthand constructor for a pallet tag."""
    return EPC(TagKind.PALLET, serial)


def case(serial: int) -> EPC:
    """Shorthand constructor for a case tag."""
    return EPC(TagKind.CASE, serial)


def item(serial: int) -> EPC:
    """Shorthand constructor for an item tag."""
    return EPC(TagKind.ITEM, serial)


# -- the shared wire codec --------------------------------------------------


def write_epc(writer: "ByteWriter", tag: EPC) -> None:
    """Append ``tag`` as two varints (kind, serial)."""
    writer.varint(int(tag.kind)).varint(tag.serial)


def read_epc(reader: "ByteReader") -> EPC:
    """Read a required tag; an out-of-range kind raises ValueError."""
    return EPC(TagKind(reader.varint()), reader.varint())


def write_opt_epc(writer: "ByteWriter", tag: EPC | None) -> None:
    """Append ``tag`` or the one-byte "no tag" sentinel."""
    if tag is None:
        writer.varint(_NONE_KIND)
    else:
        write_epc(writer, tag)


def read_opt_epc(reader: "ByteReader") -> EPC | None:
    """Inverse of :func:`write_opt_epc`."""
    kind = reader.varint()
    if kind == _NONE_KIND:
        return None
    return EPC(TagKind(kind), reader.varint())
