"""The warehouse lifecycle: entry → belt → shelf → repack → exit.

Appendix C.1: "Within a warehouse, pallets first arrive at the entry
door and are read by the reader there. They are then unpacked. [...] a
reader at the conveyor belt scans the cases one at a time. The cases are
then placed onto shelves and scanned by the shelf readers. After a
period of stay, cases are removed from the shelves and repackaged. The
assembled pallets are finally read at the exit door and dispatched."

The one-case-at-a-time belt scan is what produces the *critical region*
evidence (Fig. 4): during a case's belt slot, only that case and its
true contents are co-located at the belt.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._util.rng import spawn_rng
from repro.sim.engine import Simulator
from repro.sim.layout import Layout
from repro.sim.tags import EPC
from repro.sim.trace import AWAY, Location
from repro.sim.world import World

__all__ = ["WarehouseParams", "Warehouse", "PalletArrival"]

#: Callback invoked when a pallet leaves a warehouse:
#: ``dispatch(site, pallet, cases, depart_time)``.
DispatchFn = Callable[[int, EPC, list[EPC], int], None]


@dataclass(frozen=True)
class WarehouseParams:
    """Timing parameters of the warehouse lifecycle (epochs = seconds)."""

    entry_dwell: int = 10
    belt_epochs_per_case: int = 5
    shelf_dwell_mean: int = 600
    shelf_dwell_jitter: int = 60
    exit_dwell: int = 10
    cases_per_outgoing_pallet: int = 5

    def __post_init__(self) -> None:
        if min(self.entry_dwell, self.belt_epochs_per_case, self.exit_dwell) < 1:
            raise ValueError("dwell times must be at least one epoch")
        if self.shelf_dwell_mean <= self.shelf_dwell_jitter:
            raise ValueError("shelf dwell jitter larger than its mean")


@dataclass(frozen=True)
class PalletArrival:
    """A pallet (with its case tags) scheduled to reach a warehouse."""

    pallet: EPC
    cases: tuple[EPC, ...]
    time: int


class Warehouse:
    """Event-driven model of one distribution center."""

    def __init__(
        self,
        sim: Simulator,
        site: int,
        layout: Layout,
        params: WarehouseParams,
        world: World,
        dispatch: DispatchFn,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.sim = sim
        self.site = site
        self.layout = layout
        self.params = params
        self.world = world
        self.dispatch = dispatch
        self.rng = spawn_rng(seed, "warehouse", site)
        self._belt_free_at = 0
        self._repack_buffer: deque[EPC] = deque()
        self._pallet_pool: deque[EPC] = deque()
        #: cases currently sitting on a shelf — anomaly targets.
        self.resident_cases: set[EPC] = set()

    # -- lifecycle ------------------------------------------------------

    def receive(self, pallet: EPC, cases: list[EPC], time: int) -> None:
        """Schedule a pallet arrival at the entry door at ``time``."""
        self.sim.schedule_at(time, self._arrive, pallet, tuple(cases))

    def _arrive(self, pallet: EPC, cases: tuple[EPC, ...]) -> None:
        now = self.sim.now
        self.world.move(pallet, now, Location(self.site, self.layout.entry))
        self._pallet_pool.append(pallet)
        self.sim.schedule(self.params.entry_dwell, self._unpack, pallet, cases)

    def _unpack(self, pallet: EPC, cases: tuple[EPC, ...]) -> None:
        now = self.sim.now
        slot = max(now, self._belt_free_at)
        for case in cases:
            self.world.set_container(case, now, None)
            self.sim.schedule_at(slot, self._case_on_belt, case)
            slot += self.params.belt_epochs_per_case
        self._belt_free_at = slot
        self.world.move(pallet, now, AWAY)

    def _case_on_belt(self, case: EPC) -> None:
        now = self.sim.now
        self.world.move(case, now, Location(self.site, self.layout.belt))
        self.sim.schedule(self.params.belt_epochs_per_case, self._case_to_shelf, case)

    def _case_to_shelf(self, case: EPC) -> None:
        now = self.sim.now
        shelf = int(self.rng.choice(self.layout.shelf_indices))
        self.world.move(case, now, Location(self.site, shelf))
        self.resident_cases.add(case)
        jitter = self.params.shelf_dwell_jitter
        dwell = self.params.shelf_dwell_mean + int(self.rng.integers(-jitter, jitter + 1))
        self.sim.schedule(dwell, self._case_to_repack, case)

    def _case_to_repack(self, case: EPC) -> None:
        now = self.sim.now
        self.resident_cases.discard(case)
        self.world.move(case, now, Location(self.site, self.layout.exit))
        self._repack_buffer.append(case)
        self._maybe_assemble()

    def _maybe_assemble(self) -> None:
        group_size = self.params.cases_per_outgoing_pallet
        if len(self._repack_buffer) < group_size or not self._pallet_pool:
            return
        now = self.sim.now
        pallet = self._pallet_pool.popleft()
        group = [self._repack_buffer.popleft() for _ in range(group_size)]
        self.world.move(pallet, now, Location(self.site, self.layout.exit))
        for case in group:
            self.world.set_container(case, now, pallet)
        self.sim.schedule(self.params.exit_dwell, self._depart, pallet, group)

    def _depart(self, pallet: EPC, group: list[EPC]) -> None:
        now = self.sim.now
        self.world.move(pallet, now, AWAY)
        self.dispatch(self.site, pallet, group, now)

    # -- anomaly support -------------------------------------------------

    def inject_containment_change(self) -> bool:
        """Move one random shelved item into a different shelved case.

        Returns True if a change was injected (needs ≥ 2 shelved cases
        with at least one non-empty source case).
        """
        candidates = sorted(self.resident_cases)
        if len(candidates) < 2:
            return False
        sources = [c for c in candidates if self.world.items_in(c)]
        if not sources:
            return False
        now = self.sim.now
        src = sources[int(self.rng.integers(len(sources)))]
        items = self.world.items_in(src)
        moved = items[int(self.rng.integers(len(items)))]
        others = [c for c in candidates if c != src]
        dst = others[int(self.rng.integers(len(others)))]
        self.world.set_container(moved, now, dst, anomalous=True)
        self.world.move(moved, now, self.world.location(dst))
        return True

    def remove_random_item(self) -> bool:
        """Remove a random shelved item altogether (lab traces T5–T8)."""
        sources = [c for c in sorted(self.resident_cases) if self.world.items_in(c)]
        if not sources:
            return False
        now = self.sim.now
        src = sources[int(self.rng.integers(len(sources)))]
        items = self.world.items_in(src)
        removed = items[int(self.rng.integers(len(items)))]
        self.world.set_container(removed, now, None, anomalous=True)
        self.world.move(removed, now, AWAY)
        return True
