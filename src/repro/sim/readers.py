"""The noisy observation model π(r, r̄) and reading sampling.

§3.1: each reader at location ``r`` detects a tag at location ``r̄`` with
probability ``π(r, r̄)`` per interrogation. In deployments these rates
are measured periodically with reference tags; in this reproduction they
are known to the inference engine exactly as in the paper.

The matrix structure mirrors Appendix C.1:

* ``π(r, r)`` — the *main read rate* RR of reader ``r`` (0.6–1.0);
* ``π(r, a)`` for adjacent shelf readers — the *overlap rate* OR
  (0.2–0.8);
* elsewhere — a tiny ε that keeps log-likelihoods finite.

:class:`ObservationSampler` turns ground-truth trajectories into raw
reading streams by sampling each scheduled interrogation independently —
this is exactly the generative process of the graphical model, and it is
reused by the change-point threshold calibration (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.rng import spawn_rng
from repro.sim.layout import Layout, ReaderSpec
from repro.sim.trace import AWAY, GroundTruth, Trace

__all__ = ["ReadRateModel", "ObservationSampler", "active_epochs", "RateSpec"]

#: Probability assigned to "reader detects a tag that is nowhere near it".
EPSILON_RATE = 1e-6

#: Rates at or below this are not worth simulating (but still modelled).
_SAMPLING_CUTOFF = 1e-4

#: A read rate, either fixed or sampled uniformly from a (lo, hi) range.
RateSpec = float | tuple[float, float]


def _draw_rate(spec: RateSpec, rng: np.random.Generator) -> float:
    if isinstance(spec, tuple):
        lo, hi = spec
        return float(rng.uniform(lo, hi))
    return float(spec)


@dataclass
class ReadRateModel:
    """Per-site read-rate matrix π plus cached log-space derivatives.

    The location domain the *inference* sees has one extra virtual
    state beyond the R reader positions: **away** (index ``R``), the
    state of a tag that is not at any monitored location — in transit,
    departed with its pallet, or removed. Every reader sees an away tag
    with probability ε only. Without this state the model cannot
    distinguish "the container left the site (with its contents)" from
    "the object was removed from its container", and change-point
    detection floods with spurious removals for every departed pallet.
    """

    layout: Layout
    pi: np.ndarray  # (R, R): pi[r, a] = P(reader r fires | tag at a)
    epsilon: float = EPSILON_RATE
    log_pi: np.ndarray = field(init=False)
    log_miss: np.ndarray = field(init=False)
    delta: np.ndarray = field(init=False)
    away_index: int = field(init=False)

    def __post_init__(self) -> None:
        n = self.layout.n_locations
        if self.pi.shape != (n, n):
            raise ValueError("pi must be (R, R) for the layout's R readers")
        if np.any(self.pi <= 0.0) or np.any(self.pi >= 1.0):
            raise ValueError("read rates must lie strictly inside (0, 1)")
        self.away_index = n
        extended = np.concatenate([self.pi, np.full((n, 1), self.epsilon)], axis=1)
        self.log_pi = np.log(extended)
        self.log_miss = np.log1p(-extended)
        # delta[r] is the log-likelihood *bonus* vector, over true
        # states a (R locations + away), of reader r firing vs silent.
        self.delta = self.log_pi - self.log_miss
        self._base_cache: dict[int, np.ndarray] = {}
        self._pattern_table: np.ndarray | None = None
        self._away_counts: np.ndarray | None = None

    @classmethod
    def build(
        cls,
        layout: Layout,
        main_rate: RateSpec = 0.8,
        overlap_rate: RateSpec = 0.5,
        seed: int | np.random.Generator = 0,
        epsilon: float = EPSILON_RATE,
    ) -> "ReadRateModel":
        """Construct π from a main read rate and a shelf overlap rate.

        Tuple-valued specs sample one rate per reader (resp. per adjacent
        shelf pair) uniformly from the range, matching Table 2's
        "uniformly sampled from [0.6, 1]".
        """
        rng = spawn_rng(seed, "read-rates", layout.name)
        n = layout.n_locations
        pi = np.full((n, n), epsilon)
        for r in range(n):
            pi[r, r] = _draw_rate(main_rate, rng)
        for a, b in layout.adjacent_pairs:
            rate = _draw_rate(overlap_rate, rng)
            pi[a, b] = rate
            pi[b, a] = rate
        return cls(layout, pi, epsilon)

    @property
    def n_locations(self) -> int:
        return self.layout.n_locations

    @property
    def n_states(self) -> int:
        """Locations plus the virtual away state."""
        return self.layout.n_locations + 1

    def main_rates(self) -> np.ndarray:
        """The diagonal (own-location) read rate of every reader."""
        return np.diagonal(self.pi).copy()

    def detectable_readers(self, place: int) -> np.ndarray:
        """Readers with non-negligible probability of seeing ``place``."""
        return np.flatnonzero(self.pi[:, place] > _SAMPLING_CUTOFF)

    def base_vector(self, pattern_key: int) -> np.ndarray:
        """Σ over *active* readers of log(1 − π(r, ·)).

        This is the log-likelihood, as a vector over true locations, of a
        tag producing *no readings at all* during an epoch with the given
        activity pattern. Cached per pattern key (reader schedules are
        periodic, see :meth:`Layout.pattern_key`).
        """
        key = pattern_key % self.layout.pattern_period
        cached = self._base_cache.get(key)
        if cached is None:
            active = self.layout.active_readers(key)
            cached = self.log_miss[list(active), :].sum(axis=0)
            self._base_cache[key] = cached
        return cached

    def pattern_table(self) -> np.ndarray:
        """All base vectors stacked by pattern key — (period, R+1).

        Schedules are periodic, so this table turns a base-matrix build
        into a single fancy-index gather: ``table[epochs % period]``.
        """
        if self._pattern_table is None:
            period = self.layout.pattern_period
            self._pattern_table = np.stack(
                [self.base_vector(key) for key in range(period)]
            )
        return self._pattern_table

    def base_matrix(self, epochs: np.ndarray) -> np.ndarray:
        """Stack of base vectors for an array of epochs — (T, R)."""
        keys = np.asarray(epochs) % self.layout.pattern_period
        return self.pattern_table()[keys]

    def away_counts_table(self) -> np.ndarray:
        """Active-reader count per pattern key — (period,), float.

        The away hypothesis charges ``log(1 − ε)`` per interrogation a
        departed tag silently misses; this table makes that a gather.
        """
        if self._away_counts is None:
            layout = self.layout
            self._away_counts = np.fromiter(
                (
                    len(layout.active_readers(key))
                    for key in range(layout.pattern_period)
                ),
                dtype=float,
                count=layout.pattern_period,
            )
        return self._away_counts


def active_epochs(spec: ReaderSpec, start: int, end: int) -> np.ndarray:
    """All epochs in ``[start, end)`` at which ``spec`` interrogates."""
    if start >= end:
        return np.empty(0, dtype=np.int64)
    if spec.period == 1:
        return np.arange(start, end, dtype=np.int64)
    k_min = (start - spec.phase - spec.burst + 1) // spec.period
    k_max = (end - 1 - spec.phase) // spec.period
    if k_max < k_min:
        return np.empty(0, dtype=np.int64)
    cycle_starts = spec.phase + np.arange(k_min, k_max + 1, dtype=np.int64) * spec.period
    epochs = (cycle_starts[:, None] + np.arange(spec.burst, dtype=np.int64)).ravel()
    return epochs[(epochs >= start) & (epochs < end)]


class ObservationSampler:
    """Samples raw RFID readings from ground truth under a rate model."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._seed = seed

    def sample_site(
        self,
        truth: GroundTruth,
        site: int,
        layout: Layout,
        model: ReadRateModel,
        horizon: int,
    ) -> Trace:
        """Generate the reading stream one site would observe.

        Readings are assembled columnar — one (epochs, tag, reader)
        chunk per dwell segment and detectable reader — and handed to
        :meth:`Trace.from_columns` without ever materializing per-row
        tuples. The RNG draw sequence is unchanged, so sampled streams
        are identical to the tuple-era sampler's.
        """
        rng = spawn_rng(self._seed, "readings", site)
        tag_table = sorted(truth.locations)
        chunks: list[tuple[np.ndarray, int, int]] = []
        for tag_id, tag in enumerate(tag_table):
            imap = truth.locations[tag]
            for seg_start, seg_end, location in imap.segments(0, horizon):
                if location is None or location == AWAY or location.site != site:
                    continue
                for reader in model.detectable_readers(location.place):
                    epochs = active_epochs(layout.specs[reader], seg_start, seg_end)
                    if epochs.size == 0:
                        continue
                    rate = model.pi[reader, location.place]
                    hits = epochs[rng.random(epochs.size) < rate]
                    if hits.size:
                        chunks.append((hits, tag_id, int(reader)))
        if chunks:
            times = np.concatenate([c[0] for c in chunks])
            tag_ids = np.concatenate(
                [np.full(c[0].size, c[1], dtype=np.int64) for c in chunks]
            )
            readers = np.concatenate(
                [np.full(c[0].size, c[2], dtype=np.int64) for c in chunks]
            )
        else:
            times = tag_ids = readers = np.empty(0, dtype=np.int64)
        return Trace.from_columns(
            site, layout, model, times, tag_ids, readers, tag_table, horizon
        )

    def sample_all_sites(
        self,
        truth: GroundTruth,
        layouts: list[Layout],
        models: list[ReadRateModel],
        horizon: int,
    ) -> list[Trace]:
        """One trace per site."""
        return [
            self.sample_site(truth, site, layout, model, horizon)
            for site, (layout, model) in enumerate(zip(layouts, models))
        ]
