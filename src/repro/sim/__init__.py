"""Simulation substrate: warehouses, readers, supply chains, lab traces.

The paper's evaluation (Appendix C.1) uses a CSIM-based supply-chain
simulator plus a physical RFID lab. This package provides from-scratch
equivalents:

* :mod:`repro.sim.engine` — a discrete-event simulation core.
* :mod:`repro.sim.layout` / :mod:`repro.sim.readers` — reader placement,
  interrogation schedules, and the noisy observation model π(r, r̄).
* :mod:`repro.sim.warehouse` — the entry → belt → shelf → exit lifecycle.
* :mod:`repro.sim.supplychain` — DAGs of warehouses with pallet flows.
* :mod:`repro.sim.anomalies` — containment-change injection.
* :mod:`repro.sim.lab` — the 7-reader lab deployment (traces T1…T8).
* :mod:`repro.sim.sensors` — temperature streams for hybrid queries.
* :mod:`repro.sim.traceio` — CSV/JSON persistence so real reader logs
  (or saved simulations) can be loaded as traces.
"""

from repro.sim.engine import Simulator
from repro.sim.layout import Layout, ReaderKind, ReaderSpec, warehouse_layout
from repro.sim.readers import ObservationSampler, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import GroundTruth, Location, Reading, Trace, AWAY

__all__ = [
    "AWAY",
    "EPC",
    "GroundTruth",
    "Layout",
    "Location",
    "ObservationSampler",
    "ReadRateModel",
    "Reading",
    "ReaderKind",
    "ReaderSpec",
    "Simulator",
    "TagKind",
    "Trace",
    "warehouse_layout",
]
