"""Reading-stream persistence: CSV for readings, JSON for models.

Real deployments produce exactly the paper's raw schema —
``(time, tag id, reader id)`` rows from reader middleware — so this
module lets users run RFINFER on their own logs: load a CSV of
readings, describe the reader layout and measured read rates in a JSON
sidecar, and get back the same :class:`~repro.sim.trace.Trace` the
simulators produce. Simulated traces round-trip through the same
format, which also makes experiment artifacts portable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.sim.layout import Layout, ReaderKind, ReaderSpec
from repro.sim.readers import ReadRateModel
from repro.sim.tags import EPC
from repro.sim.trace import Reading, Trace

__all__ = ["write_trace", "read_trace", "write_model", "read_model"]

_CSV_HEADER = ["time", "tag_id", "reader_id"]


def write_trace(trace: Trace, readings_path: str | Path, model_path: str | Path) -> None:
    """Persist a trace: readings as CSV, layout + rates as JSON."""
    readings_path = Path(readings_path)
    with readings_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for reading in trace.readings:
            writer.writerow([reading.time, str(reading.tag), reading.reader])
    write_model(trace.model, model_path, site=trace.site, horizon=trace.horizon)


def read_trace(readings_path: str | Path, model_path: str | Path) -> Trace:
    """Load a trace written by :func:`write_trace` (or hand-authored)."""
    model, site, horizon = read_model(model_path)
    readings: list[Reading] = []
    max_time = 0
    with Path(readings_path).open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if [h.strip() for h in header] != _CSV_HEADER:
            raise ValueError(f"expected header {_CSV_HEADER}, got {header}")
        for row in reader:
            if not row:
                continue
            time, tag_text, reader_id = row
            readings.append(Reading(int(time), EPC.parse(tag_text), int(reader_id)))
            max_time = max(max_time, int(time))
    if horizon is None:
        horizon = max_time + 1
    return Trace(site, model.layout, model, readings, horizon)


def write_model(
    model: ReadRateModel,
    path: str | Path,
    site: int = 0,
    horizon: int | None = None,
) -> None:
    """Persist a reader layout and its measured read-rate matrix."""
    layout = model.layout
    payload = {
        "site": site,
        "horizon": horizon,
        "layout": {
            "name": layout.name,
            "readers": [
                {
                    "name": spec.name,
                    "kind": spec.kind.name,
                    "period": spec.period,
                    "phase": spec.phase,
                    "burst": spec.burst,
                }
                for spec in layout.specs
            ],
        },
        "epsilon": model.epsilon,
        "read_rates": np.asarray(model.pi).tolist(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def read_model(path: str | Path) -> tuple[ReadRateModel, int, int | None]:
    """Load (model, site, horizon) from a JSON sidecar."""
    payload = json.loads(Path(path).read_text())
    specs = [
        ReaderSpec(
            name=entry["name"],
            kind=ReaderKind[entry["kind"]],
            period=entry.get("period", 1),
            phase=entry.get("phase", 0),
            burst=entry.get("burst", 1),
        )
        for entry in payload["layout"]["readers"]
    ]
    layout = Layout(payload["layout"]["name"], specs)
    pi = np.asarray(payload["read_rates"], dtype=float)
    model = ReadRateModel(layout, pi, payload.get("epsilon", 1e-6))
    return model, payload.get("site", 0), payload.get("horizon")
