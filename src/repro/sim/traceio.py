"""Reading-stream persistence: CSV for readings, JSON for models.

Real deployments produce exactly the paper's raw schema —
``(time, tag id, reader id)`` rows from reader middleware — so this
module lets users run RFINFER on their own logs: load a CSV of
readings, describe the reader layout and measured read rates in a JSON
sidecar, and get back the same :class:`~repro.sim.trace.Trace` the
simulators produce. Simulated traces round-trip through the same
format, which also makes experiment artifacts portable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.sim.layout import Layout, ReaderKind, ReaderSpec
from repro.sim.readers import ReadRateModel
from repro.sim.tags import EPC
from repro.sim.trace import Trace

__all__ = ["write_trace", "read_trace", "write_model", "read_model"]

_CSV_HEADER = ["time", "tag_id", "reader_id"]


def write_trace(trace: Trace, readings_path: str | Path, model_path: str | Path) -> None:
    """Persist a trace: readings as CSV, layout + rates as JSON.

    Rows are written straight from the trace's time-major columns; the
    tag column is rendered once per interned tag, not once per row.
    """
    readings_path = Path(readings_path)
    tag_text = [str(tag) for tag in trace.tag_table]
    with readings_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        writer.writerows(
            (time, tag_text[tag_id], reader)
            for time, tag_id, reader in zip(
                trace.times.tolist(), trace.tag_ids.tolist(), trace.readers.tolist()
            )
        )
    write_model(trace.model, model_path, site=trace.site, horizon=trace.horizon)


def read_trace(readings_path: str | Path, model_path: str | Path) -> Trace:
    """Load a trace written by :func:`write_trace` (or hand-authored).

    Tags are interned while parsing, so the trace is assembled columnar
    without an intermediate list of :class:`Reading` tuples.
    """
    model, site, horizon = read_model(model_path)
    times: list[int] = []
    tag_ids: list[int] = []
    reader_ids: list[int] = []
    tag_table: list[EPC] = []
    intern: dict[str, int] = {}
    with Path(readings_path).open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if [h.strip() for h in header] != _CSV_HEADER:
            raise ValueError(f"expected header {_CSV_HEADER}, got {header}")
        for row in reader:
            if not row:
                continue
            time, tag_text, reader_id = row
            tag_id = intern.get(tag_text)
            if tag_id is None:
                tag_id = intern[tag_text] = len(tag_table)
                tag_table.append(EPC.parse(tag_text))
            times.append(int(time))
            tag_ids.append(tag_id)
            reader_ids.append(int(reader_id))
    if horizon is None:
        horizon = (max(times) + 1) if times else 1
    return Trace.from_columns(
        site,
        model.layout,
        model,
        np.asarray(times, dtype=np.int64),
        np.asarray(tag_ids, dtype=np.int64),
        np.asarray(reader_ids, dtype=np.int64),
        tag_table,
        horizon,
    )


def write_model(
    model: ReadRateModel,
    path: str | Path,
    site: int = 0,
    horizon: int | None = None,
) -> None:
    """Persist a reader layout and its measured read-rate matrix."""
    layout = model.layout
    payload = {
        "site": site,
        "horizon": horizon,
        "layout": {
            "name": layout.name,
            "readers": [
                {
                    "name": spec.name,
                    "kind": spec.kind.name,
                    "period": spec.period,
                    "phase": spec.phase,
                    "burst": spec.burst,
                }
                for spec in layout.specs
            ],
        },
        "epsilon": model.epsilon,
        "read_rates": np.asarray(model.pi).tolist(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def read_model(path: str | Path) -> tuple[ReadRateModel, int, int | None]:
    """Load (model, site, horizon) from a JSON sidecar."""
    payload = json.loads(Path(path).read_text())
    specs = [
        ReaderSpec(
            name=entry["name"],
            kind=ReaderKind[entry["kind"]],
            period=entry.get("period", 1),
            phase=entry.get("phase", 0),
            burst=entry.get("burst", 1),
        )
        for entry in payload["layout"]["readers"]
    ]
    layout = Layout(payload["layout"]["name"], specs)
    pi = np.asarray(payload["read_rates"], dtype=float)
    model = ReadRateModel(layout, pi, payload.get("epsilon", 1e-6))
    return model, payload.get("site", 0), payload.get("horizon")
