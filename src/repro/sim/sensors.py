"""Temperature sensor streams for hybrid queries (§2, §5.4).

Each reader location carries one temperature sensor. Freezer locations
hold sub-zero temperatures; everywhere else sits at room temperature.
Sensors report every ``period`` epochs with small Gaussian noise, which
exercises the ``Temperature [Partition By sensor Rows 1]`` window of
Query 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

import numpy as np

from repro._util.rng import spawn_rng
from repro.sim.layout import Layout

__all__ = ["SensorReading", "TemperatureField", "room_and_freezer_field"]


class SensorReading(NamedTuple):
    """One temperature report: (time, site, sensor/location, °C)."""

    time: int
    site: int
    sensor: int
    temp: float


@dataclass(frozen=True)
class TemperatureField:
    """Per-location base temperatures for one site."""

    site: int
    layout: Layout
    base_temps: tuple[float, ...]
    noise_std: float = 0.5
    period: int = 5

    def __post_init__(self) -> None:
        if len(self.base_temps) != self.layout.n_locations:
            raise ValueError("one base temperature per reader location required")

    def freezer_locations(self, threshold: float = 0.0) -> tuple[int, ...]:
        """Locations whose base temperature is at or below ``threshold``."""
        return tuple(
            i for i, temp in enumerate(self.base_temps) if temp <= threshold
        )

    def stream(
        self, horizon: int, seed: int | np.random.Generator = 0
    ) -> Iterator[SensorReading]:
        """Yield all sensor readings up to ``horizon``, in time order."""
        rng = spawn_rng(seed, "sensors", self.site)
        for time in range(0, horizon, self.period):
            for sensor, base in enumerate(self.base_temps):
                noise = float(rng.normal(0.0, self.noise_std))
                yield SensorReading(time, self.site, sensor, base + noise)

    def expected_temp(self, sensor: int) -> float:
        return self.base_temps[sensor]


def room_and_freezer_field(
    site: int,
    layout: Layout,
    freezer_shelves: tuple[int, ...] = (),
    room_temp: float = 20.0,
    freezer_temp: float = -18.0,
    noise_std: float = 0.5,
    period: int = 5,
) -> TemperatureField:
    """A field where the given shelf locations are freezers.

    ``freezer_shelves`` indexes into ``layout.shelf_indices`` (i.e. pass
    ``(0, 1)`` to freeze the first two shelves).
    """
    temps = [room_temp] * layout.n_locations
    for shelf_pos in freezer_shelves:
        temps[layout.shelf_indices[shelf_pos]] = freezer_temp
    return TemperatureField(site, layout, tuple(temps), noise_std, period)
