"""Simulated vendor reader feeds: the dirty text firehose at the edge.

Real deployments do not hand the federation a sorted columnar
:class:`~repro.sim.trace.Trace`; they hand it per-reader vendor feeds —
line-oriented records that arrive duplicated, interleaved with garbage,
mildly reordered, and sometimes not at all for minutes before a burst
replay. :class:`VendorFeed` renders one reader's slice of a clean trace
into exactly that, under a seeded noise model, so the edge layer can be
tested against the paper's actual operating conditions while the
underlying *set* of true readings stays exactly the clean trace's (the
chaos oracle: noise may duplicate, delay, and pollute the feed, never
lose a reading — loss is already modeled by the read-rate sampler).

Line formats (comma-separated text, the lowest common denominator of
vendor protocols):

* ``RD,<epoch>,<epc>,<reader>`` — one raw reading;
* ``KA,<epoch>`` — keepalive/progress: everything through ``<epoch>``
  has been emitted. This is what lets an edge distinguish "reader sees
  nothing" from "reader is offline": keepalives stop during an offline
  window, freezing the edge's progress watermark and thereby holding
  the gateway's epoch seals until the burst replay lands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import spawn_rng
from repro.sim.trace import Trace

__all__ = ["FeedNoise", "VendorFeed"]


@dataclass(frozen=True)
class FeedNoise:
    """Seeded per-line noise rates for one vendor feed.

    ``duplicate`` re-emits a reading line immediately; ``junk`` inserts
    a garbage line (unparseable, or a truncated ``RD`` record) next to a
    real one; ``shuffle`` is the probability that a chunk of lines is
    emitted in permuted order. None of them ever removes a reading.
    """

    duplicate: float = 0.0
    junk: float = 0.0
    shuffle: float = 0.0


class VendorFeed:
    """One reader's share of a trace, rendered as a lossy line feed.

    ``offline`` windows ``(t0, t1)`` buffer *everything* — readings and
    keepalives — while ``t0 <= wall < t1``, then flush the backlog as
    one burst at ``t1`` (the classic flaky-edge failure: a reader drops
    off the network for many epochs, then replays its queue).
    """

    def __init__(
        self,
        trace: Trace,
        reader: int,
        seed: int = 0,
        noise: FeedNoise | None = None,
        offline: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.site = trace.site
        self.reader = reader
        self.noise = noise if noise is not None else FeedNoise()
        mask = trace.readers == reader
        # time-major trace order keeps the per-reader slice time-sorted.
        self._times = trace.times[mask]
        self._tags = [trace.tag_table[i] for i in trace.tag_ids[mask]]
        self.horizon = trace.horizon
        # Windows are clamped to end before the horizon so the backlog
        # always replays by the end of the run.
        self.offline = tuple(
            (int(t0), min(int(t1), self.horizon)) for t0, t1 in offline
        )
        self._rng = spawn_rng(seed, "vendor", trace.site, reader)
        self._cursor = 0
        self._covered = -1  # highest epoch a keepalive has announced

    def _is_offline(self, wall: int) -> bool:
        return any(t0 <= wall < t1 for t0, t1 in self.offline)

    def emit_until(self, wall: int) -> list[str]:
        """Lines for everything newly covered at wall-clock ``wall``."""
        wall = min(wall, self.horizon)
        if self._is_offline(wall):
            return []
        if wall <= self._covered:
            return []
        lines: list[str] = []
        rng = self._rng
        noise = self.noise
        while self._cursor < len(self._times) and self._times[self._cursor] <= wall:
            t = int(self._times[self._cursor])
            tag = self._tags[self._cursor]
            self._cursor += 1
            line = f"RD,{t},{tag},{self.reader}"
            lines.append(line)
            if noise.duplicate and rng.random() < noise.duplicate:
                lines.append(line)
            if noise.junk and rng.random() < noise.junk:
                lines.append(self._junk_line(t))
        self._covered = wall
        lines.append(f"KA,{wall}")
        if noise.shuffle and len(lines) > 1 and rng.random() < noise.shuffle:
            order = rng.permutation(len(lines))
            lines = [lines[i] for i in order]
        return lines

    def _junk_line(self, near: int) -> str:
        roll = int(self._rng.integers(3))
        if roll == 0:
            return f"RD,{near},"  # truncated record
        if roll == 1:
            return f"RD,{near},bogus-{int(self._rng.integers(1 << 16))},{self.reader}"
        return f"#{int(self._rng.integers(1 << 30)):x}"  # line noise

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._times) and self._covered >= self.horizon

    @staticmethod
    def split_trace(trace: Trace) -> list[int]:
        """The reader ids present in ``trace`` — one feed (and one edge
        node) per reader, the deployment's physical partitioning."""
        return sorted(int(r) for r in np.unique(trace.readers))
