"""Containment-anomaly injection (Appendix C.1, parameter FA).

"To stress test our containment change detection algorithm, our
simulator can inject anomalies that randomly pick an item and place it
in a different case, with the frequency specified by the parameter FA."
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import spawn_rng
from repro.sim.engine import Simulator
from repro.sim.warehouse import Warehouse

__all__ = ["AnomalyInjector"]


class AnomalyInjector:
    """Periodically moves a random shelved item into a different case."""

    def __init__(
        self,
        sim: Simulator,
        warehouses: list[Warehouse],
        interval: int,
        start: int = 0,
        stop: int | None = None,
        removal_fraction: float = 0.0,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if interval < 1:
            raise ValueError("anomaly interval must be >= 1 epoch")
        self.sim = sim
        self.warehouses = warehouses
        self.interval = interval
        self.stop = stop
        self.removal_fraction = removal_fraction
        self.rng = spawn_rng(seed, "anomalies")
        self.injected = 0
        self.attempted = 0
        sim.schedule_at(start + interval, self._tick)

    def _tick(self) -> None:
        if self.stop is not None and self.sim.now >= self.stop:
            return
        self.attempted += 1
        order = self.rng.permutation(len(self.warehouses))
        for idx in order:
            warehouse = self.warehouses[int(idx)]
            remove = self.rng.random() < self.removal_fraction
            done = (
                warehouse.remove_random_item()
                if remove
                else warehouse.inject_containment_change()
            )
            if done:
                self.injected += 1
                break
        self.sim.schedule(self.interval, self._tick)
