"""Mutable physical-world state shared by simulator components.

The :class:`World` tracks, at the current simulation instant, where
every tag is and what contains what — and records every change into a
:class:`~repro.sim.trace.GroundTruth` for later evaluation. Moving a
container recursively moves its contents, which is precisely the
physical coupling that RFINFER's "smoothing over containment" exploits.
"""

from __future__ import annotations

from collections import defaultdict

from repro.sim.tags import EPC
from repro.sim.trace import AWAY, GroundTruth, Location

__all__ = ["World"]


class World:
    """Current physical state + ground-truth recorder."""

    def __init__(self, truth: GroundTruth | None = None) -> None:
        self.truth = truth if truth is not None else GroundTruth()
        self.location_of: dict[EPC, Location] = {}
        self.container_of: dict[EPC, EPC | None] = {}
        self.contents: dict[EPC, set[EPC]] = defaultdict(set)

    def register(
        self,
        tag: EPC,
        time: int,
        location: Location = AWAY,
        container: EPC | None = None,
    ) -> None:
        """Introduce a new tag into the world."""
        if tag in self.location_of:
            raise ValueError(f"tag {tag} registered twice")
        self.location_of[tag] = location
        self.truth.record_location(tag, time, location)
        self.container_of[tag] = None
        if container is not None:
            self.set_container(tag, time, container)
        else:
            self.truth.record_container(tag, time, None)

    def set_container(
        self,
        tag: EPC,
        time: int,
        container: EPC | None,
        anomalous: bool = False,
    ) -> None:
        """Re-parent ``tag`` (None removes it from any container)."""
        old = self.container_of.get(tag)
        if old is not None:
            self.contents[old].discard(tag)
        self.container_of[tag] = container
        if container is not None:
            if container.kind >= tag.kind:
                raise ValueError(f"{container} cannot contain {tag}")
            self.contents[container].add(tag)
        self.truth.record_container(tag, time, container)
        if anomalous:
            self.truth.record_change(time, tag, old, container)

    def move(self, tag: EPC, time: int, location: Location) -> None:
        """Move ``tag`` — and, recursively, everything inside it."""
        self.location_of[tag] = location
        self.truth.record_location(tag, time, location)
        for inner in sorted(self.contents.get(tag, ())):
            self.move(inner, time, location)

    def items_in(self, container: EPC) -> list[EPC]:
        """Current direct contents of ``container``, sorted for determinism."""
        return sorted(self.contents.get(container, ()))

    def location(self, tag: EPC) -> Location:
        return self.location_of.get(tag, AWAY)

    def container(self, tag: EPC) -> EPC | None:
        return self.container_of.get(tag)
