"""Render per-plane latency/throughput breakdowns from a telemetry dump.

Usage::

    python -m repro.obs.summary flight.jsonl [--plane edge] [--top 20]

Reads the JSONL produced by :func:`repro.obs.write_jsonl` (or a bare
flight-recorder dump) and prints three tables: per-plane span totals
with latency percentiles and span throughput, the hottest
``(plane, name)`` span groups, and the registry metrics from the
closing record if present.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_dump(path: str) -> tuple[list[dict], dict | None, dict | None]:
    spans: list[dict] = []
    meta: dict | None = None
    metrics: dict | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "meta":
                meta = entry
            elif kind == "metrics":
                metrics = entry.get("registry")
            else:
                spans.append(entry)
    return spans, meta, metrics


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def _span_table(spans: list[dict], key) -> list[tuple]:
    groups: dict = {}
    for s in spans:
        groups.setdefault(key(s), []).append(s["duration"])
    rows = []
    for group, durations in groups.items():
        durations.sort()
        total = sum(durations)
        rows.append(
            (
                group,
                len(durations),
                total,
                total / len(durations),
                _percentile(durations, 0.50),
                _percentile(durations, 0.95),
            )
        )
    rows.sort(key=lambda r: -r[2])
    return rows


def _print_rows(title: str, header: str, rows: list[str], out) -> None:
    print(f"== {title} ==", file=out)
    print(header, file=out)
    for row in rows:
        print(row, file=out)
    print(file=out)


def summarize(path: str, plane: str | None = None, top: int = 20, out=None) -> int:
    out = out or sys.stdout
    entries, meta, metrics = load_dump(path)
    spans = [e for e in entries if e.get("type") == "span" and "duration" in e]
    states = [e for e in entries if e.get("type") == "state"]
    if plane:
        spans = [s for s in spans if s.get("plane") == plane]
        states = [s for s in states if s.get("plane") == plane]

    header = f"telemetry summary: {path}"
    if meta:
        header += (
            f"  (window {meta.get('entries')}/{meta.get('capacity')} entries, "
            f"{meta.get('total_recorded')} recorded"
        )
        if meta.get("reason"):
            header += f", reason={meta['reason']}"
        header += ")"
    print(header, file=out)
    print(file=out)

    fmt = "{:<14} {:>7} {:>10} {:>9} {:>9} {:>9} {:>10}"
    rows = []
    for group, n, total, mean, p50, p95 in _span_table(spans, lambda s: s.get("plane", "?")):
        rate = n / total if total > 0 else 0.0
        rows.append(
            fmt.format(
                group, n, f"{total:.4f}", f"{mean * 1e3:.3f}",
                f"{p50 * 1e3:.3f}", f"{p95 * 1e3:.3f}", f"{rate:.1f}",
            )
        )
    _print_rows(
        "per-plane spans",
        fmt.format("plane", "spans", "total_s", "mean_ms", "p50_ms", "p95_ms", "spans/s"),
        rows or ["(no spans)"],
        out,
    )

    fmt2 = "{:<40} {:>7} {:>10} {:>9} {:>9} {:>9}"
    rows = []
    table = _span_table(spans, lambda s: (s.get("plane", "?"), s.get("name", "?")))
    for (group_plane, name), n, total, mean, p50, p95 in table[:top]:
        rows.append(
            fmt2.format(
                f"{group_plane}/{name}", n, f"{total:.4f}", f"{mean * 1e3:.3f}",
                f"{p50 * 1e3:.3f}", f"{p95 * 1e3:.3f}",
            )
        )
    _print_rows(
        f"hottest span groups (top {top})",
        fmt2.format("plane/name", "spans", "total_s", "mean_ms", "p50_ms", "p95_ms"),
        rows or ["(no spans)"],
        out,
    )

    if states:
        counts: dict = {}
        for s in states:
            key = (s.get("plane", "?"), s.get("name", "?"))
            counts[key] = counts.get(key, 0) + 1
        rows = [
            "{:<40} {:>7}".format(f"{p}/{n}", c)
            for (p, n), c in sorted(counts.items(), key=lambda kv: -kv[1])[:top]
        ]
        _print_rows(
            "state transitions",
            "{:<40} {:>7}".format("plane/name", "count"),
            rows,
            out,
        )

    if metrics:
        rows = []
        for name, labels, value in metrics.get("counters", []):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            rows.append("{:<50} {:>14}".format(f"{name}{{{label_str}}}", f"{value:g}"))
        for name, labels, value in metrics.get("gauges", []):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            rows.append(
                "{:<50} {:>14}".format(f"{name}{{{label_str}}} (gauge)", f"{value:g}")
            )
        for name, labels, bounds, bucket_counts, total, count in metrics.get(
            "histograms", []
        ):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            mean = total / count if count else 0.0
            rows.append(
                "{:<50} {:>14}".format(
                    f"{name}{{{label_str}}} (hist)", f"n={count} mean={mean:.2g}"
                )
            )
        if rows:
            _print_rows("metrics", "{:<50} {:>14}".format("series", "value"), rows, out)

    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("dump", help="telemetry JSONL dump")
    parser.add_argument("--plane", help="restrict to one plane")
    parser.add_argument("--top", type=int, default=20, help="rows per table")
    args = parser.parse_args(argv)
    return summarize(args.dump, plane=args.plane, top=args.top)


if __name__ == "__main__":
    raise SystemExit(main())
