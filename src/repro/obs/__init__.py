"""Cross-plane telemetry: metrics registry, causal spans, flight recorder.

The :class:`Telemetry` facade bundles the three pieces and hangs off a
process-global slot. The default instance is *disabled*: every
instrumentation site in the hot paths checks ``tel.enabled`` (one
attribute load) or calls ``tel.span(...)`` (which returns a shared
no-op when off), so an untraced run does no telemetry work and —
crucially — issues exactly the same transport commands as before this
subsystem existed. That is what makes the telemetry-on/off bit-identity
invariant hold by construction: tracing observes the planes, it never
participates in them.

Usage::

    from repro.obs import telemetry_session

    with telemetry_session() as tel:
        cluster.run(until=3600)
        tel.dump("demo", path="flight.jsonl")

or imperatively via :func:`install` / :func:`uninstall`.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Iterator

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.spans import NULL_SPAN, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "get_telemetry",
    "install",
    "telemetry_session",
    "uninstall",
    "write_jsonl",
]


class Telemetry:
    """Registry + tracer + flight recorder behind one enabled flag."""

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = 4096,
        dump_dir: str | None = None,
    ):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.recorder = FlightRecorder(capacity)
        self.tracer = Tracer(self.recorder.record)
        self.dump_dir = dump_dir

    # -- spans / states ---------------------------------------------------
    def span(self, plane: str, name: str, **attrs: object):
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(plane, name, **attrs)

    def emit_span(self, plane: str, name: str, duration: float, **attrs: object) -> int:
        if not self.enabled:
            return 0
        return self.tracer.emit(plane, name, duration, **attrs)

    def record_state(self, plane: str, name: str, **attrs: object) -> None:
        if self.enabled:
            self.recorder.record_state(plane, name, **attrs)

    # -- metrics ----------------------------------------------------------
    def counter(self, name: str, **labels: object):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: object):
        return self.registry.histogram(name, **labels)

    # -- dumping ----------------------------------------------------------
    def dump(self, reason: str = "manual", path: str | None = None) -> str | None:
        """Write the flight-recorder window + a final metrics record as
        JSONL. Returns the path written, or None when disabled."""
        if not self.enabled:
            return None
        if path is None:
            base = self.dump_dir or "."
            os.makedirs(base, exist_ok=True)
            path = os.path.join(base, f"flight-{reason}.jsonl")
        write_jsonl(path, self, reason=reason)
        return path


#: The disabled default — never replaced, so `get_telemetry()` is always
#: a cheap global read plus one attribute check at call sites.
_DISABLED = Telemetry(enabled=False, capacity=1)
_ACTIVE: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    return _ACTIVE


def install(tel: Telemetry | None = None) -> Telemetry:
    """Make ``tel`` (default: a fresh enabled instance) the process-global
    telemetry and return it."""
    global _ACTIVE
    _ACTIVE = tel if tel is not None else Telemetry()
    return _ACTIVE


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = _DISABLED


@contextmanager
def telemetry_session(
    capacity: int = 4096, dump_dir: str | None = None
) -> Iterator[Telemetry]:
    tel = install(Telemetry(capacity=capacity, dump_dir=dump_dir))
    try:
        yield tel
    finally:
        uninstall()


def write_jsonl(path: str, tel: Telemetry, reason: str | None = None) -> str:
    """JSONL export: a meta header, every flight-recorder entry, then a
    closing metrics record holding the registry snapshot."""
    with open(path, "w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "reason": reason,
            "entries": len(tel.recorder),
            "total_recorded": tel.recorder.total_recorded,
            "capacity": tel.recorder.capacity,
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        tel.recorder.write_jsonl(fh)
        metrics = {"type": "metrics", "registry": tel.registry.snapshot()}
        fh.write(json.dumps(metrics, sort_keys=True, default=str) + "\n")
    return path
