"""Causal span tracing across planes.

A span is one timed unit of work — an edge batch send, a gateway seal,
an inference phase, a serving scatter-gather round — tagged with the
plane it ran on and correlated across processes by the *existing*
identifiers the data plane already carries (per-link envelope ``seq``
numbers, request ids, window boundaries). Nothing is added to the wire
format: correlation keys ride as span attributes only, so envelope
bytes and the Table 5 ledger kinds are untouched by tracing.

Parentage within a process is tracked on a thread-local stack (the
threaded transport runs one site per thread), so nested ``span()``
blocks produce a causal tree without any explicit context plumbing.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable


class _NullSpan:
    """Shared no-op context manager returned when telemetry is off —
    zero allocation on the disabled path."""

    __slots__ = ()
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "plane", "name", "span_id", "parent_id", "attrs", "t0")

    def __init__(
        self,
        tracer: "Tracer",
        plane: str,
        name: str,
        parent_id: int,
        attrs: dict,
    ):
        self.tracer = tracer
        self.plane = plane
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.attrs = attrs
        self.t0 = 0.0

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.tracer._stack().append(self.span_id)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        duration = time.perf_counter() - self.t0
        stack = self.tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.tracer._finish(self, duration)


class Tracer:
    """Produces spans and hands the finished records to a sink
    (normally the telemetry flight recorder)."""

    def __init__(self, sink: Callable[[dict], None]):
        self._sink = sink
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> int:
        stack = self._stack()
        return stack[-1] if stack else 0

    def span(self, plane: str, name: str, **attrs: object) -> _Span:
        return _Span(self, plane, name, self.current_id(), attrs)

    def emit(
        self,
        plane: str,
        name: str,
        duration: float,
        parent_id: int | None = None,
        **attrs: object,
    ) -> int:
        """Record a pre-timed span (e.g. a phase duration the service
        already measured) without re-running it under a context manager."""
        span_id = next(self._ids)
        entry: dict = {
            "type": "span",
            "plane": plane,
            "name": name,
            "span_id": span_id,
            "parent_id": self.current_id() if parent_id is None else parent_id,
            "duration": duration,
        }
        entry.update(attrs)
        self._sink(entry)
        return span_id

    def _finish(self, span: _Span, duration: float) -> None:
        entry: dict = {
            "type": "span",
            "plane": span.plane,
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "duration": duration,
        }
        entry.update(span.attrs)
        self._sink(entry)
