"""Flight recorder: a bounded ring buffer of recent spans and state
transitions, dumpable to JSONL.

The recorder is the black box for chaos debugging: every finished span
and every recorded state transition lands here, the oldest entries fall
off the back (``deque(maxlen=...)``), and on a chaos assertion failure,
a ``WorkerDied``, or an explicit ``dump()`` the surviving window is
written out as one JSON object per line. Entries are plain dicts so
they pickle cheaply across the ``ProcessTransport`` pipe plane.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO


class FlightRecorder:
    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        #: Total entries ever recorded, including ones the ring evicted.
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, entry: dict) -> None:
        self._entries.append(entry)
        self.total_recorded += 1

    def record_state(self, plane: str, name: str, **attrs: object) -> None:
        entry: dict = {"type": "state", "plane": plane, "name": name}
        entry.update(attrs)
        self.record(entry)

    def entries(self) -> list[dict]:
        return list(self._entries)

    def tail(self, n: int = 16, **match: object) -> list[dict]:
        """Last ``n`` entries whose fields equal every ``match`` kwarg."""
        if match:
            picked = [
                e
                for e in self._entries
                if all(e.get(k) == v for k, v in match.items())
            ]
        else:
            picked = list(self._entries)
        return picked[-n:]

    def drain(self) -> list[dict]:
        """Return and clear the buffered entries (worker delta shipping)."""
        out = list(self._entries)
        self._entries.clear()
        return out

    # -- JSONL ------------------------------------------------------------
    def write_jsonl(self, fh: IO[str]) -> int:
        count = 0
        for entry in self._entries:
            fh.write(json.dumps(entry, sort_keys=True, default=str))
            fh.write("\n")
            count += 1
        return count

    def dump(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            self.write_jsonl(fh)
        return path
