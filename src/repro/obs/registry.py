"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

One API absorbs the ad-hoc counters that accumulated across the planes
(`Network` gauges, `TierStats`, edge stats). Series are keyed by
``(name, labels)`` where labels are sorted ``(key, value)`` string
pairs, so the same series reached from two call sites is the same
object. ``encode()`` produces a *canonical* byte encoding — sorted
series, sorted keys, shortest-round-trip floats — so two registries
holding the same values encode to identical bytes regardless of
insertion order, and ``decode(encode(r))`` round-trips exactly. That
determinism is what lets worker processes ship registry deltas over the
pipe plane and lets tests assert telemetry-on/off bit-identity.
"""

from __future__ import annotations

import json
import threading
from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bounds, in seconds: 100us .. 10s, roughly
#: geometric. Observations above the last bound land in the overflow
#: bucket (``counts[-1]``).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic (by convention) integer/float accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def set(self, value: int | float) -> None:
        # Compat hook for legacy ``ledger.gauge = n`` assignment sites;
        # new code should use inc().
        self.value = value


class Gauge:
    """Point-in-time value; set/add, last write wins."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, n: int | float = 1) -> None:
        self.value += n


class Histogram:
    """Fixed-bucket histogram: ``len(bounds)+1`` counts (last bucket is
    overflow), plus sum/count for mean computation."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey, bounds: tuple[float, ...]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile (0..1)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]


class MetricsRegistry:
    """Labeled metric series with canonical, deterministic encoding.

    Thread-safe for series *creation* (the threaded transport touches
    the registry from worker threads); per-series mutation is a single
    ``+=`` on a python object, which is safe under the GIL for our
    single-writer-per-series usage.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- series accessors ------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        series = self._counters.get(key)
        if series is None:
            with self._lock:
                series = self._counters.setdefault(key, Counter(name, key[1]))
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            with self._lock:
                series = self._gauges.setdefault(key, Gauge(name, key[1]))
        return series

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            with self._lock:
                series = self._histograms.setdefault(
                    key, Histogram(name, key[1], tuple(buckets))
                )
        if series.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} {key[1]!r} re-registered with different "
                f"buckets: {series.bounds!r} vs {tuple(buckets)!r}"
            )
        return series

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    # -- snapshot / canonical encoding -----------------------------------
    def snapshot(self) -> dict:
        """Plain-data view: sorted series lists, JSON-safe throughout."""
        return {
            "counters": [
                [name, [list(p) for p in labels], series.value]
                for (name, labels), series in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(p) for p in labels], series.value]
                for (name, labels), series in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    [list(p) for p in labels],
                    list(series.bounds),
                    list(series.counts),
                    series.sum,
                    series.count,
                ]
                for (name, labels), series in sorted(self._histograms.items())
            ],
        }

    def encode(self) -> bytes:
        """Canonical bytes: equal registries encode equal, regardless of
        the order series were created in."""
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes | str) -> "MetricsRegistry":
        registry = cls()
        registry.merge(json.loads(data))
        return registry

    # -- merge / drain (worker delta shipping) ---------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. a worker's drained delta) into this
        registry: counters/histograms add, gauges take the last write."""
        for name, labels, value in snapshot.get("counters", ()):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in snapshot.get("gauges", ()):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, bounds, counts, total, count in snapshot.get(
            "histograms", ()
        ):
            series = self.histogram(name, buckets=tuple(bounds), **dict(labels))
            for i, c in enumerate(counts):
                series.counts[i] += c
            series.sum += total
            series.count += count

    def drain(self) -> dict:
        """Snapshot then reset — what the pipe-plane delta protocol ships
        at barrier quiescence so values are never double-counted."""
        snap = self.snapshot()
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snap
