"""Piecewise-constant maps over integer time.

Ground truth (true locations, true containment) is piecewise constant:
an object is at one location for a stretch of epochs, then moves. An
:class:`IntervalMap` stores the breakpoints only, which keeps 4-hour
traces with hundreds of thousands of epochs cheap to store and query.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Generic, Iterator, TypeVar

V = TypeVar("V")

__all__ = ["IntervalMap"]


class IntervalMap(Generic[V]):
    """Map ``time -> value`` where the value changes at few breakpoints.

    ``set_from(t, value)`` declares that the value is ``value`` from epoch
    ``t`` (inclusive) until the next breakpoint. Queries before the first
    breakpoint return ``default``.
    """

    __slots__ = ("_times", "_values", "default")

    def __init__(self, default: V | None = None) -> None:
        self._times: list[int] = []
        self._values: list[V] = []
        self.default = default

    def set_from(self, time: int, value: V) -> None:
        """Declare the value from ``time`` onward (until overridden)."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"breakpoints must be appended in time order: {time} < {self._times[-1]}"
            )
        if self._times and self._times[-1] == time:
            self._values[-1] = value
            return
        if self._values and self._values[-1] == value:
            return  # no-op change; keep the map minimal
        self._times.append(time)
        self._values.append(value)

    def value_at(self, time: int) -> V | None:
        """Return the value in force at ``time``."""
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            return self.default
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._times)

    def breakpoints(self) -> Iterator[tuple[int, V]]:
        """Yield ``(time, value)`` breakpoints in order."""
        return iter(zip(self._times, self._values))

    def segments(self, start: int, end: int) -> Iterator[tuple[int, int, V | None]]:
        """Yield ``(seg_start, seg_end, value)`` covering ``[start, end)``.

        Segments are clipped to the requested range; the value before the
        first breakpoint is ``default``.
        """
        if start >= end:
            return
        idx = bisect_right(self._times, start) - 1
        cursor = start
        while cursor < end:
            if idx < 0:
                value = self.default
            else:
                value = self._values[idx]
            nxt = self._times[idx + 1] if idx + 1 < len(self._times) else end
            seg_end = min(nxt, end)
            yield cursor, seg_end, value
            cursor = seg_end
            idx += 1

    def final_value(self) -> V | None:
        """Return the value after the last breakpoint."""
        return self._values[-1] if self._values else self.default
