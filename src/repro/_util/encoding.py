"""Compact binary encoding used to measure migrated-state sizes.

The paper reports state-migration and communication costs in *bytes*
(Table 5, §5.4 table). To make those numbers meaningful we serialize all
migrated state (inference weights, query automaton state) with a compact
struct-style encoding rather than pickling Python objects.
"""

from __future__ import annotations

import struct

__all__ = ["ByteWriter", "ByteReader"]


class ByteWriter:
    """Append-only binary encoder with varint and typed helpers."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def varint(self, value: int) -> "ByteWriter":
        """Encode a non-negative integer with LEB128 variable length."""
        if value < 0:
            raise ValueError("varint encodes non-negative integers only")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._chunks.append(bytes((byte | 0x80,)))
            else:
                self._chunks.append(bytes((byte,)))
                return self

    def svarint(self, value: int) -> "ByteWriter":
        """Encode a signed integer (zig-zag + varint)."""
        return self.varint((value << 1) ^ (value >> 63) if value < 0 else value << 1)

    def float64(self, value: float) -> "ByteWriter":
        self._chunks.append(struct.pack("<d", value))
        return self

    def float32(self, value: float) -> "ByteWriter":
        self._chunks.append(struct.pack("<f", value))
        return self

    def text(self, value: str) -> "ByteWriter":
        raw = value.encode("utf-8")
        self.varint(len(raw))
        self._chunks.append(raw)
        return self

    def raw(self, value: bytes) -> "ByteWriter":
        self._chunks.append(value)
        return self

    def blob(self, value: bytes) -> "ByteWriter":
        self.varint(len(value))
        self._chunks.append(value)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)


class ByteReader:
    """Sequential decoder matching :class:`ByteWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def varint(self) -> int:
        shift = 0
        result = 0
        while True:
            if self._pos >= len(self._data):
                raise EOFError("truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def svarint(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def float64(self) -> float:
        value = struct.unpack_from("<d", self._data, self._pos)[0]
        self._pos += 8
        return value

    def float32(self) -> float:
        value = struct.unpack_from("<f", self._data, self._pos)[0]
        self._pos += 4
        return value

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def blob(self) -> bytes:
        return self.raw(self.varint())

    def raw(self, length: int) -> bytes:
        if self._pos + length > len(self._data):
            raise EOFError(
                f"truncated field: need {length} bytes, "
                f"{len(self._data) - self._pos} left"
            )
        value = self._data[self._pos : self._pos + length]
        self._pos += length
        return value

    def exhausted(self) -> bool:
        return self._pos >= len(self._data)
