"""Internal utilities shared across the repro packages.

These helpers are deliberately small and dependency-free (numpy only):
log-space arithmetic, seeded RNG streams, interval maps for ground truth,
and a compact binary encoding used to account for migrated state sizes.
"""

from repro._util.intervals import IntervalMap
from repro._util.logmath import log_normalize, logsumexp
from repro._util.encoding import ByteReader, ByteWriter
from repro._util.rng import spawn_rng

__all__ = [
    "ByteReader",
    "ByteWriter",
    "IntervalMap",
    "log_normalize",
    "logsumexp",
    "spawn_rng",
]
