"""Seeded random-number-generator streams.

All stochastic components (simulators, observation sampling, threshold
calibration) draw from :class:`numpy.random.Generator` streams spawned
from a single root seed, so every experiment in this repository is
reproducible bit-for-bit given its seed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["spawn_rng"]


def spawn_rng(seed: int | np.random.Generator, *key: object) -> np.random.Generator:
    """Return an independent RNG derived from ``seed`` and a stream key.

    ``key`` components (strings/ints) deterministically select a
    sub-stream, so e.g. the reading sampler and the anomaly injector of
    one simulation never share a stream even though they share a seed.
    """
    if isinstance(seed, np.random.Generator):
        entropy = seed.bit_generator.seed_seq.entropy  # type: ignore[union-attr]
        parts = list(entropy) if isinstance(entropy, (list, tuple)) else [entropy]
    else:
        parts = [int(seed)]
    material: list[int] = []
    for value in parts:
        material.append(value & 0xFFFFFFFF)
        material.append((value >> 32) & 0xFFFFFFFF)
    for part in key:
        if isinstance(part, int):
            material.append(part & 0xFFFFFFFF)
        else:
            # zlib.crc32 is stable across processes, unlike hash().
            material.append(zlib.crc32(str(part).encode("utf-8")) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))
