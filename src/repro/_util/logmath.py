"""Numerically stable log-space arithmetic helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["logsumexp", "log_normalize"]


def logsumexp(values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Compute ``log(sum(exp(values)))`` without overflow.

    Parameters
    ----------
    values:
        Array of log-domain values. ``-inf`` entries are handled.
    axis:
        Axis to reduce over; ``None`` reduces over the whole array.
    """
    values = np.asarray(values, dtype=float)
    peak = np.max(values, axis=axis, keepdims=axis is not None)
    if axis is None:
        peak_scalar = float(peak)
        if not np.isfinite(peak_scalar):
            return peak_scalar
        return peak_scalar + float(np.log(np.sum(np.exp(values - peak_scalar))))
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    total = np.log(np.sum(np.exp(values - safe_peak), axis=axis)) + np.squeeze(
        safe_peak, axis=axis
    )
    # Rows whose peak was -inf sum to zero probability: keep them -inf.
    return np.where(np.isfinite(np.squeeze(peak, axis=axis)), total, -np.inf)


def log_normalize(log_weights: np.ndarray) -> np.ndarray:
    """Normalize a vector of log-weights into a probability vector.

    Returns the probabilities in linear space. A vector of all ``-inf``
    normalizes to the uniform distribution (zero evidence).
    """
    log_weights = np.asarray(log_weights, dtype=float)
    total = logsumexp(log_weights)
    if not np.isfinite(total):
        return np.full(log_weights.shape, 1.0 / log_weights.size)
    return np.exp(log_weights - total)
