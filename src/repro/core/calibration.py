"""Deployment-level threshold calibration (§3.3, operationalized).

The paper chooses the change-point threshold δ offline by "sampling
hypothetical observation sequences from the model ... Since none of the
hypothetical sequences actually contain a change point, if our
procedure signals a change point on one of them, it must be a false
positive. In practice, all of the hypothetical ∆o(T) values are quite
small, so we choose δ to be their maximum."

:func:`repro.core.changepoint.calibrate_threshold` samples single-object
journeys; this module samples at *deployment* scale: it simulates a
small anomaly-free warehouse with the target read rates, runs the full
periodic inference pipeline on it, and records every Δo value any run
produces for any object. The maximum over those is the tightest
threshold that yields zero false positives on model-generated data —
it automatically absorbs every null noise mode the single-object
calibration misses (pallet departures, shelf twins, and knock-on noise
from containment-estimation errors).
"""

from __future__ import annotations

from repro.core.changepoint import ChangePointDetector
from repro.core.rfinfer import InferenceConfig
from repro.sim.readers import RateSpec
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.tags import TagKind

__all__ = ["calibrate_threshold_from_deployment"]


def calibrate_threshold_from_deployment(
    main_read_rate: RateSpec = 0.8,
    overlap_rate: RateSpec = 0.5,
    horizon: int = 1200,
    items_per_case: int = 10,
    injection_period: int = 180,
    n_shelves: int = 4,
    run_interval: int = 300,
    recent_history: int = 600,
    seed: int = 0,
    margin: float = 2.0,
    n_runs: int = 2,
    quantile: float = 0.99,
) -> float:
    """Run anomaly-free deployments and return a calibrated δ.

    The simulated deployment should mirror the real one's read rates,
    layout, and inference cadence; everything else (object counts,
    horizon) only needs to be large enough to exercise arrivals, shelf
    dwells, and departures. The null Δ distribution is heavy-tailed
    (an occasional containment misestimate produces one huge value), so
    instead of the single-run maximum we pool ``n_runs`` deployments and
    take ``margin ×`` the ``quantile`` of the reportable Δ values.
    """
    # Imported here: service.py imports changepoint.py, and this module
    # sits above both, so a top-level import would be circular via the
    # package __init__.
    import numpy as np

    from repro.core.service import ServiceConfig, StreamingInference

    probe = ChangePointDetector(threshold=0.0)
    samples: list[float] = []
    for run in range(n_runs):
        result = simulate(
            SupplyChainParams(
                n_warehouses=1,
                horizon=horizon,
                items_per_case=items_per_case,
                injection_period=injection_period,
                n_shelves=n_shelves,
                main_read_rate=main_read_rate,
                overlap_rate=overlap_rate,
                anomaly_interval=None,
                seed=seed + 1000 * run,
            )
        )
        service = StreamingInference(
            result.trace,
            ServiceConfig(
                run_interval=run_interval,
                recent_history=recent_history,
                truncation="cr",
                change_detection=False,
                emit_events=False,
                # This consumer re-derives Δ statistics from retained
                # runs, so it opts back into keeping evidence payloads.
                retain_evidence=True,
                inference=InferenceConfig(keep_evidence=True),
            ),
        )
        service.run_until(horizon)
        per_object: dict = {}
        for record in service.runs:
            if record.result is None or record.result.evidence is None:
                continue
            for tag in record.result.window.tags(TagKind.ITEM):
                delta, _, old, new = probe.statistic(record.result, tag)
                if old is None or new == old:
                    continue  # not reportable: arrivals and no-change fits
                per_object[tag] = max(per_object.get(tag, 0.0), delta)
        samples.extend(per_object.values())
    if not samples:
        return 0.0
    return float(np.quantile(np.asarray(samples), quantile)) * margin
