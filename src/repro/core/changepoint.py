"""Change-point detection for containment changes (§3.3, Appendix A.2).

For each object the detector compares the best single-container
explanation of the evidence against the best two-segment explanation
(one container before some t′, another after), via the generalized
likelihood-ratio statistic

    Δo(T) = max_t′ [ L(C0:t′) + L(Ct′:T) ] − L(C0:T)  ≥ 0.

(The paper's Eq. 6 prints the difference with the opposite sign but
flags a change when the statistic *exceeds* δ; we implement the
standard positive GLR form — see DESIGN.md.) A change is flagged when
Δo(T) > δ; the change time is the maximizing t′, and the new container
is the best candidate on the suffix. An "away" track (see
:meth:`TraceWindow.away_evidence`) lets the suffix hypothesis be
"removed altogether".

The threshold δ is calibrated *offline* by sampling no-change
observation sequences from the generative model itself and taking the
maximum Δ observed (§3.3): any larger value on real data is, under the
model, stronger evidence than pure noise can produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util.rng import spawn_rng
from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer, RFInferResult
from repro.sim.layout import Layout, warehouse_layout
from repro.sim.readers import ObservationSampler, ReadRateModel
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Location
from repro.sim.world import World

__all__ = ["ChangePoint", "ChangePointDetector", "calibrate_threshold"]


@dataclass(frozen=True)
class ChangePoint:
    """A detected containment change."""

    tag: EPC
    time: int
    old_container: EPC | None
    new_container: EPC | None
    score: float


class ChangePointDetector:
    """GLR change-point detector over RFINFER evidence tracks."""

    #: extra evidence the away track must show over the best container
    #: suffix before a change is labelled a removal — on a near-tie the
    #: object more plausibly left *inside* that container.
    REMOVAL_MARGIN = 5.0

    def __init__(self, threshold: float, allow_removal: bool = True) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.allow_removal = allow_removal

    # -- statistic --------------------------------------------------------

    def statistic(
        self, result: RFInferResult, tag: EPC, floor: int | None = None
    ) -> tuple[float, int, EPC | None, EPC | None]:
        """Return (Δo, best split epoch, prefix container, suffix container).

        ``floor`` excludes evidence before a previously detected change
        (Appendix A.2: "we disregard the data from 0…t′ in all
        subsequent calls"). A prefix/suffix container of None means the
        away hypothesis dominated that segment.
        """
        if result.evidence is None:
            raise ValueError("inference ran with keep_evidence=False")
        tracks = result.evidence.get(tag)
        if not tracks:
            return 0.0, -1, None, None
        window = result.window
        epochs = window.epochs
        valid = np.ones(window.n_rows, dtype=bool)
        if floor is not None:
            valid &= epochs >= floor
        mask = result.object_masks.get(tag)
        if mask is not None:
            valid &= mask
        if not valid.any():
            return 0.0, -1, None, None

        names: list[EPC | None] = list(tracks)
        matrix = np.stack([np.where(valid, tracks[c], 0.0) for c in names])
        if self.allow_removal:
            away = np.where(valid, window.away_evidence(tag), 0.0)
            matrix = np.vstack([matrix, away[None, :]])
            names.append(None)

        # Prefix sums with a leading zero column: cum[:, i] = sum of
        # rows < i, so a split *before* row i yields prefix cum[:, i].
        cum = np.concatenate(
            [np.zeros((matrix.shape[0], 1)), np.cumsum(matrix, axis=1)], axis=1
        )
        totals = cum[:, -1]
        # Single-segment fit must be a *container* (the M-step never
        # assigns "away"); exclude the away row from the single fit.
        n_real = len(tracks)
        single = float(totals[:n_real].max())

        prefix_best = cum.max(axis=0)  # over hypotheses, per split point
        suffix_all = totals[:, None] - cum
        suffix_best = suffix_all.max(axis=0)
        two_segment = prefix_best + suffix_best

        # Valid split points: boundaries between valid rows (1..n_rows-1
        # in cum-column coordinates). Splits at 0 or n_rows degenerate
        # to the single-segment fit, so they never dominate incorrectly.
        split_cols = np.arange(1, window.n_rows)
        if split_cols.size == 0:
            return 0.0, -1, None, None
        scores = two_segment[split_cols]
        best_idx = int(np.argmax(scores))
        best_col = int(split_cols[best_idx])
        delta = float(scores[best_idx] - single)
        old_container = self._segment_container(cum[:, best_col], names, n_real)
        new_container = self._segment_container(
            suffix_all[:, best_col], names, n_real
        )
        return delta, int(epochs[best_col]), old_container, new_container

    def _segment_container(
        self, segment_scores: np.ndarray, names: list[EPC | None], n_real: int
    ) -> EPC | None:
        """Best hypothesis for one segment, preferring real containers.

        Away wins only when it beats the best container by
        ``REMOVAL_MARGIN`` — on a near-tie the object more plausibly
        travelled *inside* that container.
        """
        best_real = int(np.argmax(segment_scores[:n_real]))
        if (
            self.allow_removal
            and len(names) > n_real
            and float(segment_scores[-1])
            > float(segment_scores[best_real]) + self.REMOVAL_MARGIN
        ):
            return None
        return names[best_real]

    def detect(
        self, result: RFInferResult, tag: EPC, floor: int | None = None
    ) -> ChangePoint | None:
        """Flag a change point for ``tag`` if Δo(T) exceeds the threshold.

        A change is a two-segment fit whose prefix and suffix containers
        differ. A prefix of "away" means the object *arrived* during the
        window — that is not a containment change and is not reported.
        """
        delta, split_epoch, old, new_container = self.statistic(result, tag, floor)
        if delta <= self.threshold or split_epoch < 0:
            return None
        if new_container == old or old is None:
            return None
        return ChangePoint(tag, split_epoch, old, new_container, delta)


def _null_journey(
    layout: Layout,
    length: int,
    n_distractors: int,
    rng: np.random.Generator,
) -> World:
    """A no-change journey: one case + one item travel together, with
    distractor cases that end up co-located on the object's shelf.

    The worst null-hypothesis noise comes from *twin* cases that share
    the object's shelf for the whole evaluation window — on shelf-only
    evidence they are statistically indistinguishable from the true
    container, so reading noise produces spurious two-segment fits. The
    calibrated δ must sit above that noise floor, which is why every
    distractor here is a shelf twin (plus door co-location).
    """
    world = World()
    case = EPC(TagKind.CASE, 0)
    obj = EPC(TagKind.ITEM, 0)
    world.register(case, 0)
    world.register(obj, 0, container=case)
    entry, belt = layout.entry, layout.belt
    shelf = int(rng.choice(layout.shelf_indices))
    t_belt = max(4, int(length * 0.02))
    t_shelf = t_belt + 5
    world.move(case, 0, Location(0, entry))
    world.move(case, t_belt, Location(0, belt))
    world.move(case, t_shelf, Location(0, shelf))
    for d in range(n_distractors):
        # Twin cases sit on the object's shelf for the entire window.
        twin = EPC(TagKind.CASE, d + 1)
        world.register(twin, 0, location=Location(0, shelf))
        # Twins carry their own contents, as real shelf neighbours do.
        for j in range(2):
            filler = EPC(TagKind.ITEM, 1 + d * 2 + j)
            world.register(filler, 0, container=twin)
            world.move(filler, 0, Location(0, shelf))
    world.truth.horizon = length
    return world


def calibrate_threshold(
    model: ReadRateModel | None = None,
    layout: Layout | None = None,
    n_samples: int = 20,
    length: int = 600,
    n_distractors: int = 3,
    seed: int = 0,
    margin: float = 1.05,
) -> float:
    """Choose δ by sampling no-change sequences from the model (§3.3).

    Runs the full pipeline (sample readings → RFINFER → Δ statistic) on
    ``n_samples`` synthetic journeys without change points and returns
    ``margin ×`` the maximum Δ observed. All computation happens before
    any real RFID data is seen.
    """
    if layout is None:
        layout = warehouse_layout(name="calibration")
    if model is None:
        model = ReadRateModel.build(layout, seed=seed)
    rng = spawn_rng(seed, "calibration")
    sampler = ObservationSampler(seed=spawn_rng(seed, "calibration-sampler"))
    detector = ChangePointDetector(threshold=0.0)
    worst = 0.0
    obj = EPC(TagKind.ITEM, 0)
    for sample in range(n_samples):
        world = _null_journey(layout, length, n_distractors, rng)
        trace = sampler.sample_site(world.truth, 0, layout, model, length)
        if trace.reading_count(obj) == 0:
            continue
        window = TraceWindow.from_range(trace, 0, length)
        result = RFInfer(
            window,
            InferenceConfig(candidate_pruning=False),
            objects=[obj],
            containers=window.tags(TagKind.CASE),
        ).run()
        delta, _, _, _ = detector.statistic(result, obj)
        worst = max(worst, delta)
    return worst * margin
