"""Collapsed inference state for migration (§4.1).

"We employ a technique to collapse the inference state to a single
number for each container-object pair, i.e., the co-location weight
w_co, hence avoiding the overhead of transferring readings entirely."

A :class:`CollapsedState` is what travels between sites (or is written
to the tag's on-board memory): the object's accumulated candidate
weights, its current container estimate, and its change floor. The
binary encoding is compact — a few bytes per candidate — because
Table 5's communication-cost comparison depends on it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import EPC, read_opt_epc, write_opt_epc

__all__ = ["CollapsedState"]


@dataclass
class CollapsedState:
    """Per-object inference state collapsed to candidate weights."""

    tag: EPC
    weights: dict[EPC, float] = field(default_factory=dict)
    container: EPC | None = None
    changed_at: int | None = None

    def merge(self, new_weights: dict[EPC, float]) -> dict[EPC, float]:
        """Old weights + weights from the new site's readings (§4.1:
        "simply adds the old transferred weights to the new weights")."""
        merged = dict(self.weights)
        for candidate, weight in new_weights.items():
            merged[candidate] = merged.get(candidate, 0.0) + weight
        return merged

    def best_container(self) -> EPC | None:
        if not self.weights:
            return self.container
        return max(self.weights, key=self.weights.__getitem__)

    # -- wire format ------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = ByteWriter()
        write_opt_epc(writer, self.tag)
        write_opt_epc(writer, self.container)
        writer.varint(0 if self.changed_at is None else self.changed_at + 1)
        writer.varint(len(self.weights))
        for candidate in sorted(self.weights):
            write_opt_epc(writer, candidate)
            writer.float32(self.weights[candidate])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CollapsedState":
        """Decode a wire state.

        Any malformed input — truncated varints, out-of-range tag
        kinds, short float fields — raises :class:`ValueError`, so a
        corrupt migration payload cannot leak decoder internals
        (``EOFError``, ``struct.error``) into the runtime.
        """
        try:
            return cls._decode(ByteReader(data))
        except ValueError:
            raise
        except (EOFError, struct.error, IndexError) as exc:
            raise ValueError(f"malformed collapsed state: {exc}") from exc

    @classmethod
    def _decode(cls, reader: ByteReader) -> "CollapsedState":
        tag = read_opt_epc(reader)
        if tag is None:
            raise ValueError("collapsed state must name its object")
        container = read_opt_epc(reader)
        raw_changed = reader.varint()
        changed_at = None if raw_changed == 0 else raw_changed - 1
        count = reader.varint()
        weights: dict[EPC, float] = {}
        for _ in range(count):
            candidate = read_opt_epc(reader)
            weight = reader.float32()
            if candidate is not None:
                weights[candidate] = weight
        return cls(tag, weights, container, changed_at)

    def byte_size(self) -> int:
        return len(self.to_bytes())
