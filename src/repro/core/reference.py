"""Naive, line-by-line implementation of Algorithm 1 (Appendix A.1).

This is the O(T·C·O·R²)-per-iteration version of RFINFER, written to
mirror the paper's pseudocode as literally as possible. It exists to
validate the optimized engine: on any input small enough to run, both
must produce the same containment estimate, posteriors, and weights
(up to floating-point noise). Property tests in
``tests/test_rfinfer_properties.py`` enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.likelihood import TraceWindow
from repro.sim.tags import EPC

__all__ = ["ReferenceResult", "reference_rfinfer"]


@dataclass
class ReferenceResult:
    """Output of the naive Algorithm 1."""

    containment: dict[EPC, EPC | None]
    posteriors: dict[EPC, np.ndarray]
    weights: dict[EPC, dict[EPC, float]]
    iterations: int


def _readings_by_epoch(
    window: TraceWindow, tag: EPC
) -> dict[int, list[int]]:
    by_row: dict[int, list[int]] = {}
    rows, readers = window.tag_rows(tag)
    for row, reader in zip(rows.tolist(), readers.tolist()):
        by_row.setdefault(row, []).append(reader)
    return by_row


def reference_rfinfer(
    window: TraceWindow,
    objects: Sequence[EPC],
    containers: Sequence[EPC],
    initial_containment: Mapping[EPC, EPC | None] | None = None,
    max_iterations: int = 10,
) -> ReferenceResult:
    """Run Algorithm 1 exactly as written (no pruning, no caching)."""
    model = window.model
    layout = window.layout
    n_loc = model.n_states
    n_rows = window.n_rows
    epochs = window.epochs

    obs = {tag: _readings_by_epoch(window, tag) for tag in [*objects, *containers]}

    def tag_loglik(tag: EPC, row: int) -> np.ndarray:
        """Vector over locations a of Σ_r log p(reading of tag | a)."""
        key = layout.pattern_key(int(epochs[row]))
        active = layout.active_readers(key)
        fired = obs[tag].get(row, [])
        vec = np.zeros(n_loc)
        for reader in active:
            if reader in fired:
                vec += model.log_pi[reader]
            else:
                vec += model.log_miss[reader]
        # Readings from inactive readers cannot occur by construction.
        return vec

    # Initial assignment: provided, else first container for everyone.
    assignment: dict[EPC, EPC | None] = {}
    for obj in objects:
        if initial_containment and obj in initial_containment:
            assignment[obj] = initial_containment[obj]
        else:
            assignment[obj] = containers[0] if containers else None

    posteriors: dict[EPC, np.ndarray] = {}
    weights: dict[EPC, dict[EPC, float]] = {o: {} for o in objects}
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # E-step (lines 2-11): q_tc(a) for every epoch and container.
        for container in containers:
            members = [o for o in objects if assignment[o] == container]
            q = np.zeros((n_rows, n_loc))
            for row in range(n_rows):
                log_vec = tag_loglik(container, row)
                for obj in members:
                    log_vec = log_vec + tag_loglik(obj, row)
                stable = np.exp(log_vec - log_vec.max())
                q[row] = stable / stable.sum()
            posteriors[container] = q

        # M-step (lines 12-20): w_co and argmax assignment.
        new_assignment: dict[EPC, EPC | None] = {}
        for obj in objects:
            best: EPC | None = None
            best_w = -np.inf
            for container in containers:
                q = posteriors[container]
                w = 0.0
                for row in range(n_rows):
                    w += float(np.dot(q[row], tag_loglik(obj, row)))
                weights[obj][container] = w
                if w > best_w:
                    best_w = w
                    best = container
            new_assignment[obj] = best if containers else None

        if new_assignment == assignment:
            break
        assignment = new_assignment

    return ReferenceResult(assignment, posteriors, weights, iterations)
