"""Candidate-container pruning (Appendix A.3).

"When computing the container that is most strongly co-located with a
given object, it is probably safe to consider only containers that have
been observed frequently with the object."

Co-location is counted at the reading level: object ``o`` and container
``c`` are co-located in epoch ``t`` when some reader fired for both in
``t``. Each object keeps its top-k most co-located containers as
candidates; the M-step and the change-point statistics range over those
only, which removes the factor ``C`` from the M-step complexity.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from repro.sim.tags import EPC, TagKind
from repro.core.likelihood import TraceWindow

__all__ = ["colocation_counts", "top_candidates"]


def colocation_counts(
    window: TraceWindow,
    objects: Sequence[EPC] | None = None,
    containers: Sequence[EPC] | None = None,
) -> dict[EPC, Counter]:
    """Count per (object, container) the epochs in which they were
    co-read by the same reader.

    Returns ``{object: Counter({container: count})}``. The join runs as
    a sorted-merge over packed ``(row, reader)`` keys — two gathers and
    one ``np.unique`` — instead of Python-level bucket dictionaries.
    Counters list containers in ``containers`` order, so equal counts
    tie-break deterministically by tag order in ``most_common``.
    """
    if objects is None:
        objects = window.tags(TagKind.ITEM)
    if containers is None:
        containers = window.tags(TagKind.CASE)
    counts: dict[EPC, Counter] = {obj: Counter() for obj in objects}

    stride = window.n_locations
    def packed(tags: Sequence[EPC]) -> tuple[np.ndarray, np.ndarray]:
        keys: list[np.ndarray] = []
        tag_idx: list[int] = []
        lengths: list[int] = []
        for idx, tag in enumerate(tags):
            rows, readers = window.tag_rows(tag)
            if rows.size:
                keys.append(rows * stride + readers)
                tag_idx.append(idx)
                lengths.append(rows.size)
        if not keys:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        ids = np.repeat(
            np.asarray(tag_idx, dtype=np.int64), np.asarray(lengths, dtype=np.int64)
        )
        return np.concatenate(keys), ids

    obj_keys, obj_ids = packed(objects)
    con_keys, con_ids = packed(containers)
    if obj_keys.size == 0 or con_keys.size == 0:
        return counts

    order = np.argsort(con_keys, kind="stable")
    con_keys_sorted = con_keys[order]
    con_ids_sorted = con_ids[order]
    starts = np.searchsorted(con_keys_sorted, obj_keys, side="left")
    ends = np.searchsorted(con_keys_sorted, obj_keys, side="right")
    lengths = ends - starts
    hit = lengths > 0
    if not hit.any():
        return counts
    starts, lengths = starts[hit], lengths[hit]
    total = int(lengths.sum())
    offsets = np.cumsum(lengths) - lengths
    # Expand each object reading's matching container-reading range.
    flat = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
    pair_obj = np.repeat(obj_ids[hit], lengths)
    pair_con = con_ids_sorted[flat]
    codes, pair_counts = np.unique(
        pair_obj * len(containers) + pair_con, return_counts=True
    )
    n_con = len(containers)
    for code, count in zip(codes.tolist(), pair_counts.tolist()):
        counts[objects[code // n_con]][containers[code % n_con]] += count
    return counts


def top_candidates(
    counts: Mapping[EPC, Counter],
    k: int = 5,
    extra: Mapping[EPC, Sequence[EPC]] | None = None,
) -> dict[EPC, list[EPC]]:
    """Keep each object's ``k`` most co-located containers.

    ``extra`` merges in additional must-keep candidates per object —
    the previously inferred container and any containers carried in a
    migrated collapsed state (their evidence would otherwise be lost).
    """
    candidates: dict[EPC, list[EPC]] = {}
    for obj, counter in counts.items():
        ranked = [c for c, _ in counter.most_common(k)]
        if extra and obj in extra:
            for must in extra[obj]:
                if must is not None and must not in ranked:
                    ranked.append(must)
        candidates[obj] = ranked
    if extra:
        for obj, musts in extra.items():
            if obj not in candidates:
                candidates[obj] = [m for m in musts if m is not None]
    return candidates
