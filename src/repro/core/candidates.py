"""Candidate-container pruning (Appendix A.3).

"When computing the container that is most strongly co-located with a
given object, it is probably safe to consider only containers that have
been observed frequently with the object."

Co-location is counted at the reading level: object ``o`` and container
``c`` are co-located in epoch ``t`` when some reader fired for both in
``t``. Each object keeps its top-k most co-located containers as
candidates; the M-step and the change-point statistics range over those
only, which removes the factor ``C`` from the M-step complexity.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Mapping, Sequence

from repro.sim.tags import EPC, TagKind
from repro.core.likelihood import TraceWindow

__all__ = ["colocation_counts", "top_candidates"]


def colocation_counts(
    window: TraceWindow,
    objects: Sequence[EPC] | None = None,
    containers: Sequence[EPC] | None = None,
) -> dict[EPC, Counter]:
    """Count per (object, container) the epochs in which they were
    co-read by the same reader.

    Returns ``{object: Counter({container: count})}``. Cost is linear in
    the number of readings (bucketed by (epoch-row, reader)).
    """
    if objects is None:
        objects = window.tags(TagKind.ITEM)
    if containers is None:
        containers = window.tags(TagKind.CASE)
    object_set = set(objects)
    container_set = set(containers)

    buckets_objects: dict[tuple[int, int], list[EPC]] = defaultdict(list)
    buckets_containers: dict[tuple[int, int], list[EPC]] = defaultdict(list)
    for tag, (rows, readers) in window.readings.items():
        if tag in object_set:
            target = buckets_objects
        elif tag in container_set:
            target = buckets_containers
        else:
            continue
        for row, reader in zip(rows.tolist(), readers.tolist()):
            target[(row, reader)].append(tag)

    counts: dict[EPC, Counter] = {obj: Counter() for obj in objects}
    for key, objs in buckets_objects.items():
        cons = buckets_containers.get(key)
        if not cons:
            continue
        for obj in objs:
            counter = counts[obj]
            for con in cons:
                counter[con] += 1
    return counts


def top_candidates(
    counts: Mapping[EPC, Counter],
    k: int = 5,
    extra: Mapping[EPC, Sequence[EPC]] | None = None,
) -> dict[EPC, list[EPC]]:
    """Keep each object's ``k`` most co-located containers.

    ``extra`` merges in additional must-keep candidates per object —
    the previously inferred container and any containers carried in a
    migrated collapsed state (their evidence would otherwise be lost).
    """
    candidates: dict[EPC, list[EPC]] = {}
    for obj, counter in counts.items():
        ranked = [c for c, _ in counter.most_common(k)]
        if extra and obj in extra:
            for must in extra[obj]:
                if must is not None and must not in ranked:
                    ranked.append(must)
        candidates[obj] = ranked
    if extra:
        for obj, musts in extra.items():
            if obj not in candidates:
                candidates[obj] = [m for m in musts if m is not None]
    return candidates
