"""Streaming inference service (Fig. 3, §5.1).

Runs RFINFER periodically (every ``run_interval`` epochs, default 300 as
in §5.1) over a window chosen by the history-truncation policy:

* ``"all"`` — the entire history so far (the paper's "Basic/All");
* ``"window"`` — the most recent ``window_size`` epochs ("W1200");
* ``"cr"`` — each object's critical region plus the recent history H̄
  (the paper's CR method, §4.1).

Each run updates containment estimates, optionally performs
change-point detection, refreshes critical regions, and emits the
object event stream that query processing consumes.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterable, Literal, Mapping

import numpy as np

from repro.core.changepoint import ChangePoint, ChangePointDetector, calibrate_threshold
from repro.core.collapsed import CollapsedState
from repro.core.events import ObjectEvent
from repro.core.likelihood import WindowCache
from repro.core.online import (
    MemoryBudget,
    OnlineChangeDetector,
    OnlineConfig,
    interval_signals,
)
from repro.core.rfinfer import InferenceConfig, RFInfer, RFInferResult
from repro.core.truncation import CriticalRegion, find_critical_regions
from repro.obs import get_telemetry
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Trace

__all__ = ["ServiceConfig", "RunRecord", "StreamingInference"]


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the periodic inference service."""

    run_interval: int = 300
    recent_history: int = 600
    truncation: Literal["all", "window", "cr"] = "cr"
    window_size: int = 1200
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    change_detection: bool = False
    change_threshold: float | None = None
    cr_width: int = 60
    cr_margin: float = 10.0
    emit_events: bool = True
    event_period: int = 1
    keep_results: bool = True
    #: keep each retained run's full per-(object, candidate) evidence
    #: arrays. Off by default: once change points and critical regions
    #: are extracted the payload only grows without bound (it dominated
    #: long-run memory); calibration-style consumers that post-process
    #: evidence opt back in.
    retain_evidence: bool = False
    calibration_seed: int = 0
    #: streaming change detector + stability gate: tags whose run-length
    #: posterior says "stable" skip the EM/CR/event hot path entirely
    #: (their containment carries forward). None keeps every tag on the
    #: full path.
    online: OnlineConfig | None = None
    #: hard memory bound for long streams: run records, the event
    #: backlog, critical regions, window epochs, and cached base rows
    #: are all truncated to a sliding epoch horizon. None retains
    #: everything (the historical behavior).
    budget: MemoryBudget | None = None

    def __post_init__(self) -> None:
        if self.run_interval < 1:
            raise ValueError("run_interval must be positive")
        if self.recent_history < self.run_interval:
            raise ValueError(
                "recent_history must cover at least one run interval, "
                f"got H̄={self.recent_history} < interval={self.run_interval}"
            )
        if self.truncation not in ("all", "window", "cr"):
            raise ValueError(f"unknown truncation policy {self.truncation!r}")
        if self.budget is not None and self.budget.horizon < self.recent_history:
            raise ValueError(
                "a memory budget must retain at least the recent history, "
                f"got horizon={self.budget.horizon} < H̄={self.recent_history}"
            )


@dataclass
class RunRecord:
    """Bookkeeping for one inference run at stream time ``time``."""

    time: int
    duration_seconds: float
    containment: dict[EPC, EPC | None]
    changes: list[ChangePoint]
    window_rows: int
    iterations: int
    result: RFInferResult | None = None
    #: wall-clock seconds per pipeline phase (detector / window / prune /
    #: e_step / m_step / evidence / changes / cr / events; the runtime
    #: adds queries and archive).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: tags the stability gate let skip full inference this run.
    pruned_tags: int = 0
    #: tags that went through the full EM/CR/event path this run.
    full_tags: int = 0


class StreamingInference:
    """Periodic RFINFER over an (already materialized) reading stream.

    The trace object holds all readings, but the service honours stream
    discipline: a run at time T looks only at readings before T.
    """

    #: cap (in nats) on a migrated candidate's disadvantage — one good
    #: co-location window at the new site can overrule the old estimate.
    PRIOR_CLIP = 15.0

    def __init__(self, trace: Trace, config: ServiceConfig | None = None) -> None:
        self.trace = trace
        self.config = config or ServiceConfig()
        self.site = trace.site
        self.containment: dict[EPC, EPC | None] = {}
        self.valid_from: dict[EPC, int] = {}
        self.critical_regions: dict[EPC, CriticalRegion] = {}
        #: critical regions of currently-pruned tags, parked so they do
        #: not widen windows while the stability gate holds, and
        #: restored when the tag re-enters full inference (its critical
        #: epochs rejoin the window it is re-inferred over).
        self.stashed_regions: dict[EPC, CriticalRegion] = {}
        self.prior_weights: dict[EPC, dict[EPC, float]] = {}
        #: each object's candidate weights from the most recent run that
        #: covered it — the collapsed state exported on migration. Kept
        #: as its own map (not recovered from ``runs``) so a site
        #: restored from a checkpoint exports exactly what it would have
        #: without the crash.
        self.last_weights: dict[EPC, dict[EPC, float]] = {}
        self.changes: list[ChangePoint] = []
        self.events: list[ObjectEvent] = []
        self.runs: list[RunRecord] = []
        #: events/runs dropped off the front by the memory budget —
        #: consumers hold *absolute* cursors (see :meth:`events_since`).
        self.events_truncated = 0
        self.runs_truncated = 0
        #: tags whose containment is only a migrated seed (no local run
        #: has estimated them yet) — excluded from EM initialization.
        self._seeded_only: set[EPC] = set()
        self.last_run_time = 0
        self.total_inference_seconds = 0.0
        self._threshold = self.config.change_threshold
        self._detector: ChangePointDetector | None = None
        #: streaming run-length detector behind the stability gate
        #: (None unless the config opts in).
        self.online: OnlineChangeDetector | None = (
            OnlineChangeDetector(self.config.online)
            if self.config.online is not None
            else None
        )
        #: incremental window builder — reuses base-matrix rows shared
        #: with the previous run's window (bitwise-identical to a cold
        #: build, so checkpoint-restored sites cannot diverge). Under a
        #: memory budget the retained rows are capped to the horizon.
        self._windows = WindowCache(
            trace,
            max_age=None if self.config.budget is None else self.config.budget.horizon,
        )

    # -- migration hooks (used by repro.distributed) ----------------------

    def absorb_state(self, state: CollapsedState) -> None:
        """Merge a migrated collapsed state into this site's priors.

        The carried container estimate is used for *reporting* until the
        first local run covers the object, but deliberately not as the
        EM initialization: a wrong migrated estimate would seed a wrong
        group whose posterior the object's own readings then sharpen —
        a self-confirming local optimum that cascades across sites. The
        migrated knowledge instead enters through the (bounded) prior
        weights, which break ties without being able to overrule fresh
        local co-location evidence.
        """
        merged = self.prior_weights.setdefault(state.tag, {})
        for candidate, weight in state.weights.items():
            merged[candidate] = merged.get(candidate, 0.0) + weight
        if state.tag not in self.containment and state.container is not None:
            self.containment[state.tag] = state.container
            self._seeded_only.add(state.tag)
        if state.changed_at is not None:
            self.valid_from.setdefault(state.tag, state.changed_at)

    def export_state(self, tag: EPC) -> CollapsedState:
        """Collapse this site's inference state for ``tag`` to weights.

        Weights are exported *relative to the best candidate* (best = 0,
        others ≤ 0) and clipped to a bounded confidence. Raw w_co values
        are log-likelihood sums whose magnitude grows with the window
        size: shipped absolutely they would rank "absent from the
        previous site's candidate set" (an implicit 0) above every
        observed candidate, and shipped unclipped a *wrong* previous
        estimate could outweigh any amount of bounded-window local
        evidence forever — §4.1 requires that readings at the new place
        "will eventually overrule the old weights".
        """
        if tag in self.last_weights:
            # The run's weights already include migrated priors.
            weights = dict(self.last_weights[tag])
        else:
            weights = dict(self.prior_weights.get(tag, {}))
        if weights:
            peak = max(weights.values())
            weights = {
                cand: max(w - peak, -self.PRIOR_CLIP) for cand, w in weights.items()
            }
        return CollapsedState(
            tag=tag,
            weights=weights,
            container=self.containment.get(tag),
            changed_at=self.valid_from.get(tag),
        )

    def export_states(self, tags: Iterable[EPC]) -> dict[EPC, CollapsedState]:
        """Collapse state for several departing objects at once.

        The batch form feeds the runtime's per-``(src, dst)`` migration
        bundles; objects the site knows nothing about still yield an
        (empty) state, mirroring :meth:`export_state`.
        """
        return {tag: self.export_state(tag) for tag in tags}

    # -- the periodic loop --------------------------------------------------

    @property
    def threshold(self) -> float:
        """The change-point threshold δ (calibrated lazily if unset)."""
        if self._threshold is None:
            self._threshold = calibrate_threshold(
                self.trace.model,
                self.trace.layout,
                seed=self.config.calibration_seed,
            )
        return self._threshold

    def run_until(self, horizon: int) -> None:
        """Execute all scheduled runs with boundaries ≤ ``horizon``.

        Under a memory budget each boundary also truncates the
        retained per-run state (a node-driven service truncates after
        the archive ingests the boundary instead — the archive is the
        spill target).
        """
        boundary = self.last_run_time + self.config.run_interval
        while boundary <= horizon:
            self.run_at(boundary)
            self.truncate_history()
            boundary = self.last_run_time + self.config.run_interval

    def _window_epochs(self, now: int) -> np.ndarray:
        config = self.config
        floor = 0 if config.budget is None else max(0, now - config.budget.horizon)
        if config.truncation == "all":
            return np.arange(floor, now, dtype=np.int64)
        if config.truncation == "window":
            return np.arange(max(floor, now - config.window_size), now, dtype=np.int64)
        ranges = [(max(floor, now - config.recent_history), now)]
        ranges.extend(cr.as_range() for cr in self.critical_regions.values())
        pieces = [
            np.arange(max(s, floor), min(e, now), dtype=np.int64) for s, e in ranges
        ]
        return np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)

    def _object_ranges(self, obj: EPC, now: int) -> list[tuple[int, int]] | None:
        config = self.config
        floor = self.valid_from.get(obj, 0)
        if config.truncation != "cr":
            if floor == 0:
                return None
            return [(floor, now)]
        ranges = [(max(0, now - config.recent_history), now)]
        region = self.critical_regions.get(obj)
        if region is not None:
            ranges.append(region.as_range())
        return [(max(s, floor), e) for s, e in ranges if e > max(s, floor)]

    def run_at(self, now: int) -> RunRecord:
        """One inference run at stream time ``now``."""
        config = self.config
        started = _time.perf_counter()
        # The detector/prune phases are recorded (as exact 0.0) even
        # with the gate disabled, so phase breakdowns aggregate
        # uniformly across configs.
        phases: dict[str, float] = {"detector": 0.0, "prune": 0.0}
        detector = self.online
        pruned: set[EPC] = set()
        if detector is not None:
            mark = _time.perf_counter()
            detector.observe(interval_signals(self.trace, self.last_run_time, now))
            pruned = {
                tag
                for tag, container in self.containment.items()
                if tag.kind is TagKind.ITEM
                and tag not in self._seeded_only
                and detector.prunable(tag, container)
            }
            # Entering the gate parks a tag's stored critical region: a
            # full run refreshes stable tags' regions into the recent
            # history every boundary, so carrying a frozen region here
            # would widen later windows with stale epochs the full path
            # never revisits. When the tag re-enters full inference
            # (flag, refresh, staleness), its parked region is restored
            # so the run that re-infers it still covers its critical
            # epochs.
            for tag in pruned:
                region = self.critical_regions.pop(tag, None)
                if region is not None:
                    self.stashed_regions[tag] = region
            for tag in [t for t in self.stashed_regions if t not in pruned]:
                self.critical_regions[tag] = self.stashed_regions.pop(tag)
            phases["detector"] = _time.perf_counter() - mark
        epochs = self._window_epochs(now)
        if epochs.size == 0:
            record = RunRecord(
                now, 0.0, dict(self.containment), [], 0, 0, phase_seconds=phases
            )
            self.runs.append(record)
            self.last_run_time = now
            self._emit_run_telemetry(record)
            return record

        mark = _time.perf_counter()
        window = self._windows.window(epochs)
        objects = window.tags(TagKind.ITEM)
        containers = window.tags(TagKind.CASE)
        phases["window"] = _time.perf_counter() - mark

        if detector is not None:
            mark = _time.perf_counter()
            pinned = {obj: self.containment[obj] for obj in objects if obj in pruned}
            full_objects = [obj for obj in objects if obj not in pinned]
            phases["prune"] = _time.perf_counter() - mark
        else:
            pinned = {}
            full_objects = objects

        mark = _time.perf_counter()
        object_ranges = {
            obj: ranges
            for obj in full_objects
            if (ranges := self._object_ranges(obj, now)) is not None
        }
        initial = {
            tag: container
            for tag, container in self.containment.items()
            if tag not in self._seeded_only
        }
        engine = RFInfer(
            window,
            config.inference,
            objects=full_objects,
            containers=containers,
            initial_containment=initial,
            prior_weights=self.prior_weights,
            object_ranges=object_ranges,
            pinned=pinned,
        )
        phases["window"] += _time.perf_counter() - mark
        result = engine.run()
        phases.update(result.timings)
        self._seeded_only.difference_update(result.containment)
        for obj, obj_weights in result.weights.items():
            self.last_weights[obj] = dict(obj_weights)

        mark = _time.perf_counter()
        run_changes: list[ChangePoint] = []
        if config.change_detection and config.inference.keep_evidence:
            if self._detector is None or self._detector.threshold != self.threshold:
                self._detector = ChangePointDetector(self.threshold)
            for obj in full_objects:
                change = self._detector.detect(
                    result, obj, floor=self.valid_from.get(obj)
                )
                if change is not None:
                    run_changes.append(change)
                    self.changes.append(change)
                    self.valid_from[obj] = change.time
                    result.containment[obj] = change.new_container
        phases["changes"] = _time.perf_counter() - mark

        self.containment.update(result.containment)

        if detector is not None:
            mark = _time.perf_counter()
            for obj in full_objects:
                detector.confirm(obj, result.containment.get(obj))
            phases["detector"] += _time.perf_counter() - mark

        mark = _time.perf_counter()
        if config.truncation == "cr" and config.inference.keep_evidence:
            self.critical_regions.update(
                find_critical_regions(
                    result,
                    full_objects,
                    width=config.cr_width,
                    margin_threshold=config.cr_margin,
                )
            )
        phases["cr"] = _time.perf_counter() - mark

        mark = _time.perf_counter()
        if config.emit_events:
            self._emit_events(result, self.last_run_time, now)
        phases["events"] = _time.perf_counter() - mark

        duration = _time.perf_counter() - started
        self.total_inference_seconds += duration
        if config.keep_results and not config.retain_evidence:
            # Change points, critical regions, and events are extracted
            # above; the per-(object, candidate) evidence arrays and the
            # memo caches (logZ rows, decoded location paths) would only
            # accumulate memory across retained runs. Posteriors stay —
            # post-hoc consumers (location-error metrics,
            # log_likelihood) recompute from them on demand.
            result.evidence = None
            result._logz_cache.clear()
            result._location_cache.clear()
            result._solo_cache.clear()
        record = RunRecord(
            time=now,
            duration_seconds=duration,
            containment=dict(self.containment),
            changes=run_changes,
            window_rows=window.n_rows,
            iterations=result.iterations,
            result=result if config.keep_results else None,
            phase_seconds=phases,
            pruned_tags=len(pinned),
            full_tags=len(full_objects),
        )
        self.runs.append(record)
        self.last_run_time = now
        self._emit_run_telemetry(record)
        return record

    def _emit_run_telemetry(self, record: RunRecord) -> None:
        """Telemetry-only view of a finished run: one ``inference/run``
        span with the service's already-measured phase breakdown as
        child spans. Reads the record, never the inference state, so a
        traced run computes exactly what an untraced one does."""
        tel = get_telemetry()
        if not tel.enabled:
            return
        parent = tel.tracer.emit(
            "inference",
            "run",
            record.duration_seconds,
            site=self.site,
            boundary=record.time,
            window_rows=record.window_rows,
            iterations=record.iterations,
            pruned=record.pruned_tags,
            full=record.full_tags,
        )
        for phase, seconds in record.phase_seconds.items():
            tel.tracer.emit(
                "inference",
                f"phase.{phase}",
                seconds,
                parent_id=parent,
                site=self.site,
                boundary=record.time,
            )
        tel.registry.counter("inference_runs", site=self.site).inc()
        tel.registry.histogram("inference_run_seconds", site=self.site).observe(
            record.duration_seconds
        )

    # -- bounded-memory long streams ------------------------------------

    def events_since(self, cursor: int) -> tuple[list[ObjectEvent], int]:
        """Events a consumer holding absolute position ``cursor`` has
        not seen, plus its new absolute position.

        Consumers (query feeds, the archive) track *absolute* event
        counts, so the memory budget can drop consumed events off the
        front of ``self.events`` without corrupting anyone's cursor.
        """
        start = max(cursor - self.events_truncated, 0)
        fresh = self.events[start:]
        return fresh, self.events_truncated + len(self.events)

    def truncate_history(self) -> None:
        """Enforce the memory budget on all retained per-run state.

        Drops run records and events whose time fell behind the sliding
        horizon (and, optionally, run records beyond ``retained_runs``),
        plus critical regions that ended before it and detector tracks
        of long-silent tags. A no-op without a configured budget. Call
        *after* the boundary's consumers (queries, archive) have
        ingested — the archive is the spill target for history.
        """
        budget = self.config.budget
        if budget is None:
            return
        cut = self.last_run_time - budget.horizon
        keep = 0
        while keep < len(self.runs) and self.runs[keep].time < cut:
            keep += 1
        if budget.retained_runs is not None:
            keep = max(keep, len(self.runs) - budget.retained_runs)
        if keep > 0:
            self.runs_truncated += keep
            del self.runs[:keep]
        keep = 0
        while keep < len(self.events) and self.events[keep].time < cut:
            keep += 1
        if keep > 0:
            self.events_truncated += keep
            del self.events[:keep]
        for tag in [t for t, r in self.critical_regions.items() if r.end <= cut]:
            del self.critical_regions[tag]
        for tag in [t for t, r in self.stashed_regions.items() if r.end <= cut]:
            del self.stashed_regions[tag]
        if self.online is not None:
            self.online.evict_stale()

    # -- event stream --------------------------------------------------------

    def _presence_span(self, tag: EPC, container: EPC | None, now: int) -> tuple[int, int] | None:
        """Epoch span during which ``tag`` is considered on-site."""
        first = self.trace.first_seen(tag)
        last = self.trace.last_seen(tag)
        if container is not None:
            c_first = self.trace.first_seen(container)
            c_last = self.trace.last_seen(container)
            if c_first is not None:
                first = c_first if first is None else min(first, c_first)
            if c_last is not None:
                last = c_last if last is None else max(last, c_last)
        if first is None or last is None:
            return None
        return first, min(last, now - 1)

    def _emit_events(self, result: RFInferResult, start: int, now: int) -> None:
        config = self.config
        window = result.window
        epochs = window.epochs
        lo = int(np.searchsorted(epochs, start))
        hi = int(np.searchsorted(epochs, now))
        if hi <= lo:
            return
        rows = np.arange(lo, hi)
        row_epochs = epochs[rows]
        keep = (row_epochs - start) % config.event_period == 0
        rows, row_epochs = rows[keep], row_epochs[keep]
        tags = window.tags(TagKind.ITEM) + window.tags(TagKind.CASE)
        # Per tag: select rows inside the presence span with an on-site
        # place estimate, entirely in numpy; only the surviving events
        # materialize as tuples.
        times_parts: list[np.ndarray] = []
        places_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        emitted: list[tuple[EPC, EPC | None]] = []
        tag_rank = {tag: i for i, tag in enumerate(sorted(tags))}
        # Resolve presence spans first so the batched Viterbi decode
        # only covers tags that can actually emit events this run.
        candidates: list[tuple[EPC, EPC | None, np.ndarray]] = []
        for tag in tags:
            container = result.containment.get(tag)
            span = self._presence_span(tag, container, now)
            if span is None:
                continue
            inside = (row_epochs >= span[0]) & (row_epochs <= span[1])
            if not inside.any():
                continue
            candidates.append((tag, container, inside))
        result.prefetch_locations([tag for tag, _, _ in candidates])
        for tag, container, inside in candidates:
            locations = result.location_rows(tag)
            places = locations[rows[inside]]
            on_site = places >= 0  # estimated away rows emit nothing
            if not on_site.any():
                continue
            times_parts.append(row_epochs[inside][on_site])
            places_parts.append(places[on_site])
            rank_parts.append(
                np.full(int(on_site.sum()), len(emitted), dtype=np.int64)
            )
            emitted.append((tag, container))
        if not emitted:
            return
        times = np.concatenate(times_parts)
        places = np.concatenate(places_parts)
        slots = np.concatenate(rank_parts)
        ranks = np.fromiter(
            (tag_rank[tag] for tag, _ in emitted), dtype=np.int64, count=len(emitted)
        )
        # Runs advance monotonically, so per-run (time, tag) ordering
        # keeps the whole event stream time-ordered for queries.
        order = np.lexsort((ranks[slots], times))
        site = self.site
        self.events.extend(
            ObjectEvent(
                time=int(times[i]),
                tag=emitted[slots[i]][0],
                site=site,
                place=int(places[i]),
                container=emitted[slots[i]][1],
            )
            for i in order.tolist()
        )

    # -- accessors -------------------------------------------------------------

    def containment_at(self, tag: EPC) -> EPC | None:
        return self.containment.get(tag)

    def retained_epoch_count(self, now: int) -> int:
        """Size of the reading window the next run would process."""
        return int(self._window_epochs(now).size)
