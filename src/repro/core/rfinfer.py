"""RFINFER — EM inference of containment and location (§3.2, Alg. 1).

The algorithm alternates:

* **E-step** — for each container ``c``, the posterior ``q_tc(a)`` over
  its location given its readings and its believed contents' readings
  (Eq. 4);
* **M-step** — for each object ``o`` and candidate container ``c``, the
  co-location strength ``w_co`` (Eq. 5), assigning each object to its
  argmax container.

This implementation includes the Appendix A.3 optimizations:

* *pattern caching* — epochs without readings share cached base vectors
  (inside :class:`~repro.core.likelihood.TraceWindow`);
* *candidate pruning* — objects only score their top-k co-located
  containers;
* *memoization* — a container whose member set did not change between
  EM iterations keeps its posterior without recomputation.

The M-step itself runs in one of two modes:

* **batched** (default) — all ``objects × candidates`` weights in a
  handful of numpy passes: one ``qbase`` per candidate, one mask-matrix
  matmul for the silence terms, and per-candidate gather/scatter-add
  over the concatenated reading arrays for the firing terms. Evidence
  extraction (``keep_evidence``) batches the same way.
* **per-pair** (``InferenceConfig(batched=False)``) — the historical
  loop calling :meth:`TraceWindow.weight` per (object, candidate) pair.
  Kept as the in-tree reference for the equivalence suite
  (``tests/test_equivalence.py``), which proves the two modes produce
  identical containment, change points, events, and ledger bytes.

Convergence to a local maximum of the likelihood (Theorem 1) holds
because the E- and M-steps each maximize the EM lower bound; the
property tests in ``tests/test_rfinfer_properties.py`` verify the
monotonicity empirically and check this engine against the naive
line-by-line implementation in :mod:`repro.core.reference`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.candidates import colocation_counts, top_candidates
from repro.core.likelihood import TraceWindow
from repro.sim.tags import EPC, TagKind

__all__ = ["InferenceConfig", "RFInfer", "RFInferResult"]

#: Ranges of epochs an object's evidence is restricted to — the union of
#: its critical region, the recent history, and anything after its last
#: detected change point.
EpochRanges = Sequence[tuple[int, int]]


@dataclass(frozen=True)
class InferenceConfig:
    """Tunables of the RFINFER engine."""

    max_iterations: int = 10
    n_candidates: int = 5
    candidate_pruning: bool = True
    memoize: bool = True
    keep_evidence: bool = True
    #: use the batched M-step/evidence kernels (False = the historical
    #: per-(object, candidate) loop, kept for equivalence testing).
    batched: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")


@dataclass
class RFInferResult:
    """Everything one RFINFER run produced."""

    window: TraceWindow
    containment: dict[EPC, EPC | None]
    weights: dict[EPC, dict[EPC, float]]
    candidates: dict[EPC, list[EPC]]
    posteriors: dict[EPC, np.ndarray]
    iterations: int
    #: per-object, per-candidate point-evidence arrays over window rows
    #: (zero outside the object's valid ranges); None if not kept.
    evidence: dict[EPC, dict[EPC, np.ndarray]] | None = None
    object_masks: dict[EPC, np.ndarray] = field(default_factory=dict)
    #: final believed contents of each container (for location smoothing).
    members: dict[EPC, list[EPC]] = field(default_factory=dict)
    #: wall-clock seconds per engine phase (e_step / m_step / evidence).
    timings: dict[str, float] = field(default_factory=dict)
    _solo_cache: dict[EPC, np.ndarray] = field(default_factory=dict, repr=False)
    _location_cache: dict[EPC, np.ndarray] = field(default_factory=dict, repr=False)
    #: per-(container, member-set) log-normalizer rows memoized during
    #: the EM run, so log_likelihood() does not redo the E-step.
    _logz_cache: dict[tuple[EPC, frozenset], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    # -- location estimates (the "smoothing over containment" output) ----

    def container_location_rows(self, container: EPC) -> np.ndarray:
        """MAP location (place index) per window row for a container.

        The model treats epochs independently, so a single epoch's MAP
        is unreliable: a silent epoch has a weak silence-skewed
        posterior, and an epoch with only *overlap* readings cannot
        separate the two shelves adjacent to the firing reader (the
        per-interrogation overlap rate OR is close to the main rate RR).
        Physical objects, however, dwell: rather than the fragile
        per-row argmax we decode the MAP *trajectory* under a sticky
        prior — a Viterbi pass over the per-epoch posteriors with a
        fixed penalty per location switch. Epochs with readings swing
        the log-posterior by tens of nats (a reading assigns ≈ log ε to
        every location its reader cannot see), so genuine moves switch
        the path within an epoch or two, while epoch-level noise and
        flat silence stretches cannot pay the switch penalty.
        """
        cached = self._location_cache.get(container)
        if cached is None:
            q = self.posteriors.get(container)
            if q is None:
                q = self._solo_posterior(container)
            cached = self._viterbi_decode(q)
            self._location_cache[container] = cached
        return cached

    #: log-likelihood cost of one location switch in the Viterbi decode.
    SWITCH_PENALTY = 15.0

    def _viterbi_decode(self, q: np.ndarray) -> np.ndarray:
        logq = np.log(np.maximum(q, 1e-300))
        n_rows, n_loc = logq.shape
        penalty = self.SWITCH_PENALTY
        pointers = np.empty((n_rows, n_loc), dtype=np.int32)
        score = logq[0].copy()
        pointers[0] = np.arange(n_loc)
        for row in range(1, n_rows):
            best_prev = int(np.argmax(score))
            switch_score = score[best_prev] - penalty
            stay = score >= switch_score
            pointers[row] = np.where(stay, np.arange(n_loc), best_prev)
            score = np.where(stay, score, switch_score) + logq[row]
        path = np.empty(n_rows, dtype=np.int64)
        path[-1] = int(np.argmax(score))
        for row in range(n_rows - 1, 0, -1):
            path[row - 1] = pointers[row, path[row]]
        # The virtual away state reports as place -1 ("not on site").
        path[path == self.window.away_index] = -1
        return path

    def _viterbi_decode_batch(self, qs: Sequence[np.ndarray]) -> np.ndarray:
        """Decode many posterior stacks at once — (B, T) paths.

        Row-for-row the recurrence matches :meth:`_viterbi_decode`
        (identical elementwise operations), but the epoch loop advances
        all B containers together, so the Python-level iteration count
        drops from B·T to T.
        """
        logq = np.log(np.maximum(np.stack(qs), 1e-300))  # (B, T, R)
        n_batch, n_rows, n_loc = logq.shape
        penalty = self.SWITCH_PENALTY
        pointers = np.empty((n_batch, n_rows, n_loc), dtype=np.int32)
        locs = np.arange(n_loc)
        lanes = np.arange(n_batch)
        score = logq[:, 0].copy()
        pointers[:, 0] = locs
        for row in range(1, n_rows):
            best_prev = np.argmax(score, axis=1)  # (B,)
            switch_score = score[lanes, best_prev] - penalty
            stay = score >= switch_score[:, None]
            pointers[:, row] = np.where(stay, locs, best_prev[:, None])
            score = np.where(stay, score, switch_score[:, None]) + logq[:, row]
        paths = np.empty((n_batch, n_rows), dtype=np.int64)
        paths[:, -1] = np.argmax(score, axis=1)
        for row in range(n_rows - 1, 0, -1):
            paths[:, row - 1] = pointers[lanes, row, paths[:, row]]
        paths[paths == self.window.away_index] = -1
        return paths

    def prefetch_locations(self, tags: Sequence[EPC]) -> None:
        """Batch-decode the location trajectories ``tags`` will need.

        Groups every container (or orphan tag) whose Viterbi decode is
        not cached yet into one batched pass; subsequent
        :meth:`location_rows` calls are cache hits.
        """
        wanted: list[EPC] = []
        seen: set[EPC] = set()
        for tag in tags:
            container = self.containment.get(tag) or tag
            if container in seen or container in self._location_cache:
                continue
            seen.add(container)
            wanted.append(container)
        if not wanted:
            return
        stacks = [
            self.posteriors.get(c)
            if self.posteriors.get(c) is not None
            else self._solo_posterior(c)
            for c in wanted
        ]
        paths = self._viterbi_decode_batch(stacks)
        for container, path in zip(wanted, paths):
            self._location_cache[container] = path

    def _solo_posterior(self, tag: EPC) -> np.ndarray:
        cached = self._solo_cache.get(tag)
        if cached is None:
            cached = self.window.solo_posterior(tag)
            self._solo_cache[tag] = cached
        return cached

    def location_rows(self, tag: EPC) -> np.ndarray:
        """MAP location per window row for any tag.

        Objects inherit their inferred container's location (§3.2: "the
        locations of objects believed to be in the container"); tags
        with no container fall back to their own readings.
        """
        container = self.containment.get(tag)
        if container is not None:
            return self.container_location_rows(container)
        return self.container_location_rows(tag)

    def location_at(self, tag: EPC, epoch: int) -> int:
        """MAP location (place index) of ``tag`` at ``epoch``."""
        return int(self.location_rows(tag)[self.window.row_of(epoch)])

    def container_of(self, tag: EPC) -> EPC | None:
        return self.containment.get(tag)

    def log_likelihood(self) -> float:
        """L(C) of Eq. (3) under the current containment estimate.

        Groups whose member set matches one the EM run already scored
        reuse the memoized per-row log-normalizers; only groups mutated
        after the run (e.g. by change-point overrides) are recomputed.
        """
        window = self.window
        n_loc = window.n_states
        total = 0.0
        members: dict[EPC, list[EPC]] = {c: [] for c in self.posteriors}
        for obj, container in self.containment.items():
            if container is not None:
                members.setdefault(container, []).append(obj)
        for container, content in members.items():
            logz = self._logz_cache.get((container, frozenset(content)))
            if logz is None:
                _, logz = window.group_posterior_logz([container, *sorted(content)])
            total += float(logz.sum())
            total -= logz.shape[0] * np.log(n_loc)
        return total


class _MStepBatch:
    """Precomputed gather/scatter structure for the batched M-step.

    Built once per run (candidate sets and object masks are fixed across
    EM iterations). For every candidate container the readings of all
    objects scoring it are concatenated into flat ``(rows, readers,
    object, keep)`` arrays, so one iteration of the M-step is, per
    candidate, a single per-reading gather + ``bincount`` scatter-add —
    and the silence (no-reading) terms are one mask-matrix matmul for
    all pairs at once.
    """

    def __init__(
        self,
        window: TraceWindow,
        objects: Sequence[EPC],
        candidates: Mapping[EPC, Sequence[EPC]],
        masks: Mapping[EPC, np.ndarray | None],
        prior_weights: Mapping[EPC, Mapping[EPC, float]],
    ) -> None:
        self.window = window
        self.objects = list(objects)
        self.candidates = candidates
        n_objects = len(self.objects)
        n_rows = window.n_rows
        self.cand_list = sorted({c for cands in candidates.values() for c in cands})
        col_of = {c: j for j, c in enumerate(self.cand_list)}
        self.n_cols = len(self.cand_list)

        # Silence terms: each object weighs candidate qbase rows by its
        # evidence-range mask (all ones when unrestricted); objects
        # sharing a mask share one row of the distinct-mask matrix.
        distinct_rows: list[np.ndarray] = [np.ones(n_rows)]
        row_of_mask: dict[int, int] = {}
        self.obj_mask_row = np.zeros(n_objects, dtype=np.int64)
        for i, obj in enumerate(self.objects):
            mask = masks.get(obj)
            if mask is None:
                continue
            row = row_of_mask.get(id(mask))
            if row is None:
                row = row_of_mask[id(mask)] = len(distinct_rows)
                distinct_rows.append(mask.astype(float))
            self.obj_mask_row[i] = row
        self.mask_rows = np.vstack(distinct_rows)

        # Flat (object, candidate) pair table in per-object candidate
        # order — the order the per-pair loop scores and tie-breaks in.
        pair_obj: list[int] = []
        pair_col: list[int] = []
        pair_prior: list[float] = []
        seg_starts: list[int] = []
        self.objs_with_cands: list[int] = []
        for i, obj in enumerate(self.objects):
            cands = candidates.get(obj, [])
            if not cands:
                continue
            prior = prior_weights.get(obj, {})
            floor = min(prior.values(), default=0.0)
            self.objs_with_cands.append(i)
            seg_starts.append(len(pair_obj))
            for cand in cands:
                pair_obj.append(i)
                pair_col.append(col_of[cand])
                pair_prior.append(prior.get(cand, floor))
        self.pair_obj = np.asarray(pair_obj, dtype=np.int64)
        self.pair_col = np.asarray(pair_col, dtype=np.int64)
        self.pair_prior = np.asarray(pair_prior, dtype=float)
        self.seg_starts = np.asarray(seg_starts, dtype=np.int64)

        # Per-candidate concatenated reading arrays across its scorers.
        self.cat_rows: list[np.ndarray] = []
        self.cat_readers: list[np.ndarray] = []
        self.cat_obj: list[np.ndarray] = []
        self.cat_slot: list[np.ndarray] = []
        self.cat_keep: list[np.ndarray] = []
        self.col_objs: list[list[int]] = []
        empty = np.empty(0, dtype=np.int64)
        scorers: list[list[int]] = [[] for _ in self.cand_list]
        for i, obj in enumerate(self.objects):
            for cand in candidates.get(obj, []):
                scorers[col_of[cand]].append(i)
        obj_rows = [window.tag_rows(obj) for obj in self.objects]
        obj_keep: list[np.ndarray | None] = []
        for i, obj in enumerate(self.objects):
            mask = masks.get(obj)
            rows = obj_rows[i][0]
            obj_keep.append(None if mask is None or rows.size == 0 else mask[rows])
        for j, _ in enumerate(self.cand_list):
            rows_parts: list[np.ndarray] = []
            readers_parts: list[np.ndarray] = []
            keep_parts: list[np.ndarray] = []
            part_obj: list[int] = []
            part_slot: list[int] = []
            part_len: list[int] = []
            for slot, i in enumerate(scorers[j]):
                rows, readers = obj_rows[i]
                if rows.size == 0:
                    continue
                rows_parts.append(rows)
                readers_parts.append(readers)
                keep = obj_keep[i]
                keep_parts.append(
                    np.ones(rows.size, dtype=bool) if keep is None else keep
                )
                part_obj.append(i)
                part_slot.append(slot)
                part_len.append(rows.size)
            self.col_objs.append(scorers[j])
            if rows_parts:
                lengths = np.asarray(part_len, dtype=np.int64)
                self.cat_rows.append(np.concatenate(rows_parts))
                self.cat_readers.append(np.concatenate(readers_parts))
                self.cat_obj.append(
                    np.repeat(np.asarray(part_obj, dtype=np.int64), lengths)
                )
                self.cat_slot.append(
                    np.repeat(np.asarray(part_slot, dtype=np.int64), lengths)
                )
                self.cat_keep.append(np.concatenate(keep_parts))
            else:
                self.cat_rows.append(empty)
                self.cat_readers.append(empty)
                self.cat_obj.append(empty)
                self.cat_slot.append(empty)
                self.cat_keep.append(np.empty(0, dtype=bool))

        self._last_qb: np.ndarray | None = None
        self._last_contrib: list[np.ndarray | None] = [None] * self.n_cols
        self._last_pairs: np.ndarray | None = None

    def step(
        self,
        posteriors: Mapping[EPC, np.ndarray],
        assignment: Mapping[EPC, EPC | None],
    ) -> dict[EPC, EPC | None]:
        """One batched M-step: all pair weights, then argmax assignment."""
        window = self.window
        delta = window._delta
        n_objects = len(self.objects)
        if not self.cand_list:
            # No candidate containers anywhere: every object keeps its
            # previous assignment (matching the per-pair loop).
            return {obj: assignment.get(obj) for obj in self.objects}
        qb = np.stack(
            [window.qbase(posteriors[c]) for c in self.cand_list]
        )  # (C, T)
        base_terms = (self.mask_rows @ qb.T)[self.obj_mask_row]  # (O, C)
        read_terms = np.zeros((n_objects, self.n_cols))
        for j, cand in enumerate(self.cand_list):
            rows = self.cat_rows[j]
            if rows.size == 0:
                self._last_contrib[j] = None
                continue
            q = posteriors[cand]
            contrib = np.einsum("jr,jr->j", q[rows], delta[self.cat_readers[j]])
            self._last_contrib[j] = contrib
            read_terms[:, j] = np.bincount(
                self.cat_obj[j],
                weights=np.where(self.cat_keep[j], contrib, 0.0),
                minlength=n_objects,
            )
        self._last_qb = qb
        totals = base_terms + read_terms
        pairs = totals[self.pair_obj, self.pair_col] + self.pair_prior
        self._last_pairs = pairs

        new_assignment: dict[EPC, EPC | None] = {
            obj: assignment.get(obj)
            for obj in self.objects
            if not self.candidates.get(obj)
        }
        if self.seg_starts.size:
            seg_max = np.maximum.reduceat(pairs, self.seg_starts)
            # First strict maximum in per-object candidate order — the
            # tie-break of the per-pair loop ("w > best" keeps the first).
            first = np.full(len(self.objs_with_cands), pairs.size, dtype=np.int64)
            seg_of_pair = (
                np.searchsorted(self.seg_starts, np.arange(pairs.size), side="right")
                - 1
            )
            at_max = pairs == seg_max[seg_of_pair]
            np.minimum.at(first, seg_of_pair[at_max], np.flatnonzero(at_max))
            for k, i in enumerate(self.objs_with_cands):
                obj = self.objects[i]
                winner = int(first[k] - self.seg_starts[k])
                new_assignment[obj] = self.candidates[obj][winner]
        return new_assignment

    def fill_weights(self, weights: dict[EPC, dict[EPC, float]]) -> None:
        """Write the final iteration's pair weights into the result dict."""
        if self._last_pairs is None:
            return
        values = self._last_pairs.tolist()
        pos = 0
        for i in self.objs_with_cands:
            obj = self.objects[i]
            per_obj = weights[obj]
            for cand in self.candidates[obj]:
                per_obj[cand] = values[pos]
                pos += 1

    def evidence(
        self, masks: Mapping[EPC, np.ndarray | None]
    ) -> dict[EPC, dict[EPC, np.ndarray]]:
        """Batched ``keep_evidence`` extraction from the final posteriors.

        Reuses the final M-step's ``qbase`` rows and per-reading
        contributions; the scatter-add order matches the per-pair
        ``point_evidence`` path reading-for-reading, so the arrays are
        bitwise identical to the historical extraction.
        """
        if self._last_qb is None:  # no candidates were ever scored
            return {obj: {} for obj in self.objects}
        collected: dict[EPC, dict[EPC, np.ndarray]] = {}
        for j, cand in enumerate(self.cand_list):
            scorers = self.col_objs[j]
            if not scorers:
                continue
            tracks = np.repeat(self._last_qb[j][None, :], len(scorers), axis=0)
            contrib = self._last_contrib[j]
            if contrib is not None:
                np.add.at(tracks, (self.cat_slot[j], self.cat_rows[j]), contrib)
            for slot, i in enumerate(scorers):
                obj = self.objects[i]
                arr = tracks[slot]
                mask = masks.get(obj)
                if mask is not None:
                    arr = np.where(mask, arr, 0.0)
                collected.setdefault(obj, {})[cand] = arr
        # Per-object candidate order is semantic: downstream change-point
        # tie-breaks follow track insertion order.
        out: dict[EPC, dict[EPC, np.ndarray]] = {}
        for obj in self.objects:
            per_obj = collected.get(obj, {})
            out[obj] = {c: per_obj[c] for c in self.candidates.get(obj, []) if c in per_obj}
        return out


class RFInfer:
    """One run of the RFINFER EM algorithm over a trace window."""

    def __init__(
        self,
        window: TraceWindow,
        config: InferenceConfig | None = None,
        objects: Sequence[EPC] | None = None,
        containers: Sequence[EPC] | None = None,
        initial_containment: Mapping[EPC, EPC | None] | None = None,
        prior_weights: Mapping[EPC, Mapping[EPC, float]] | None = None,
        object_ranges: Mapping[EPC, EpochRanges] | None = None,
        pinned: Mapping[EPC, EPC] | None = None,
    ) -> None:
        self.window = window
        self.config = config or InferenceConfig()
        self.objects = list(objects) if objects is not None else window.tags(TagKind.ITEM)
        self.containers = (
            list(containers) if containers is not None else window.tags(TagKind.CASE)
        )
        self.initial_containment = dict(initial_containment or {})
        self.prior_weights = {
            obj: dict(weights) for obj, weights in (prior_weights or {}).items()
        }
        self.object_ranges = dict(object_ranges or {})
        #: objects whose containment is fixed for this run (the service's
        #: stability gate). Pinned objects are not scored — no candidate
        #: selection, M-step, or evidence — but they stay E-step members
        #: of their pinned container, so every group posterior (and thus
        #: every other object's inference) is bitwise identical to a run
        #: that scored them and reached the same assignment.
        self.pinned = dict(pinned or {})

    # -- candidate selection -----------------------------------------------

    def _select_candidates(self) -> dict[EPC, list[EPC]]:
        counts = colocation_counts(self.window, self.objects, self.containers)
        if not self.config.candidate_pruning:
            every = list(self.containers)
            return {obj: list(every) for obj in self.objects}
        extra: dict[EPC, list[EPC]] = {}
        for obj in self.objects:
            musts: list[EPC] = []
            previous = self.initial_containment.get(obj)
            if previous is not None:
                musts.append(previous)
            musts.extend(self.prior_weights.get(obj, ()))
            if musts:
                extra[obj] = musts
        return top_candidates(counts, k=self.config.n_candidates, extra=extra)

    def _initial_assignment(self, candidates: dict[EPC, list[EPC]]) -> dict[EPC, EPC | None]:
        assignment: dict[EPC, EPC | None] = {}
        for obj in self.objects:
            initial = self.initial_containment.get(obj)
            if initial is not None and initial in candidates.get(obj, ()):
                assignment[obj] = initial
            else:
                cands = candidates.get(obj, [])
                assignment[obj] = cands[0] if cands else None
        return assignment

    def _object_mask(self, obj: EPC) -> np.ndarray | None:
        ranges = self.object_ranges.get(obj)
        if ranges is None:
            return None
        return self.window.rows_in_ranges(ranges)

    def _object_masks(self) -> dict[EPC, np.ndarray | None]:
        """Evidence-range masks for every object, deduplicated.

        Under ``"cr"`` truncation most objects share the same recent-
        history range, so identical range tuples share one (read-only)
        mask array instead of recomputing it per object.
        """
        shared: dict[tuple[tuple[int, int], ...], np.ndarray] = {}
        masks: dict[EPC, np.ndarray | None] = {}
        for obj in self.objects:
            ranges = self.object_ranges.get(obj)
            if ranges is None:
                masks[obj] = None
                continue
            key = tuple(ranges)
            mask = shared.get(key)
            if mask is None:
                mask = shared[key] = self.window.rows_in_ranges(ranges)
            masks[obj] = mask
        return masks

    # -- the per-pair (historical) kernels -----------------------------------

    def _mstep_per_pair(
        self,
        candidates: dict[EPC, list[EPC]],
        posteriors: dict[EPC, np.ndarray],
        masks: dict[EPC, np.ndarray | None],
        weights: dict[EPC, dict[EPC, float]],
        assignment: dict[EPC, EPC | None],
    ) -> dict[EPC, EPC | None]:
        window = self.window
        new_assignment: dict[EPC, EPC | None] = {}
        for obj in self.objects:
            cands = candidates.get(obj, [])
            if not cands:
                new_assignment[obj] = assignment.get(obj)
                continue
            prior = self.prior_weights.get(obj, {})
            # Candidates the previous site never scored are at best
            # as plausible as its worst observed candidate — without
            # this floor an unseen candidate would outrank every
            # migrated (≤ 0, relative) weight for free.
            prior_floor = min(prior.values(), default=0.0)
            mask = masks[obj]
            best_container: EPC | None = None
            best_weight = -np.inf
            for cand in cands:
                w = window.weight(posteriors[cand], obj, mask)
                w += prior.get(cand, prior_floor)
                weights[obj][cand] = w
                if w > best_weight:
                    best_weight = w
                    best_container = cand
            new_assignment[obj] = best_container
        return new_assignment

    def _evidence_per_pair(
        self,
        candidates: dict[EPC, list[EPC]],
        posteriors: dict[EPC, np.ndarray],
        masks: dict[EPC, np.ndarray | None],
    ) -> dict[EPC, dict[EPC, np.ndarray]]:
        window = self.window
        evidence: dict[EPC, dict[EPC, np.ndarray]] = {}
        for obj in self.objects:
            per_candidate: dict[EPC, np.ndarray] = {}
            mask = masks[obj]
            for cand in candidates.get(obj, []):
                arr = window.point_evidence(posteriors[cand], obj)
                if mask is not None:
                    arr = np.where(mask, arr, 0.0)
                per_candidate[cand] = arr
            evidence[obj] = per_candidate
        return evidence

    # -- the EM loop ---------------------------------------------------------

    def run(self) -> RFInferResult:
        window = self.window
        config = self.config
        candidates = self._select_candidates()
        assignment = self._initial_assignment(candidates)
        needed_containers = sorted(
            {c for cands in candidates.values() for c in cands}
            | {c for c in assignment.values() if c is not None}
            | set(self.pinned.values())
        )
        masks = self._object_masks()
        batch = (
            _MStepBatch(window, self.objects, candidates, masks, self.prior_weights)
            if config.batched
            else None
        )

        posteriors: dict[EPC, np.ndarray] = {}
        members_of: dict[EPC, frozenset[EPC]] = {}
        logz_cache: dict[tuple[EPC, frozenset], np.ndarray] = {}
        weights: dict[EPC, dict[EPC, float]] = {obj: {} for obj in self.objects}
        iterations = 0
        timings = {"e_step": 0.0, "m_step": 0.0, "evidence": 0.0}

        for iterations in range(1, config.max_iterations + 1):
            # E-step: posterior over each needed container's location.
            started = _time.perf_counter()
            current_members: dict[EPC, list[EPC]] = {c: [] for c in needed_containers}
            for obj, container in assignment.items():
                if container is not None:
                    current_members.setdefault(container, []).append(obj)
            for obj, container in self.pinned.items():
                current_members.setdefault(container, []).append(obj)
            for container in needed_containers:
                group = frozenset(current_members.get(container, ()))
                if (
                    config.memoize
                    and container in posteriors
                    and members_of.get(container) == group
                ):
                    continue  # memoization: member set unchanged
                posteriors[container], logz = window.group_posterior_logz(
                    [container, *sorted(group)]
                )
                logz_cache[(container, group)] = logz
                members_of[container] = group
            timings["e_step"] += _time.perf_counter() - started

            # M-step: co-location strengths and argmax assignment.
            started = _time.perf_counter()
            if batch is not None:
                new_assignment = batch.step(posteriors, assignment)
            else:
                new_assignment = self._mstep_per_pair(
                    candidates, posteriors, masks, weights, assignment
                )
            timings["m_step"] += _time.perf_counter() - started

            if new_assignment == assignment:
                break
            assignment = new_assignment

        if batch is not None:
            batch.fill_weights(weights)

        evidence: dict[EPC, dict[EPC, np.ndarray]] | None = None
        if config.keep_evidence:
            started = _time.perf_counter()
            if batch is not None:
                evidence = batch.evidence(masks)
            else:
                evidence = self._evidence_per_pair(candidates, posteriors, masks)
            timings["evidence"] += _time.perf_counter() - started

        final_members: dict[EPC, list[EPC]] = {c: [] for c in needed_containers}
        for obj, container in assignment.items():
            if container is not None:
                final_members.setdefault(container, []).append(obj)
        for obj, container in self.pinned.items():
            final_members.setdefault(container, []).append(obj)

        containment = dict(assignment)
        containment.update(self.pinned)

        return RFInferResult(
            window=window,
            containment=containment,
            weights=weights,
            candidates=candidates,
            posteriors=posteriors,
            iterations=iterations,
            evidence=evidence,
            object_masks={o: m for o, m in masks.items() if m is not None},
            members=final_members,
            timings=timings,
            _logz_cache=logz_cache,
        )
