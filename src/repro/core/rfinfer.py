"""RFINFER — EM inference of containment and location (§3.2, Alg. 1).

The algorithm alternates:

* **E-step** — for each container ``c``, the posterior ``q_tc(a)`` over
  its location given its readings and its believed contents' readings
  (Eq. 4);
* **M-step** — for each object ``o`` and candidate container ``c``, the
  co-location strength ``w_co`` (Eq. 5), assigning each object to its
  argmax container.

This implementation includes the Appendix A.3 optimizations:

* *pattern caching* — epochs without readings share cached base vectors
  (inside :class:`~repro.core.likelihood.TraceWindow`);
* *candidate pruning* — objects only score their top-k co-located
  containers;
* *memoization* — a container whose member set did not change between
  EM iterations keeps its posterior without recomputation.

Convergence to a local maximum of the likelihood (Theorem 1) holds
because the E- and M-steps each maximize the EM lower bound; the
property tests in ``tests/test_rfinfer_properties.py`` verify the
monotonicity empirically and check this engine against the naive
line-by-line implementation in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.candidates import colocation_counts, top_candidates
from repro.core.likelihood import TraceWindow
from repro.sim.tags import EPC, TagKind

__all__ = ["InferenceConfig", "RFInfer", "RFInferResult"]

#: Ranges of epochs an object's evidence is restricted to — the union of
#: its critical region, the recent history, and anything after its last
#: detected change point.
EpochRanges = Sequence[tuple[int, int]]


@dataclass(frozen=True)
class InferenceConfig:
    """Tunables of the RFINFER engine."""

    max_iterations: int = 10
    n_candidates: int = 5
    candidate_pruning: bool = True
    memoize: bool = True
    keep_evidence: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")


@dataclass
class RFInferResult:
    """Everything one RFINFER run produced."""

    window: TraceWindow
    containment: dict[EPC, EPC | None]
    weights: dict[EPC, dict[EPC, float]]
    candidates: dict[EPC, list[EPC]]
    posteriors: dict[EPC, np.ndarray]
    iterations: int
    #: per-object, per-candidate point-evidence arrays over window rows
    #: (zero outside the object's valid ranges); None if not kept.
    evidence: dict[EPC, dict[EPC, np.ndarray]] | None = None
    object_masks: dict[EPC, np.ndarray] = field(default_factory=dict)
    #: final believed contents of each container (for location smoothing).
    members: dict[EPC, list[EPC]] = field(default_factory=dict)
    _solo_cache: dict[EPC, np.ndarray] = field(default_factory=dict, repr=False)
    _location_cache: dict[EPC, np.ndarray] = field(default_factory=dict, repr=False)

    # -- location estimates (the "smoothing over containment" output) ----

    def container_location_rows(self, container: EPC) -> np.ndarray:
        """MAP location (place index) per window row for a container.

        The model treats epochs independently, so a single epoch's MAP
        is unreliable: a silent epoch has a weak silence-skewed
        posterior, and an epoch with only *overlap* readings cannot
        separate the two shelves adjacent to the firing reader (the
        per-interrogation overlap rate OR is close to the main rate RR).
        Physical objects, however, dwell: rather than the fragile
        per-row argmax we decode the MAP *trajectory* under a sticky
        prior — a Viterbi pass over the per-epoch posteriors with a
        fixed penalty per location switch. Epochs with readings swing
        the log-posterior by tens of nats (a reading assigns ≈ log ε to
        every location its reader cannot see), so genuine moves switch
        the path within an epoch or two, while epoch-level noise and
        flat silence stretches cannot pay the switch penalty.
        """
        cached = self._location_cache.get(container)
        if cached is None:
            q = self.posteriors.get(container)
            if q is None:
                q = self._solo_posterior(container)
            cached = self._viterbi_decode(q)
            self._location_cache[container] = cached
        return cached

    #: log-likelihood cost of one location switch in the Viterbi decode.
    SWITCH_PENALTY = 15.0

    def _viterbi_decode(self, q: np.ndarray) -> np.ndarray:
        logq = np.log(np.maximum(q, 1e-300))
        n_rows, n_loc = logq.shape
        penalty = self.SWITCH_PENALTY
        pointers = np.empty((n_rows, n_loc), dtype=np.int32)
        score = logq[0].copy()
        pointers[0] = np.arange(n_loc)
        for row in range(1, n_rows):
            best_prev = int(np.argmax(score))
            switch_score = score[best_prev] - penalty
            stay = score >= switch_score
            pointers[row] = np.where(stay, np.arange(n_loc), best_prev)
            score = np.where(stay, score, switch_score) + logq[row]
        path = np.empty(n_rows, dtype=np.int64)
        path[-1] = int(np.argmax(score))
        for row in range(n_rows - 1, 0, -1):
            path[row - 1] = pointers[row, path[row]]
        # The virtual away state reports as place -1 ("not on site").
        path[path == self.window.away_index] = -1
        return path

    def _solo_posterior(self, tag: EPC) -> np.ndarray:
        cached = self._solo_cache.get(tag)
        if cached is None:
            cached = self.window.solo_posterior(tag)
            self._solo_cache[tag] = cached
        return cached

    def location_rows(self, tag: EPC) -> np.ndarray:
        """MAP location per window row for any tag.

        Objects inherit their inferred container's location (§3.2: "the
        locations of objects believed to be in the container"); tags
        with no container fall back to their own readings.
        """
        container = self.containment.get(tag)
        if container is not None:
            return self.container_location_rows(container)
        return self.container_location_rows(tag)

    def location_at(self, tag: EPC, epoch: int) -> int:
        """MAP location (place index) of ``tag`` at ``epoch``."""
        return int(self.location_rows(tag)[self.window.row_of(epoch)])

    def container_of(self, tag: EPC) -> EPC | None:
        return self.containment.get(tag)

    def log_likelihood(self) -> float:
        """L(C) of Eq. (3) under the current containment estimate."""
        window = self.window
        n_loc = window.n_states
        total = 0.0
        members: dict[EPC, list[EPC]] = {c: [] for c in self.posteriors}
        for obj, container in self.containment.items():
            if container is not None:
                members.setdefault(container, []).append(obj)
        for container, content in members.items():
            logq = window.group_log_posterior([container, *content])
            peak = logq.max(axis=1)
            total += float(
                (peak + np.log(np.exp(logq - peak[:, None]).sum(axis=1))).sum()
            )
            total -= logq.shape[0] * np.log(n_loc)
        return total


class RFInfer:
    """One run of the RFINFER EM algorithm over a trace window."""

    def __init__(
        self,
        window: TraceWindow,
        config: InferenceConfig | None = None,
        objects: Sequence[EPC] | None = None,
        containers: Sequence[EPC] | None = None,
        initial_containment: Mapping[EPC, EPC | None] | None = None,
        prior_weights: Mapping[EPC, Mapping[EPC, float]] | None = None,
        object_ranges: Mapping[EPC, EpochRanges] | None = None,
    ) -> None:
        self.window = window
        self.config = config or InferenceConfig()
        self.objects = list(objects) if objects is not None else window.tags(TagKind.ITEM)
        self.containers = (
            list(containers) if containers is not None else window.tags(TagKind.CASE)
        )
        self.initial_containment = dict(initial_containment or {})
        self.prior_weights = {
            obj: dict(weights) for obj, weights in (prior_weights or {}).items()
        }
        self.object_ranges = dict(object_ranges or {})

    # -- candidate selection -----------------------------------------------

    def _select_candidates(self) -> dict[EPC, list[EPC]]:
        counts = colocation_counts(self.window, self.objects, self.containers)
        if not self.config.candidate_pruning:
            every = list(self.containers)
            return {obj: list(every) for obj in self.objects}
        extra: dict[EPC, list[EPC]] = {}
        for obj in self.objects:
            musts: list[EPC] = []
            previous = self.initial_containment.get(obj)
            if previous is not None:
                musts.append(previous)
            musts.extend(self.prior_weights.get(obj, ()))
            if musts:
                extra[obj] = musts
        return top_candidates(counts, k=self.config.n_candidates, extra=extra)

    def _initial_assignment(self, candidates: dict[EPC, list[EPC]]) -> dict[EPC, EPC | None]:
        assignment: dict[EPC, EPC | None] = {}
        for obj in self.objects:
            initial = self.initial_containment.get(obj)
            if initial is not None and initial in candidates.get(obj, ()):
                assignment[obj] = initial
            else:
                cands = candidates.get(obj, [])
                assignment[obj] = cands[0] if cands else None
        return assignment

    def _object_mask(self, obj: EPC) -> np.ndarray | None:
        ranges = self.object_ranges.get(obj)
        if ranges is None:
            return None
        return self.window.rows_in_ranges(ranges)

    # -- the EM loop ---------------------------------------------------------

    def run(self) -> RFInferResult:
        window = self.window
        config = self.config
        candidates = self._select_candidates()
        assignment = self._initial_assignment(candidates)
        needed_containers = sorted(
            {c for cands in candidates.values() for c in cands}
            | {c for c in assignment.values() if c is not None}
        )
        masks = {obj: self._object_mask(obj) for obj in self.objects}

        posteriors: dict[EPC, np.ndarray] = {}
        members_of: dict[EPC, frozenset[EPC]] = {}
        weights: dict[EPC, dict[EPC, float]] = {obj: {} for obj in self.objects}
        iterations = 0

        for iterations in range(1, config.max_iterations + 1):
            # E-step: posterior over each needed container's location.
            current_members: dict[EPC, list[EPC]] = {c: [] for c in needed_containers}
            for obj, container in assignment.items():
                if container is not None:
                    current_members.setdefault(container, []).append(obj)
            for container in needed_containers:
                group = frozenset(current_members.get(container, ()))
                if (
                    config.memoize
                    and container in posteriors
                    and members_of.get(container) == group
                ):
                    continue  # memoization: member set unchanged
                posteriors[container] = window.group_posterior(
                    [container, *sorted(group)]
                )
                members_of[container] = group

            # M-step: co-location strengths and argmax assignment.
            new_assignment: dict[EPC, EPC | None] = {}
            for obj in self.objects:
                cands = candidates.get(obj, [])
                if not cands:
                    new_assignment[obj] = assignment.get(obj)
                    continue
                prior = self.prior_weights.get(obj, {})
                # Candidates the previous site never scored are at best
                # as plausible as its worst observed candidate — without
                # this floor an unseen candidate would outrank every
                # migrated (≤ 0, relative) weight for free.
                prior_floor = min(prior.values(), default=0.0)
                mask = masks[obj]
                best_container: EPC | None = None
                best_weight = -np.inf
                for cand in cands:
                    w = window.weight(posteriors[cand], obj, mask)
                    w += prior.get(cand, prior_floor)
                    weights[obj][cand] = w
                    if w > best_weight:
                        best_weight = w
                        best_container = cand
                new_assignment[obj] = best_container

            if new_assignment == assignment:
                break
            assignment = new_assignment

        evidence: dict[EPC, dict[EPC, np.ndarray]] | None = None
        if config.keep_evidence:
            evidence = {}
            for obj in self.objects:
                per_candidate: dict[EPC, np.ndarray] = {}
                mask = masks[obj]
                for cand in candidates.get(obj, []):
                    arr = window.point_evidence(posteriors[cand], obj)
                    if mask is not None:
                        arr = np.where(mask, arr, 0.0)
                    per_candidate[cand] = arr
                evidence[obj] = per_candidate

        final_members: dict[EPC, list[EPC]] = {c: [] for c in needed_containers}
        for obj, container in assignment.items():
            if container is not None:
                final_members.setdefault(container, []).append(obj)

        return RFInferResult(
            window=window,
            containment=assignment,
            weights=weights,
            candidates=candidates,
            posteriors=posteriors,
            iterations=iterations,
            evidence=evidence,
            object_masks={o: m for o, m in masks.items() if m is not None},
            members=final_members,
        )
