"""Hierarchical containment (Appendix A.4).

"Just as objects are grouped into containers, containers may themselves
be stored in larger containers, such as pallets. We can extend our
model and algorithms to arbitrarily nested containment hierarchies,
intuitively by adding latent variables for the pallet locations whose
values are imputed using EM in a similar way as the container
locations."

The engine already treats "object" and "container" as roles, not kinds,
so the extension is a second EM pass one level up: cases play the
object role and pallets the container role. Levels are inferred
bottom-up; the result combines both into item → case → pallet chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer, RFInferResult
from repro.sim.tags import EPC, TagKind

__all__ = ["HierarchyResult", "infer_hierarchy"]


@dataclass
class HierarchyResult:
    """Two-level containment estimates."""

    items_level: RFInferResult
    cases_level: RFInferResult

    def case_of(self, item: EPC) -> EPC | None:
        return self.items_level.containment.get(item)

    def pallet_of(self, case: EPC) -> EPC | None:
        return self.cases_level.containment.get(case)

    def chain_of(self, item: EPC) -> tuple[EPC | None, EPC | None]:
        """(case, pallet) chain for an item."""
        case = self.case_of(item)
        pallet = self.pallet_of(case) if case is not None else None
        return case, pallet


def infer_hierarchy(
    window: TraceWindow,
    config: InferenceConfig | None = None,
) -> HierarchyResult:
    """Infer item → case and case → pallet containment bottom-up.

    Each level is one RFINFER run; the upper level reuses nothing from
    the lower one except the shared window (the levels are conditionally
    independent given the readings, exactly as in A.4's latent-variable
    construction).
    """
    config = config or InferenceConfig()
    items_level = RFInfer(
        window,
        config,
        objects=window.tags(TagKind.ITEM),
        containers=window.tags(TagKind.CASE),
    ).run()
    cases_level = RFInfer(
        window,
        config,
        objects=window.tags(TagKind.CASE),
        containers=window.tags(TagKind.PALLET),
    ).run()
    return HierarchyResult(items_level, cases_level)
