"""The object event stream produced by inference (§2, §3).

Inference translates raw readings ``(time, tag, reader)`` into
high-level events ``(time, tag, location, container)`` — the schema
that tracking and monitoring queries consume. Optional descriptive
attributes (product type, container type) come from the manufacturer's
catalog (:mod:`repro.workloads.catalog`) at query time.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.sim.tags import EPC, TagKind
from repro.sim.trace import GroundTruth

__all__ = ["ObjectEvent", "events_from_truth"]


class ObjectEvent(NamedTuple):
    """One inferred object state: where it is and what contains it."""

    time: int
    tag: EPC
    site: int
    place: int
    container: EPC | None


def events_from_truth(
    truth: GroundTruth,
    horizon: int,
    sites: Iterable[int] | None = None,
    period: int = 1,
    kinds: tuple[TagKind, ...] = (TagKind.ITEM, TagKind.CASE),
) -> list[ObjectEvent]:
    """The event stream a *perfect* inference module would emit.

    Query answers computed on this stream are the ground truth that
    §5.4's F-measures score inferred-stream answers against.
    """
    site_filter = set(sites) if sites is not None else None
    events: list[ObjectEvent] = []
    for tag in truth.tags():
        if tag.kind not in kinds:
            continue
        imap = truth.locations[tag]
        for seg_start, seg_end, loc in imap.segments(0, horizon):
            if loc is None or loc.site < 0:
                continue
            if site_filter is not None and loc.site not in site_filter:
                continue
            first = seg_start + (-seg_start) % period
            for time in range(first, seg_end, period):
                events.append(
                    ObjectEvent(
                        time, tag, loc.site, loc.place, truth.container_at(tag, time)
                    )
                )
    events.sort(key=lambda e: (e.time, e.tag))
    return events
