"""Online change-point detection and bounded-memory streaming (§3.3 bis).

The paper's change-point machinery (:mod:`repro.core.changepoint`) is
*retrospective*: every inference boundary re-scans the evidence window
for every tag, even though most tags don't move most epochs. This
module adds the streaming counterpart — a BOCPD-style **run-length
posterior** per tag, updated in O(1) per boundary from that interval's
raw readings, with no history re-scan:

* each inference boundary reduces the interval's readings to one
  observation per tag — *supportive* (the tag co-reads with its
  believed container within a configurable ratio of its best rival),
  *contrary* (the incumbent count collapses relative to a rival, or
  exactly one of the pair is read at all), or *silent* (neither is
  read);
* a truncated run-length posterior ``P(r_t | x_1..t)`` is maintained
  per tag under a constant hazard: supportive observations pile mass
  onto long runs, a contrary observation collapses it back to zero.

The **stability gate** built on top decides, before each run, which
tags may skip the EM/CR/event hot path entirely: a tag is *prunable*
when its posterior says "no change for at least ``stability_runs``
boundaries, with probability ``posterior_threshold``" — and it is not
cooling off after a flag, not stale (unread too long), and not due for
its seeded periodic refresh. A contrary observation *flags* the tag:
the run-length posterior resets and the tag re-enters full inference
for ``cooloff_runs`` boundaries, so the window that covers the change
is inferred in full.

Everything here is exact-arithmetic deterministic (pure float64
numpy), and the detector state round-trips through a versioned codec
(:func:`encode_online_state`) so checkpointed sites recover
bit-identically — malformed input raises :class:`ValueError`, like
every other wire format in this repository.

:class:`MemoryBudget` is the companion knob for week-long streams: it
bounds *all* per-run state (run records, the event backlog, critical
regions, window epochs, cached base rows) to a sliding epoch horizon —
see :meth:`repro.core.service.StreamingInference.truncate_history`.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import EPC, TagKind, read_epc, read_opt_epc, write_epc, write_opt_epc
from repro.sim.trace import Trace

__all__ = [
    "OnlineConfig",
    "MemoryBudget",
    "IntervalSignals",
    "interval_signals",
    "OnlineChangeDetector",
    "encode_online_state",
    "decode_online_state",
    "ONLINE_STATE_VERSION",
]

#: observation outcomes for one (tag, boundary) interval.
SUPPORT, CONTRA, SILENT = 0, 1, 2


@dataclass(frozen=True)
class OnlineConfig:
    """Tunables of the online detector and its stability gate."""

    #: prior per-boundary probability that a tag's containment changed.
    hazard: float = 0.02
    #: P(supportive interval | containment unchanged).
    support_rate: float = 0.95
    #: P(supportive interval | containment just changed) — agnostic.
    change_rate: float = 0.5
    #: minimum run length (in boundaries) before a tag may be pruned.
    stability_runs: int = 3
    #: required posterior mass on runs >= ``stability_runs``.
    posterior_threshold: float = 0.9
    #: boundaries of forced full inference after a contrary flag.
    cooloff_runs: int = 2
    #: every tag re-enters full inference once per this many boundaries,
    #: on a per-tag phase seeded from ``seed`` (0 disables). The refresh
    #: bounds how stale a pruned tag's exported weights can get.
    refresh_interval: int = 16
    #: a tag's interval is supportive when its co-read count with the
    #: incumbent is at least this fraction of its best rival's count.
    #: Containers sharing a location co-read near-equally (their counts
    #: cannot discriminate them — that is EM's job), so demanding an
    #: outright win would flag stable tags on count noise; a genuine
    #: move to another location collapses the incumbent count toward
    #: zero and still fails the ratio.
    support_ratio: float = 0.5
    #: truncation length of the run-length posterior (memory bound).
    max_run_length: int = 64
    #: consecutive silent boundaries after which a pruned tag re-enters
    #: full inference (it may have left the site).
    stale_limit: int = 2
    #: seeds the per-tag refresh phases.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.hazard < 1.0:
            raise ValueError("hazard must be in (0, 1)")
        if not 0.0 < self.support_rate < 1.0:
            raise ValueError("support_rate must be in (0, 1)")
        if not 0.0 < self.change_rate < 1.0:
            raise ValueError("change_rate must be in (0, 1)")
        if self.stability_runs < 1:
            raise ValueError("stability_runs must be >= 1")
        if not 0.0 < self.posterior_threshold <= 1.0:
            raise ValueError("posterior_threshold must be in (0, 1]")
        if self.cooloff_runs < 1:
            raise ValueError("cooloff_runs must be >= 1")
        if self.refresh_interval < 0:
            raise ValueError("refresh_interval must be >= 0")
        if self.max_run_length < self.stability_runs + 1:
            raise ValueError("max_run_length must exceed stability_runs")
        if not 0.0 < self.support_ratio <= 1.0:
            raise ValueError("support_ratio must be in (0, 1]")
        if self.stale_limit < 1:
            raise ValueError("stale_limit must be >= 1")


@dataclass(frozen=True)
class MemoryBudget:
    """Hard bound on per-run state retained by a streaming service.

    ``horizon`` is the sliding epoch window state may cover: run
    records and events older than ``last_run_time - horizon`` are
    dropped (the archive, fed every boundary, is the spill target),
    critical regions that ended before it are discarded, inference
    windows are clamped to it, and the window cache evicts base rows
    beyond it. ``retained_runs`` optionally caps the run-record count
    regardless of age.
    """

    horizon: int = 2400
    retained_runs: int | None = None

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.retained_runs is not None and self.retained_runs < 1:
            raise ValueError("retained_runs must be >= 1 when set")


# -- interval signals --------------------------------------------------------


class IntervalSignals:
    """One boundary interval's readings, reduced to gate observations.

    Built from the raw trace columns in one vectorized pass (a sorted-
    merge join over packed ``(epoch, reader)`` keys, the same technique
    as :func:`repro.core.candidates.colocation_counts`): per-tag read
    counts plus per-(object, container) co-read counts.
    """

    def __init__(self, trace: Trace, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self._trace = trace
        times, tag_ids, readers = trace.readings_in_columns(start, end)
        n_tags = len(trace.tag_table)
        self._reads = (
            np.bincount(tag_ids, minlength=n_tags)
            if tag_ids.size
            else np.zeros(n_tags, dtype=np.int64)
        )
        #: per object tag id: {container tag id: co-read count}.
        self._pairs: dict[int, dict[int, int]] = {}
        if not tag_ids.size:
            return
        kinds = np.fromiter(
            (int(t.kind) for t in trace.tag_table), dtype=np.int64, count=n_tags
        )
        row_kinds = kinds[tag_ids]
        obj_sel = row_kinds == int(TagKind.ITEM)
        con_sel = row_kinds == int(TagKind.CASE)
        if not obj_sel.any() or not con_sel.any():
            return
        stride = int(readers.max()) + 1
        keys = times * stride + readers
        obj_keys, obj_ids = keys[obj_sel], tag_ids[obj_sel]
        con_keys, con_ids = keys[con_sel], tag_ids[con_sel]
        order = np.argsort(con_keys, kind="stable")
        con_keys, con_ids = con_keys[order], con_ids[order]
        starts = np.searchsorted(con_keys, obj_keys, side="left")
        ends = np.searchsorted(con_keys, obj_keys, side="right")
        lengths = ends - starts
        hit = lengths > 0
        if not hit.any():
            return
        starts, lengths = starts[hit], lengths[hit]
        total = int(lengths.sum())
        offsets = np.cumsum(lengths) - lengths
        flat = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        pair_obj = np.repeat(obj_ids[hit], lengths)
        pair_con = con_ids[flat]
        codes, counts = np.unique(
            pair_obj.astype(np.int64) * n_tags + pair_con, return_counts=True
        )
        for code, count in zip(codes.tolist(), counts.tolist()):
            self._pairs.setdefault(code // n_tags, {})[code % n_tags] = count

    def reads(self, tag: EPC) -> int:
        """Readings of ``tag`` inside the interval."""
        tag_id = self._trace.tag_id(tag)
        return 0 if tag_id is None else int(self._reads[tag_id])

    def classify(self, tag: EPC, incumbent: EPC, support_ratio: float = 0.5) -> int:
        """SUPPORT / CONTRA / SILENT for ``tag`` vs its believed container.

        Co-located containers co-read near-equally, so the incumbent is
        supported whenever its co-read count stays within
        ``support_ratio`` of the best rival's — only a *collapse* of
        the incumbent count (the signature of an actual move) reads as
        contrary.
        """
        if self.reads(tag) == 0 and self.reads(incumbent) == 0:
            return SILENT
        tag_id = self._trace.tag_id(tag)
        inc_id = self._trace.tag_id(incumbent)
        if tag_id is None or inc_id is None:
            return CONTRA
        pairs = self._pairs.get(tag_id, {})
        with_inc = pairs.get(inc_id, 0)
        if with_inc == 0:
            return CONTRA
        best_rival = max(
            (count for con, count in pairs.items() if con != inc_id), default=0
        )
        return SUPPORT if with_inc >= support_ratio * best_rival else CONTRA


def interval_signals(trace: Trace, start: int, end: int) -> IntervalSignals:
    """Reduce the readings of ``[start, end)`` to gate observations."""
    return IntervalSignals(trace, start, end)


# -- the detector ------------------------------------------------------------


@dataclass
class TagState:
    """Per-tag streaming state (a few dozen bytes, never re-scanned)."""

    incumbent: EPC | None
    #: normalized log run-length posterior; index ``r`` = "last change
    #: was ``r`` boundaries ago", last bin absorbs the truncated tail.
    rl: np.ndarray
    cooloff: int = 0
    stale: int = 0

    def __eq__(self, other: object) -> bool:  # array-valued field
        return (
            isinstance(other, TagState)
            and self.incumbent == other.incumbent
            and self.cooloff == other.cooloff
            and self.stale == other.stale
            and np.array_equal(self.rl, other.rl)
        )


def _fresh_rl() -> np.ndarray:
    return np.zeros(1)  # log P(r=0) = 0


def _logsumexp(arr: np.ndarray) -> float:
    peak = float(arr.max())
    return peak + float(np.log(np.exp(arr - peak).sum()))


class OnlineChangeDetector:
    """Truncated run-length posterior per tag, plus the stability gate."""

    def __init__(self, config: OnlineConfig | None = None) -> None:
        self.config = config or OnlineConfig()
        self.states: dict[EPC, TagState] = {}
        #: tags ever flagged by a contrary observation (test oracle for
        #: "unflagged tags are byte-identical to full inference").
        self.flagged: set[EPC] = set()
        #: boundaries observed so far (drives the seeded refresh phase).
        self.boundaries = 0
        c = self.config
        self._log_h = math.log(c.hazard)
        self._log_1mh = math.log1p(-c.hazard)
        self._ll = {SUPPORT: math.log(c.support_rate), CONTRA: math.log1p(-c.support_rate)}
        self._nl = {SUPPORT: math.log(c.change_rate), CONTRA: math.log1p(-c.change_rate)}

    # -- the O(1)-per-boundary update ----------------------------------

    def observe(self, signals: IntervalSignals) -> None:
        """Fold one boundary interval's observations into every track."""
        self.boundaries += 1
        for tag, state in self.states.items():
            if state.incumbent is None:
                continue
            obs = signals.classify(tag, state.incumbent, self.config.support_ratio)
            state.stale = state.stale + 1 if obs == SILENT else 0
            self._update(state, obs)
            if obs == CONTRA:
                self._flag(tag, state)

    def _update(self, state: TagState, obs: int) -> None:
        rl = state.rl
        changed = _logsumexp(rl) + self._log_h
        cont = rl + self._log_1mh
        if obs != SILENT:
            # Silence is uninformative (likelihood 1 under both
            # hypotheses): the posterior only diffuses by the hazard.
            changed += self._nl[obs]
            cont = cont + self._ll[obs]
        max_bins = self.config.max_run_length + 1
        if rl.size < max_bins:
            grown = np.empty(rl.size + 1)
            grown[0] = changed
            grown[1:] = cont
        else:
            grown = np.empty(max_bins)
            grown[0] = changed
            grown[1:-1] = cont[:-2]
            grown[-1] = np.logaddexp(cont[-2], cont[-1])
        state.rl = grown - _logsumexp(grown)

    def _flag(self, tag: EPC, state: TagState) -> None:
        state.cooloff = self.config.cooloff_runs
        state.rl = _fresh_rl()
        self.flagged.add(tag)

    # -- the stability gate ---------------------------------------------

    def run_length_mass(self, tag: EPC, runs: int) -> float:
        """Posterior P(run length >= ``runs``) for ``tag`` (0 if unknown)."""
        state = self.states.get(tag)
        if state is None or state.rl.size <= runs:
            return 0.0
        return float(math.exp(_logsumexp(state.rl[runs:])))

    def refresh_due(self, tag: EPC) -> bool:
        """Seeded periodic re-verification: is it ``tag``'s turn?"""
        interval = self.config.refresh_interval
        if interval <= 0:
            return False
        key = f"{self.config.seed}|{int(tag.kind)}|{tag.serial}".encode()
        return self.boundaries % interval == zlib.crc32(key) % interval

    def prunable(self, tag: EPC, incumbent: EPC | None) -> bool:
        """May ``tag`` skip full inference at the upcoming boundary?"""
        state = self.states.get(tag)
        if (
            state is None
            or incumbent is None
            or state.incumbent != incumbent
            or state.cooloff > 0
            or state.stale >= self.config.stale_limit
            or self.refresh_due(tag)
        ):
            return False
        mass = self.run_length_mass(tag, self.config.stability_runs)
        return mass >= self.config.posterior_threshold

    # -- post-run synchronization ----------------------------------------

    def confirm(self, tag: EPC, container: EPC | None) -> None:
        """Record a full inference run's verdict for ``tag``.

        A confirmed incumbent keeps its run-length track (the track
        already absorbed this interval's observation); a changed or
        dropped incumbent resets it.
        """
        state = self.states.get(tag)
        if state is None:
            self.states[tag] = TagState(incumbent=container, rl=_fresh_rl())
            return
        if state.cooloff > 0:
            state.cooloff -= 1
        if state.incumbent != container:
            state.incumbent = container
            state.rl = _fresh_rl()
        state.stale = 0

    def evict_stale(self) -> int:
        """Drop tracks of long-silent tags (bounded-memory support).

        A track at or past ``stale_limit`` is already unprunable, so
        eviction never changes the next gate decision — the tag simply
        re-earns its run length after it reappears.
        """
        doomed = [
            tag
            for tag, state in self.states.items()
            if state.stale >= self.config.stale_limit
        ]
        for tag in doomed:
            del self.states[tag]
        return len(doomed)


# -- checkpoint codec --------------------------------------------------------

ONLINE_STATE_VERSION = 1


def encode_online_state(detector: OnlineChangeDetector) -> bytes:
    """Serialize the detector's mutable state (config travels separately
    — it is part of the site's :class:`~repro.core.service.ServiceConfig`)."""
    writer = ByteWriter()
    writer.varint(ONLINE_STATE_VERSION)
    writer.varint(detector.boundaries)
    writer.varint(len(detector.flagged))
    for tag in sorted(detector.flagged):
        write_epc(writer, tag)
    writer.varint(len(detector.states))
    for tag in sorted(detector.states):
        state = detector.states[tag]
        write_epc(writer, tag)
        write_opt_epc(writer, state.incumbent)
        writer.varint(state.cooloff)
        writer.varint(state.stale)
        writer.varint(state.rl.size)
        for value in state.rl.tolist():
            writer.float64(value)
    return writer.getvalue()


def decode_online_state(data: bytes) -> tuple[int, set[EPC], dict[EPC, TagState]]:
    """Inverse of :func:`encode_online_state`.

    Returns ``(boundaries, flagged, states)``; malformed input raises
    :class:`ValueError`.
    """
    try:
        reader = ByteReader(data)
        version = reader.varint()
        if version != ONLINE_STATE_VERSION:
            raise ValueError(f"unsupported online-detector state version {version}")
        boundaries = reader.varint()
        flagged = {read_epc(reader) for _ in range(reader.varint())}
        states: dict[EPC, TagState] = {}
        for _ in range(reader.varint()):
            tag = read_epc(reader)
            incumbent = read_opt_epc(reader)
            cooloff = reader.varint()
            stale = reader.varint()
            size = reader.varint()
            if size < 1:
                raise ValueError("run-length posterior must have >= 1 bin")
            rl = np.array([reader.float64() for _ in range(size)])
            states[tag] = TagState(
                incumbent=incumbent, rl=rl, cooloff=cooloff, stale=stale
            )
        if not reader.exhausted():
            raise ValueError("trailing bytes after online-detector state")
        return boundaries, flagged, states
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed online-detector state: {exc}") from exc


def restore_online_state(detector: OnlineChangeDetector, data: bytes) -> None:
    """Load :func:`encode_online_state` output into ``detector``."""
    detector.boundaries, detector.flagged, detector.states = decode_online_state(data)
