"""The paper's primary contribution: RFINFER and its companions.

* :mod:`repro.core.likelihood` — log-likelihood plumbing over a window
  of epochs (Eq. 1–4 of the paper, vectorized).
* :mod:`repro.core.candidates` — co-location counting and candidate
  pruning (Appendix A.3).
* :mod:`repro.core.rfinfer` — the RFINFER EM algorithm (§3.2,
  Algorithm 1) in optimized form.
* :mod:`repro.core.reference` — a line-by-line naive implementation of
  Algorithm 1, used to validate the optimized engine.
* :mod:`repro.core.evidence` — point/cumulative evidence of co-location
  (Eq. 7, Fig. 4).
* :mod:`repro.core.changepoint` — GLR change-point detection with
  offline threshold calibration (§3.3, Appendix A.2).
* :mod:`repro.core.online` — streaming (BOCPD-style) change detection,
  the stability gate that lets stable tags skip the EM hot path, and
  the memory budget for bounded long streams.
* :mod:`repro.core.truncation` — critical-region history truncation
  (§4.1).
* :mod:`repro.core.collapsed` — collapsed inference state for state
  migration (§4.1).
* :mod:`repro.core.service` — the streaming inference service that runs
  RFINFER periodically and emits the object event stream (Fig. 3).
"""

from repro.core.changepoint import ChangePointDetector, calibrate_threshold
from repro.core.collapsed import CollapsedState
from repro.core.events import ObjectEvent
from repro.core.likelihood import TraceWindow, WindowCache
from repro.core.online import MemoryBudget, OnlineChangeDetector, OnlineConfig
from repro.core.rfinfer import InferenceConfig, RFInfer, RFInferResult
from repro.core.service import ServiceConfig, StreamingInference
from repro.core.truncation import (
    CriticalRegion,
    find_critical_region,
    find_critical_regions,
)

__all__ = [
    "ChangePointDetector",
    "CollapsedState",
    "CriticalRegion",
    "InferenceConfig",
    "MemoryBudget",
    "ObjectEvent",
    "OnlineChangeDetector",
    "OnlineConfig",
    "RFInfer",
    "RFInferResult",
    "ServiceConfig",
    "StreamingInference",
    "TraceWindow",
    "WindowCache",
    "calibrate_threshold",
    "find_critical_region",
    "find_critical_regions",
]
