"""History truncation via critical regions (§4.1).

"Our history truncation algorithm aims to find a time period, called
the critical region, whose observations are most informative for
determining containment." The search slides a small window over time;
a window where the best candidate's point evidence exceeds the
second-best's by a threshold margin is a critical region, and the most
recent such window wins. Readings outside the critical region and the
recent history H̄ are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rfinfer import RFInferResult
from repro.sim.tags import EPC

__all__ = ["CriticalRegion", "find_critical_region", "find_all_critical_regions"]


@dataclass(frozen=True)
class CriticalRegion:
    """An epoch range [start, end) retained for future inference."""

    start: int
    end: int

    def as_range(self) -> tuple[int, int]:
        return (self.start, self.end)

    def __contains__(self, epoch: int) -> bool:
        return self.start <= epoch < self.end


def find_critical_region(
    result: RFInferResult,
    tag: EPC,
    width: int = 60,
    stride: int | None = None,
    margin_threshold: float = 10.0,
) -> CriticalRegion | None:
    """Find the most recent critical region for ``tag``.

    Slides a window of ``width`` epochs (step ``stride``, default half
    the width) across the inference window; within each, sums the point
    evidence per candidate container and compares the best against the
    second best. The *last* window whose margin exceeds
    ``margin_threshold`` is returned (later evidence supersedes earlier
    per the paper's overwrite rule). Returns None when the object has
    fewer than two candidates or no window discriminates.
    """
    if result.evidence is None:
        raise ValueError("inference ran with keep_evidence=False")
    tracks = result.evidence.get(tag)
    if tracks is None or len(tracks) < 2:
        return None
    if stride is None:
        stride = max(width // 2, 1)

    epochs = result.window.epochs
    matrix = np.stack(list(tracks.values()))  # (n_candidates, n_rows)
    cum = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), np.cumsum(matrix, axis=1)], axis=1
    )
    first, last = int(epochs[0]), int(epochs[-1])
    best_region: CriticalRegion | None = None
    for start in range(first, last + 1, stride):
        end = start + width
        lo = int(np.searchsorted(epochs, start))
        hi = int(np.searchsorted(epochs, end))
        if hi <= lo:
            continue
        sums = cum[:, hi] - cum[:, lo]
        top_two = np.partition(sums, -2)[-2:]
        margin = float(top_two[1] - top_two[0])
        if margin > margin_threshold:
            best_region = CriticalRegion(start, min(end, last + 1))
    return best_region


def find_all_critical_regions(
    result: RFInferResult,
    width: int = 60,
    stride: int | None = None,
    margin_threshold: float = 10.0,
) -> dict[EPC, CriticalRegion]:
    """Critical regions for every object that has one."""
    regions: dict[EPC, CriticalRegion] = {}
    if result.evidence is None:
        raise ValueError("inference ran with keep_evidence=False")
    for tag in result.evidence:
        region = find_critical_region(result, tag, width, stride, margin_threshold)
        if region is not None:
            regions[tag] = region
    return regions
