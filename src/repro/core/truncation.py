"""History truncation via critical regions (§4.1).

"Our history truncation algorithm aims to find a time period, called
the critical region, whose observations are most informative for
determining containment." The search slides a small window over time;
a window where the best candidate's point evidence exceeds the
second-best's by a threshold margin is a critical region, and the most
recent such window wins. Readings outside the critical region and the
recent history H̄ are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.rfinfer import RFInferResult
from repro.sim.tags import EPC

__all__ = [
    "CriticalRegion",
    "find_critical_region",
    "find_critical_regions",
    "find_all_critical_regions",
]


@dataclass(frozen=True)
class CriticalRegion:
    """An epoch range [start, end) retained for future inference."""

    start: int
    end: int

    def as_range(self) -> tuple[int, int]:
        return (self.start, self.end)

    def __contains__(self, epoch: int) -> bool:
        return self.start <= epoch < self.end


def find_critical_region(
    result: RFInferResult,
    tag: EPC,
    width: int = 60,
    stride: int | None = None,
    margin_threshold: float = 10.0,
) -> CriticalRegion | None:
    """Find the most recent critical region for ``tag``.

    Slides a window of ``width`` epochs (step ``stride``, default half
    the width) across the inference window; within each, sums the point
    evidence per candidate container and compares the best against the
    second best. The *last* window whose margin exceeds
    ``margin_threshold`` is returned (later evidence supersedes earlier
    per the paper's overwrite rule). Returns None when the object has
    fewer than two candidates or no window discriminates.
    """
    if result.evidence is None:
        raise ValueError("inference ran with keep_evidence=False")
    tracks = result.evidence.get(tag)
    if tracks is None or len(tracks) < 2:
        return None
    if stride is None:
        stride = max(width // 2, 1)

    epochs = result.window.epochs
    matrix = np.stack(list(tracks.values()))  # (n_candidates, n_rows)
    cum = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), np.cumsum(matrix, axis=1)], axis=1
    )
    first, last = int(epochs[0]), int(epochs[-1])
    # All window positions at once: per start, the candidates' evidence
    # sums are prefix differences, and the best-vs-second margin falls
    # out of one partition along the candidate axis.
    starts = np.arange(first, last + 1, stride, dtype=np.int64)
    lo = np.searchsorted(epochs, starts)
    hi = np.searchsorted(epochs, starts + width)
    occupied = hi > lo
    if not occupied.any():
        return None
    starts, lo, hi = starts[occupied], lo[occupied], hi[occupied]
    sums = cum[:, hi] - cum[:, lo]  # (n_candidates, n_windows)
    top_two = np.partition(sums, sums.shape[0] - 2, axis=0)[-2:]
    margins = top_two[1] - top_two[0]
    winners = np.flatnonzero(margins > margin_threshold)
    if winners.size == 0:
        return None
    # The *last* qualifying window wins (later evidence supersedes
    # earlier per the paper's overwrite rule).
    start = int(starts[winners[-1]])
    return CriticalRegion(start, min(start + width, last + 1))


def find_critical_regions(
    result: RFInferResult,
    tags: "Sequence[EPC] | None" = None,
    width: int = 60,
    stride: int | None = None,
    margin_threshold: float = 10.0,
) -> dict[EPC, CriticalRegion]:
    """Critical regions for many objects in one batched pass.

    Stacks every eligible object's evidence tracks into a single
    matrix, so the cumulative sums and window-position lookups are
    computed once per run instead of once per object. Row-for-row the
    arithmetic matches :func:`find_critical_region`, which remains the
    single-object form (and the reference the equivalence tests pin
    this batch against).
    """
    if result.evidence is None:
        raise ValueError("inference ran with keep_evidence=False")
    if tags is None:
        tags = list(result.evidence)
    eligible: list[EPC] = []
    bounds: list[int] = [0]
    rows: list[np.ndarray] = []
    for tag in tags:
        tracks = result.evidence.get(tag)
        if tracks is None or len(tracks) < 2:
            continue
        eligible.append(tag)
        rows.extend(tracks.values())
        bounds.append(len(rows))
    regions: dict[EPC, CriticalRegion] = {}
    if not eligible:
        return regions
    if stride is None:
        stride = max(width // 2, 1)

    epochs = result.window.epochs
    matrix = np.vstack(rows)
    cum = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), np.cumsum(matrix, axis=1)], axis=1
    )
    first, last = int(epochs[0]), int(epochs[-1])
    starts = np.arange(first, last + 1, stride, dtype=np.int64)
    lo = np.searchsorted(epochs, starts)
    hi = np.searchsorted(epochs, starts + width)
    occupied = hi > lo
    if not occupied.any():
        return regions
    starts, lo, hi = starts[occupied], lo[occupied], hi[occupied]
    sums = cum[:, hi] - cum[:, lo]  # (total tracks, n_windows)
    for idx, tag in enumerate(eligible):
        seg = sums[bounds[idx] : bounds[idx + 1]]
        top_two = np.partition(seg, seg.shape[0] - 2, axis=0)[-2:]
        margins = top_two[1] - top_two[0]
        winners = np.flatnonzero(margins > margin_threshold)
        if winners.size:
            start = int(starts[winners[-1]])
            regions[tag] = CriticalRegion(start, min(start + width, last + 1))
    return regions


def find_all_critical_regions(
    result: RFInferResult,
    width: int = 60,
    stride: int | None = None,
    margin_threshold: float = 10.0,
) -> dict[EPC, CriticalRegion]:
    """Critical regions for every object that has one."""
    return find_critical_regions(
        result, None, width=width, stride=stride, margin_threshold=margin_threshold
    )
