"""Vectorized log-likelihood plumbing for the graphical model (§3.1).

Everything RFINFER computes reduces to two primitives over a *window*
(a sorted array of epochs):

* the **base matrix** ``B[t, a]`` — the log-probability that a tag at
  location ``a`` produces *no reading* during epoch ``t`` (sum of
  ``log(1 − π(r, a))`` over readers active at ``t``);
* the **delta rows** ``δ[r, a] = log π(r, a) − log(1 − π(r, a))`` — the
  log-likelihood adjustment when reader ``r`` *did* fire.

The log-likelihood of a tag's readings during epoch ``t``, as a vector
over its true location, is then ``B[t] + Σ_{r fired} δ[r]`` (Eq. 1).
Group quantities (Eq. 4) are sums of these per-tag vectors, so the
E-step is a handful of numpy scatter-adds instead of the naive
O(T·C·O·R²) loop of Algorithm 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Trace

__all__ = ["TraceWindow", "row_softmax"]


def row_softmax(log_weights: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a (T, R) log-weight matrix."""
    peak = log_weights.max(axis=1, keepdims=True)
    out = np.exp(log_weights - peak)
    out /= out.sum(axis=1, keepdims=True)
    return out


class TraceWindow:
    """A trace restricted to a set of epochs, indexed for inference.

    Parameters
    ----------
    trace:
        The raw reading stream of one site.
    epochs:
        The epochs (need not be contiguous — critical regions plus a
        recent history window, for instance). Stored sorted and unique.
    tags:
        Restrict to these tags (default: every tag in the trace).
    """

    def __init__(
        self,
        trace: Trace,
        epochs: Iterable[int],
        tags: Sequence[EPC] | None = None,
    ) -> None:
        self.trace = trace
        self.model = trace.model
        self.layout = trace.layout
        self.epochs = np.unique(np.fromiter(epochs, dtype=np.int64))
        if self.epochs.size == 0:
            raise ValueError("a TraceWindow needs at least one epoch")
        self.n_rows = int(self.epochs.size)
        self.n_locations = self.layout.n_locations
        self.n_states = self.model.n_states
        self.away_index = self.model.away_index
        self.base = self.model.base_matrix(self.epochs)
        self._delta = self.model.delta
        if tags is None:
            tags = trace.tags()
        self.readings: dict[EPC, tuple[np.ndarray, np.ndarray]] = {}
        lo = int(self.epochs[0])
        hi = int(self.epochs[-1]) + 1
        for tag in tags:
            rows_readers = trace.tag_readings_in(tag, lo, hi)
            if not rows_readers:
                continue
            times = np.fromiter((t for t, _ in rows_readers), dtype=np.int64)
            readers = np.fromiter((r for _, r in rows_readers), dtype=np.int64)
            rows = np.searchsorted(self.epochs, times)
            inside = (rows < self.n_rows) & (self.epochs[np.minimum(rows, self.n_rows - 1)] == times)
            if not inside.all():
                rows, readers = rows[inside], readers[inside]
            if rows.size:
                self.readings[tag] = (rows, readers)

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_range(
        cls, trace: Trace, start: int, end: int, tags: Sequence[EPC] | None = None
    ) -> "TraceWindow":
        """Window over the contiguous epoch range ``[start, end)``."""
        return cls(trace, range(max(start, 0), end), tags)

    # -- tag-level helpers -----------------------------------------------

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """Tags with at least one reading inside the window."""
        if kind is None:
            return sorted(self.readings)
        return sorted(t for t in self.readings if t.kind is kind)

    def tag_rows(self, tag: EPC) -> tuple[np.ndarray, np.ndarray]:
        """(window-row indices, reader indices) of ``tag``'s readings."""
        empty = np.empty(0, dtype=np.int64)
        return self.readings.get(tag, (empty, empty))

    def reading_count(self, tag: EPC) -> int:
        rows, _ = self.tag_rows(tag)
        return int(rows.size)

    def row_of(self, epoch: int) -> int:
        """Window row holding ``epoch`` (raises if absent)."""
        row = int(np.searchsorted(self.epochs, epoch))
        if row >= self.n_rows or self.epochs[row] != epoch:
            raise KeyError(f"epoch {epoch} not in window")
        return row

    def rows_in_ranges(self, ranges: Sequence[tuple[int, int]]) -> np.ndarray:
        """Boolean row mask covering the union of [start, end) ranges."""
        mask = np.zeros(self.n_rows, dtype=bool)
        for start, end in ranges:
            lo = int(np.searchsorted(self.epochs, start))
            hi = int(np.searchsorted(self.epochs, end))
            mask[lo:hi] = True
        return mask

    # -- likelihood primitives (Eq. 1 and 4) ------------------------------

    def scatter(self, tags: Iterable[EPC], out: np.ndarray) -> np.ndarray:
        """Add Σ_tag Σ_{(t,r) readings} δ[r] into ``out`` (a (T, R) matrix)."""
        for tag in tags:
            rows, readers = self.tag_rows(tag)
            if rows.size:
                np.add.at(out, rows, self._delta[readers])
        return out

    def group_log_posterior(self, tags: Sequence[EPC]) -> np.ndarray:
        """Unnormalized log q over locations for a co-located group.

        ``tags`` is the container plus its believed contents; each tag
        contributes one base matrix plus its reading deltas (Eq. 4).
        """
        logq = self.base * len(tags)
        return self.scatter(tags, logq)

    def group_posterior(self, tags: Sequence[EPC]) -> np.ndarray:
        """Normalized posterior q_tc over locations, rows = epochs."""
        return row_softmax(self.group_log_posterior(tags))

    def qbase(self, q: np.ndarray) -> np.ndarray:
        """Per-epoch expected base log-likelihood Σ_a q(a)·B[t, a]."""
        return np.einsum("tr,tr->t", q, self.base)

    def point_evidence(self, q: np.ndarray, tag: EPC) -> np.ndarray:
        """Per-epoch point evidence e_co(t) of ``tag`` under posterior q.

        Eq. (7): e_co(t) = Σ_a q_tc(a) Σ_r log p(y_tro | ℓ = a). The
        no-reading part is ``qbase``; each actual reading adds
        ``q[t] · δ[r]``.
        """
        evidence = self.qbase(q)
        rows, readers = self.tag_rows(tag)
        if rows.size:
            contrib = np.einsum("ij,ij->i", q[rows], self._delta[readers])
            np.add.at(evidence, rows, contrib)
        return evidence

    def weight(self, q: np.ndarray, tag: EPC, row_mask: np.ndarray | None = None) -> float:
        """Co-location strength w_co = Σ_t e_co(t) (Eq. 5) without
        materializing the per-epoch evidence array."""
        if row_mask is None:
            total = float(self.qbase(q).sum())
            rows, readers = self.tag_rows(tag)
            if rows.size:
                total += float(np.einsum("ij,ij->", q[rows], self._delta[readers]))
            return total
        evidence = self.point_evidence(q, tag)
        return float(evidence[row_mask].sum())

    def away_evidence(self, tag: EPC) -> np.ndarray:
        """Per-epoch log-likelihood of ``tag``'s readings if it were at
        an *unmonitored* location (removed from the site, §3.3's "been
        removed altogether" hypothesis).

        Away from every reader, each interrogation misses with
        probability ``1 − ε``: silence costs almost nothing and every
        actual reading costs ``log ε``. This gives change-point
        detection a principled track for removals, which no
        candidate-container hypothesis can explain.
        """
        eps = float(self.model.epsilon)
        log_miss = np.log1p(-eps)
        delta = np.log(eps) - log_miss
        period = self.layout.pattern_period
        counts = {
            key: len(self.layout.active_readers(key))
            for key in np.unique(self.epochs % period).tolist()
        }
        n_active = np.fromiter(
            (counts[int(k % period)] for k in self.epochs), dtype=float
        )
        evidence = n_active * log_miss
        rows, _ = self.tag_rows(tag)
        if rows.size:
            np.add.at(evidence, rows, delta)
        return evidence

    def solo_posterior(self, tag: EPC) -> np.ndarray:
        """Posterior over locations from the tag's own readings alone.

        Used for tags that belong to no inferred group (pallets, orphan
        objects) — equivalent to a container with zero contents.
        """
        return self.group_posterior([tag])
