"""Vectorized log-likelihood plumbing for the graphical model (§3.1).

Everything RFINFER computes reduces to two primitives over a *window*
(a sorted array of epochs):

* the **base matrix** ``B[t, a]`` — the log-probability that a tag at
  location ``a`` produces *no reading* during epoch ``t`` (sum of
  ``log(1 − π(r, a))`` over readers active at ``t``);
* the **delta rows** ``δ[r, a] = log π(r, a) − log(1 − π(r, a))`` — the
  log-likelihood adjustment when reader ``r`` *did* fire.

The log-likelihood of a tag's readings during epoch ``t``, as a vector
over its true location, is then ``B[t] + Σ_{r fired} δ[r]`` (Eq. 1).
Group quantities (Eq. 4) are sums of these per-tag vectors, so the
E-step is a handful of numpy scatter-adds instead of the naive
O(T·C·O·R²) loop of Algorithm 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sim.tags import EPC, TagKind
from repro.sim.trace import Trace

__all__ = ["TraceWindow", "WindowCache", "row_softmax"]


def row_softmax(log_weights: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a (T, R) log-weight matrix."""
    peak = log_weights.max(axis=1, keepdims=True)
    out = np.exp(log_weights - peak)
    out /= out.sum(axis=1, keepdims=True)
    return out


class TraceWindow:
    """A trace restricted to a set of epochs, indexed for inference.

    Parameters
    ----------
    trace:
        The raw reading stream of one site.
    epochs:
        The epochs (need not be contiguous — critical regions plus a
        recent history window, for instance). Stored sorted and unique.
    tags:
        Restrict to these tags (default: every tag in the trace).
    """

    def __init__(
        self,
        trace: Trace,
        epochs: Iterable[int],
        tags: Sequence[EPC] | None = None,
        reuse: "TraceWindow | None" = None,
    ) -> None:
        self.trace = trace
        self.model = trace.model
        self.layout = trace.layout
        if isinstance(epochs, np.ndarray):
            self.epochs = np.unique(epochs.astype(np.int64, copy=False))
        else:
            self.epochs = np.unique(np.fromiter(epochs, dtype=np.int64))
        if self.epochs.size == 0:
            raise ValueError("a TraceWindow needs at least one epoch")
        self.n_rows = int(self.epochs.size)
        self.n_locations = self.layout.n_locations
        self.n_states = self.model.n_states
        self.away_index = self.model.away_index
        self._delta = self.model.delta
        #: base-matrix rows copied from a previous window (cache telemetry).
        self.base_rows_reused = 0
        self.base = self._build_base(reuse)
        self.readings: dict[EPC, tuple[np.ndarray, np.ndarray]] = (
            self._build_readings(tags)
        )
        self._away_base: np.ndarray | None = None

    def _build_base(self, reuse: "TraceWindow | None") -> np.ndarray:
        """The (T, R) base matrix, recycling rows from ``reuse``.

        Base rows are a pure function of the epoch (pattern-table
        lookups), so rows copied from a previous window are bitwise
        identical to freshly computed ones — a cold cache can never
        change results, which is what lets crash-recovered sites (whose
        cache is empty) stay bit-identical to uncrashed ones.
        """
        if reuse is None or reuse.trace is not self.trace:
            return self.model.base_matrix(self.epochs)
        pos = np.searchsorted(reuse.epochs, self.epochs)
        pos_clip = np.minimum(pos, reuse.n_rows - 1)
        shared = reuse.epochs[pos_clip] == self.epochs
        self.base_rows_reused = int(shared.sum())
        if self.base_rows_reused == self.n_rows:
            if reuse.n_rows == self.n_rows:
                return reuse.base  # identical epoch set: share the matrix
            return reuse.base[pos_clip]  # strict subset: gather its rows
        base = np.empty((self.n_rows, self.model.n_states))
        base[shared] = reuse.base[pos_clip[shared]]
        novel = ~shared
        if novel.any():
            base[novel] = self.model.base_matrix(self.epochs[novel])
        return base

    def _build_readings(
        self, tags: Sequence[EPC] | None
    ) -> dict[EPC, tuple[np.ndarray, np.ndarray]]:
        """Per-tag (window rows, reader indices), built in one pass.

        One ``searchsorted`` over the trace's tag-major time column maps
        every candidate reading to its window row; per-tag slices then
        fall out of the trace's tag offsets without Python-level
        iteration over readings.
        """
        trace = self.trace
        t_times = trace.tag_times
        out: dict[EPC, tuple[np.ndarray, np.ndarray]] = {}
        if t_times.size == 0:
            return out
        lo_t = int(self.epochs[0])
        hi_t = int(self.epochs[-1]) + 1
        # Restrict to the window's time range first, so the pass is
        # O(readings inside the window), not O(trace length).
        seg_lo, seg_hi = trace.tag_range_bounds(lo_t, hi_t)
        lengths = seg_hi - seg_lo
        total = int(lengths.sum())
        if total == 0:
            return out
        nonzero = lengths > 0
        offsets = np.cumsum(lengths) - lengths
        sel = np.repeat(seg_lo[nonzero] - offsets[nonzero], lengths[nonzero])
        sel += np.arange(total, dtype=np.int64)
        times_sel = t_times[sel]
        rows_all = np.searchsorted(self.epochs, times_sel)
        if self.n_rows == hi_t - lo_t:
            # Contiguous window: every in-range reading hits a row.
            valid_idx = np.arange(total, dtype=np.int64)
        else:
            rows_clip = np.minimum(rows_all, self.n_rows - 1)
            valid_idx = np.flatnonzero(self.epochs[rows_clip] == times_sel)
        if valid_idx.size == 0:
            return out
        sel_bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths)]
        )
        bounds = np.searchsorted(valid_idx, sel_bounds)
        readers_sel = trace.tag_readers[sel]
        table = trace.tag_table
        wanted = None if tags is None else set(tags)
        for tag_id, tag in enumerate(table):
            if wanted is not None and tag not in wanted:
                continue
            a, b = bounds[tag_id], bounds[tag_id + 1]
            if a == b:
                continue
            pick = valid_idx[a:b]
            out[tag] = (rows_all[pick], readers_sel[pick])
        return out

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_range(
        cls, trace: Trace, start: int, end: int, tags: Sequence[EPC] | None = None
    ) -> "TraceWindow":
        """Window over the contiguous epoch range ``[start, end)``."""
        return cls(trace, np.arange(max(start, 0), end, dtype=np.int64), tags)

    # -- tag-level helpers -----------------------------------------------

    def tags(self, kind: TagKind | None = None) -> list[EPC]:
        """Tags with at least one reading inside the window."""
        if kind is None:
            return sorted(self.readings)
        return sorted(t for t in self.readings if t.kind is kind)

    def tag_rows(self, tag: EPC) -> tuple[np.ndarray, np.ndarray]:
        """(window-row indices, reader indices) of ``tag``'s readings."""
        empty = np.empty(0, dtype=np.int64)
        return self.readings.get(tag, (empty, empty))

    def reading_count(self, tag: EPC) -> int:
        rows, _ = self.tag_rows(tag)
        return int(rows.size)

    def row_of(self, epoch: int) -> int:
        """Window row holding ``epoch`` (raises if absent)."""
        row = int(np.searchsorted(self.epochs, epoch))
        if row >= self.n_rows or self.epochs[row] != epoch:
            raise KeyError(f"epoch {epoch} not in window")
        return row

    def rows_in_ranges(self, ranges: Sequence[tuple[int, int]]) -> np.ndarray:
        """Boolean row mask covering the union of [start, end) ranges."""
        mask = np.zeros(self.n_rows, dtype=bool)
        for start, end in ranges:
            lo = int(np.searchsorted(self.epochs, start))
            hi = int(np.searchsorted(self.epochs, end))
            mask[lo:hi] = True
        return mask

    # -- likelihood primitives (Eq. 1 and 4) ------------------------------

    def scatter(self, tags: Iterable[EPC], out: np.ndarray) -> np.ndarray:
        """Add Σ_tag Σ_{(t,r) readings} δ[r] into ``out`` (a (T, R) matrix)."""
        for tag in tags:
            rows, readers = self.tag_rows(tag)
            if rows.size:
                np.add.at(out, rows, self._delta[readers])
        return out

    def group_log_posterior(self, tags: Sequence[EPC]) -> np.ndarray:
        """Unnormalized log q over locations for a co-located group.

        ``tags`` is the container plus its believed contents; each tag
        contributes one base matrix plus its reading deltas (Eq. 4).
        """
        logq = self.base * len(tags)
        return self.scatter(tags, logq)

    def group_posterior(self, tags: Sequence[EPC]) -> np.ndarray:
        """Normalized posterior q_tc over locations, rows = epochs."""
        return row_softmax(self.group_log_posterior(tags))

    def group_posterior_logz(
        self, tags: Sequence[EPC]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior q_tc plus the per-row log-normalizer.

        The normalizer ``logZ[t] = log Σ_a exp(logq[t, a])`` is the
        group's contribution to the data log-likelihood L(C) (Eq. 3);
        computing it alongside the softmax lets
        :meth:`RFInferResult.log_likelihood` reuse the E-step's work
        instead of re-deriving every group posterior from scratch.
        """
        logq = self.group_log_posterior(tags)
        peak = logq.max(axis=1, keepdims=True)
        out = np.exp(logq - peak)
        norm = out.sum(axis=1, keepdims=True)
        out /= norm
        logz = peak[:, 0] + np.log(norm[:, 0])
        return out, logz

    def qbase(self, q: np.ndarray) -> np.ndarray:
        """Per-epoch expected base log-likelihood Σ_a q(a)·B[t, a]."""
        return np.einsum("tr,tr->t", q, self.base)

    def point_evidence(self, q: np.ndarray, tag: EPC) -> np.ndarray:
        """Per-epoch point evidence e_co(t) of ``tag`` under posterior q.

        Eq. (7): e_co(t) = Σ_a q_tc(a) Σ_r log p(y_tro | ℓ = a). The
        no-reading part is ``qbase``; each actual reading adds
        ``q[t] · δ[r]``.
        """
        evidence = self.qbase(q)
        rows, readers = self.tag_rows(tag)
        if rows.size:
            contrib = np.einsum("ij,ij->i", q[rows], self._delta[readers])
            np.add.at(evidence, rows, contrib)
        return evidence

    def weight(self, q: np.ndarray, tag: EPC, row_mask: np.ndarray | None = None) -> float:
        """Co-location strength w_co = Σ_t e_co(t) (Eq. 5) without
        materializing the per-epoch evidence array."""
        if row_mask is None:
            total = float(self.qbase(q).sum())
            rows, readers = self.tag_rows(tag)
            if rows.size:
                total += float(np.einsum("ij,ij->", q[rows], self._delta[readers]))
            return total
        evidence = self.point_evidence(q, tag)
        return float(evidence[row_mask].sum())

    def away_evidence(self, tag: EPC) -> np.ndarray:
        """Per-epoch log-likelihood of ``tag``'s readings if it were at
        an *unmonitored* location (removed from the site, §3.3's "been
        removed altogether" hypothesis).

        Away from every reader, each interrogation misses with
        probability ``1 − ε``: silence costs almost nothing and every
        actual reading costs ``log ε``. This gives change-point
        detection a principled track for removals, which no
        candidate-container hypothesis can explain.
        """
        eps = float(self.model.epsilon)
        log_miss = np.log1p(-eps)
        delta = np.log(eps) - log_miss
        if self._away_base is None:
            period = self.layout.pattern_period
            n_active = self.model.away_counts_table()[self.epochs % period]
            self._away_base = n_active * log_miss
        evidence = self._away_base.copy()
        rows, _ = self.tag_rows(tag)
        if rows.size:
            np.add.at(evidence, rows, delta)
        return evidence

    def solo_posterior(self, tag: EPC) -> np.ndarray:
        """Posterior over locations from the tag's own readings alone.

        Used for tags that belong to no inferred group (pallets, orphan
        objects) — equivalent to a container with zero contents.
        """
        return self.group_posterior([tag])


class _CachedBase:
    """Reusable slice of a window's base matrix (the eviction survivor).

    Duck-types the four attributes :meth:`TraceWindow._build_base`
    reads from its ``reuse`` argument; the sliced ``base`` is copied so
    the evicted rows' memory is actually released (a numpy view would
    pin the full parent matrix).
    """

    __slots__ = ("trace", "epochs", "n_rows", "base")

    def __init__(self, trace: Trace, epochs: np.ndarray, base: np.ndarray) -> None:
        self.trace = trace
        self.epochs = epochs.copy()
        self.n_rows = int(epochs.size)
        self.base = base.copy()


class WindowCache:
    """Incremental window builder for a periodic inference service.

    Successive runs under the ``"cr"``/``"all"`` truncation policies
    share most of their epochs (the recent history slides by one run
    interval; critical regions persist verbatim), so rebuilding every
    :class:`TraceWindow` from scratch redoes mostly identical work. The
    cache hands each new window the previous one, letting it copy base
    rows for every epoch it has already seen and compute only the novel
    rows.

    Everything reused is a pure function of ``(trace, epoch)``, so a
    cache hit is bitwise identical to a cold build — a site restored
    from a checkpoint (cold cache) produces exactly the results of one
    that never crashed. For the same reason ``max_age`` eviction can
    only lower the hit rate, never change a result: rows older than
    ``newest epoch − max_age`` are dropped from the retained copy, so
    the cache's footprint stays bounded on unboundedly long streams
    (under the ``"all"`` policy the previous window otherwise grows
    with the stream).
    """

    def __init__(self, trace: Trace, max_age: int | None = None) -> None:
        if max_age is not None and max_age < 1:
            raise ValueError("max_age must be >= 1 when set")
        self.trace = trace
        self.max_age = max_age
        self._previous: TraceWindow | _CachedBase | None = None
        #: cumulative base rows served from cache (telemetry for benches).
        self.rows_reused = 0
        self.rows_built = 0
        #: cumulative rows dropped by ``max_age`` eviction.
        self.rows_evicted = 0

    def window(
        self, epochs: Iterable[int], tags: Sequence[EPC] | None = None
    ) -> TraceWindow:
        """Build (incrementally) the window over ``epochs``."""
        built = TraceWindow(self.trace, epochs, tags, reuse=self._previous)
        self.rows_reused += built.base_rows_reused
        self.rows_built += built.n_rows - built.base_rows_reused
        self._previous = self._evict(built)
        return built

    def _evict(self, built: TraceWindow) -> "TraceWindow | _CachedBase":
        if self.max_age is None:
            return built
        cutoff = int(built.epochs[-1]) + 1 - self.max_age
        if int(built.epochs[0]) >= cutoff:
            return built
        lo = int(np.searchsorted(built.epochs, cutoff))
        self.rows_evicted += lo
        return _CachedBase(self.trace, built.epochs[lo:], built.base[lo:])

    def cached_rows(self) -> int:
        """Base rows the cache currently retains for reuse."""
        return 0 if self._previous is None else self._previous.n_rows

    def clear(self) -> None:
        self._previous = None
