"""Point and cumulative evidence of co-location (§4.1, Eq. 7, Fig. 4).

The M-step weight ``w_co`` is a sum over epochs of the *point evidence*
``e_co(t)``; its running sum is the *cumulative evidence* ``E_co(t)``.
Figure 4 of the paper plots both for three candidate containers (the
real one R, a false container NRC co-located at the door and shelf, and
a false container NRNC co-located only at the door) — the drop of the
false containers' evidence during the belt scan is the "critical region"
that history truncation hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rfinfer import RFInferResult
from repro.sim.tags import EPC

__all__ = ["EvidenceTracks", "evidence_tracks"]


@dataclass
class EvidenceTracks:
    """Evidence curves of one object against its candidate containers."""

    tag: EPC
    epochs: np.ndarray
    point: dict[EPC, np.ndarray]

    def cumulative(self) -> dict[EPC, np.ndarray]:
        """E_co(t) = Σ_{t' ≤ t} e_co(t') per candidate."""
        return {cand: np.cumsum(arr) for cand, arr in self.point.items()}

    def totals(self) -> dict[EPC, float]:
        """Final cumulative evidence (equals the M-step weight w_co)."""
        return {cand: float(arr.sum()) for cand, arr in self.point.items()}

    def best(self) -> EPC:
        """Candidate with the highest total evidence."""
        totals = self.totals()
        return max(totals, key=totals.__getitem__)

    def margin_in(self, start: int, end: int) -> float:
        """Best-vs-second-best evidence margin within epochs [start, end).

        This is the quantity the critical-region search thresholds.
        """
        lo = int(np.searchsorted(self.epochs, start))
        hi = int(np.searchsorted(self.epochs, end))
        sums = sorted(
            (float(arr[lo:hi].sum()) for arr in self.point.values()), reverse=True
        )
        if len(sums) < 2:
            return float("inf") if sums else 0.0
        return sums[0] - sums[1]


def evidence_tracks(result: RFInferResult, tag: EPC) -> EvidenceTracks:
    """Extract the evidence curves of ``tag`` from an RFINFER result.

    Requires the run to have been made with ``keep_evidence=True``.
    """
    if result.evidence is None:
        raise ValueError("inference ran with keep_evidence=False")
    per_candidate = result.evidence.get(tag)
    if per_candidate is None:
        raise KeyError(f"no evidence recorded for {tag}")
    return EvidenceTracks(tag, result.window.epochs, dict(per_candidate))
