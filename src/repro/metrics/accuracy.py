"""Containment and location error rates (Appendix C.1).

"To measure accuracy, we compare the inference results with the ground
truth and compute the error rate."

Containment error — the fraction of items whose inferred container
differs from the true container (evaluated at a reference epoch).

Location error — the fraction of (tag, epoch) pairs, among epochs where
the tag was truly present at the site, whose MAP location estimate
differs from the true place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.rfinfer import RFInferResult
from repro.core.service import StreamingInference
from repro.sim.tags import EPC
from repro.sim.trace import GroundTruth

__all__ = [
    "containment_error_rate",
    "location_error_rate",
    "service_containment_error",
    "service_location_error",
]


def containment_error_rate(
    truth: GroundTruth,
    containment: Mapping[EPC, EPC | None],
    at_time: int,
    objects: Sequence[EPC] | None = None,
) -> float:
    """Fraction of objects whose estimated container is wrong at ``at_time``."""
    if objects is None:
        objects = truth.items()
    if not objects:
        return 0.0
    wrong = sum(
        1 for obj in objects if containment.get(obj) != truth.container_at(obj, at_time)
    )
    return wrong / len(objects)


def location_error_rate(
    truth: GroundTruth,
    result: RFInferResult,
    site: int,
    tags: Iterable[EPC] | None = None,
    epoch_range: tuple[int, int] | None = None,
) -> float:
    """Location error over one RFINFER result's window.

    Counts (tag, epoch) pairs where the tag was truly at ``site``; the
    estimate errs when the MAP place differs from the true place.
    """
    window = result.window
    epochs = window.epochs
    if epoch_range is not None:
        mask = (epochs >= epoch_range[0]) & (epochs < epoch_range[1])
    else:
        mask = np.ones(epochs.size, dtype=bool)
    if tags is None:
        tags = sorted(set(truth.items()) | set(truth.cases()))
    total = 0
    wrong = 0
    for tag in tags:
        imap = truth.locations.get(tag)
        if imap is None:
            continue
        estimates = None
        for seg_start, seg_end, loc in imap.segments(int(epochs[0]), int(epochs[-1]) + 1):
            if loc is None or loc.site != site:
                continue
            seg_mask = mask & (epochs >= seg_start) & (epochs < seg_end)
            count = int(seg_mask.sum())
            if count == 0:
                continue
            if estimates is None:
                estimates = result.location_rows(tag)
            total += count
            wrong += int((estimates[seg_mask] != loc.place).sum())
    return wrong / total if total else 0.0


def service_containment_error(
    truth: GroundTruth,
    service: StreamingInference,
    objects: Sequence[EPC] | None = None,
    runs: Sequence[int] | None = None,
) -> float:
    """Average containment error across a service's runs.

    Each run's estimate snapshot is scored against the truth at that
    run's stream time; the result is the mean over runs (the paper
    reports steady-state error of the periodically refreshed estimate).
    """
    records = service.runs if runs is None else [service.runs[i] for i in runs]
    scored = [
        containment_error_rate(truth, record.containment, record.time - 1, objects)
        for record in records
        if record.window_rows > 0
    ]
    return float(np.mean(scored)) if scored else 0.0


def service_location_error(
    truth: GroundTruth,
    service: StreamingInference,
    tags: Iterable[EPC] | None = None,
) -> float:
    """Location error over every epoch interval each run covered.

    Run r is responsible for the stream interval (T_{r-1}, T_r]; pairs
    are pooled across runs so the rate weights epochs uniformly.
    """
    total = 0
    wrong = 0
    previous = 0
    site = service.site
    tag_list = (
        sorted(set(truth.items()) | set(truth.cases())) if tags is None else list(tags)
    )
    for record in service.runs:
        result = record.result
        if result is None or record.window_rows == 0:
            previous = record.time
            continue
        epochs = result.window.epochs
        mask = (epochs >= previous) & (epochs < record.time)
        for tag in tag_list:
            imap = truth.locations.get(tag)
            if imap is None:
                continue
            estimates = None
            for seg_start, seg_end, loc in imap.segments(previous, record.time):
                if loc is None or loc.site != site:
                    continue
                seg_mask = mask & (epochs >= seg_start) & (epochs < seg_end)
                count = int(seg_mask.sum())
                if count == 0:
                    continue
                if estimates is None:
                    estimates = result.location_rows(tag)
                total += count
                wrong += int((estimates[seg_mask] != loc.place).sum())
        previous = record.time
    return wrong / total if total else 0.0
