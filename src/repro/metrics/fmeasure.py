"""Precision / recall / F-measure scoring (Appendix C.1).

"We use precision to capture the percentage of reported changes that
are consistent with the ground truth, and recall to capture the
percentage of changes in the ground truth that are reported by our
algorithm."

The same matcher scores query alerts (§5.4): predicted and true alerts
match when they concern the same object within a time tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.core.changepoint import ChangePoint
from repro.sim.trace import ContainmentChange

__all__ = ["FMeasure", "match_alerts", "change_detection_fmeasure"]


@dataclass(frozen=True)
class FMeasure:
    """Precision/recall summary."""

    precision: float
    recall: float
    true_positives: int
    predicted: int
    actual: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @classmethod
    def from_counts(cls, true_positives: int, predicted: int, actual: int) -> "FMeasure":
        precision = true_positives / predicted if predicted else 0.0
        recall = true_positives / actual if actual else 0.0
        return cls(precision, recall, true_positives, predicted, actual)


def match_alerts(
    predicted: Sequence[tuple[Hashable, int]],
    actual: Sequence[tuple[Hashable, int]],
    tolerance: int,
) -> FMeasure:
    """Greedy one-to-one matching of (key, time) alerts.

    A predicted alert matches an unmatched actual alert with the same
    key whose time differs by at most ``tolerance``; each actual alert
    is consumed at most once (closest-time first).
    """
    remaining: dict[Hashable, list[int]] = {}
    for key, time in actual:
        remaining.setdefault(key, []).append(time)
    for times in remaining.values():
        times.sort()
    hits = 0
    for key, time in sorted(predicted, key=lambda p: p[1]):
        times = remaining.get(key)
        if not times:
            continue
        best = min(range(len(times)), key=lambda i: abs(times[i] - time))
        if abs(times[best] - time) <= tolerance:
            times.pop(best)
            hits += 1
    return FMeasure.from_counts(hits, len(predicted), len(actual))


def change_detection_fmeasure(
    true_changes: Sequence[ContainmentChange],
    detected: Sequence[ChangePoint],
    tolerance: int = 300,
    require_container: bool = False,
    container_check: Callable[[ChangePoint, ContainmentChange], bool] | None = None,
) -> FMeasure:
    """Score detected change points against injected ground truth.

    With ``require_container``, a match additionally requires the
    detector's new-container estimate to agree with the ground truth
    (removals must be flagged as removals).
    """
    if require_container and container_check is None:
        container_check = lambda cp, tc: cp.new_container == tc.new_container

    remaining = list(true_changes)
    hits = 0
    for change in sorted(detected, key=lambda c: c.time):
        best_idx = -1
        best_gap = tolerance + 1
        for idx, candidate in enumerate(remaining):
            if candidate.tag != change.tag:
                continue
            gap = abs(candidate.time - change.time)
            if gap > tolerance or gap >= best_gap:
                continue
            if require_container and not container_check(change, candidate):
                continue
            best_idx = idx
            best_gap = gap
        if best_idx >= 0:
            remaining.pop(best_idx)
            hits += 1
    return FMeasure.from_counts(hits, len(detected), len(true_changes))
