"""Evaluation metrics (Appendix C.1).

* error rates for containment and location inference,
* precision/recall/F-measure for change detection and query answers,
* communication- and state-size cost accounting helpers.
"""

from repro.metrics.accuracy import (
    containment_error_rate,
    location_error_rate,
    service_containment_error,
    service_location_error,
)
from repro.metrics.fmeasure import (
    FMeasure,
    change_detection_fmeasure,
    match_alerts,
)

__all__ = [
    "FMeasure",
    "change_detection_fmeasure",
    "containment_error_rate",
    "location_error_rate",
    "match_alerts",
    "service_containment_error",
    "service_location_error",
]
