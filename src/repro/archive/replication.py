"""Incremental segment replication for :class:`~repro.archive.store.SiteArchive`.

Read replicas scale the historical query path horizontally: a replica
holds a byte-identical copy of a primary's archive and answers
``history-request`` envelopes in its place. Because sealed segments are
immutable and only ever *appended* (``seal``), a replica can catch up
incrementally — it sends a :class:`ReplicationCursor` describing how
much of the primary it already holds, and the primary answers with a
**delta**: the sealed segments past the cursor plus the full (small)
mutable tail — pending rows, open intervals, new intern-table entries,
and alert cursors. Applying a delta leaves the replica's archive
bit-identical to the primary at the moment the delta was cut::

    encode_archive(replica) == encode_archive(primary)

``compact`` rewrites the sealed layout, so cursors carry the archive's
``generation``; a generation mismatch (compaction, or a primary that
restarted from a checkpoint) makes the primary fall back to a **full
resync** delta that rebuilds the replica from scratch. Either way the
replica converges in one round trip.

Deltas ride the same envelope plane as queries (see
:data:`~repro.runtime.envelope.REPLICA_FETCH` /
:data:`~repro.runtime.envelope.REPLICA_SEGMENTS`) and reuse the archive
codec's raw little-endian column blocks. Malformed input raises
:class:`ValueError`, never a bare decoder error.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.archive.codec import _read_f64, _read_i64, _write_f64, _write_i64
from repro.archive.store import SiteArchive, _AlertLog, _EventLog, _IntervalLog
from repro.sim.tags import read_epc, write_epc

__all__ = [
    "REPLICATION_VERSION",
    "ReplicationCursor",
    "ZERO_CURSOR",
    "cursor_of",
    "encode_replica_fetch",
    "decode_replica_fetch",
    "encode_archive_delta",
    "apply_archive_delta",
]

REPLICATION_VERSION = 1

#: attribute names of the five logs, in wire order.
_LOGS = ("location", "containment", "belief", "events", "alerts")


class ReplicationCursor(NamedTuple):
    """How much of a primary archive a replica already holds.

    ``segments`` counts sealed segments per log (wire order: location,
    containment, belief, events, alerts); ``tags``/``keys`` are intern
    table lengths. The cursor is only meaningful within one
    ``generation`` — compaction invalidates it.
    """

    generation: int
    segments: tuple[int, int, int, int, int]
    tags: int
    keys: int
    last_boundary: int


ZERO_CURSOR = ReplicationCursor(0, (0, 0, 0, 0, 0), 0, 0, 0)


def cursor_of(archive: SiteArchive) -> ReplicationCursor:
    """The cursor describing everything sealed in ``archive``."""
    return ReplicationCursor(
        archive.generation,
        tuple(len(getattr(archive, name).segments) for name in _LOGS),
        len(archive.tag_table),
        len(archive.key_table),
        archive.last_boundary,
    )


def _write_cursor(writer: ByteWriter, cursor: ReplicationCursor) -> None:
    writer.varint(cursor.generation)
    for count in cursor.segments:
        writer.varint(count)
    writer.varint(cursor.tags).varint(cursor.keys).varint(cursor.last_boundary)


def _read_cursor(reader: ByteReader) -> ReplicationCursor:
    generation = reader.varint()
    segments = tuple(reader.varint() for _ in range(len(_LOGS)))
    return ReplicationCursor(
        generation, segments, reader.varint(), reader.varint(), reader.varint()
    )


# -- fetch requests ---------------------------------------------------------


def encode_replica_fetch(fetch_id: int, cursor: ReplicationCursor) -> bytes:
    """A replica's catch-up request: its id for this round + its cursor."""
    writer = ByteWriter()
    writer.varint(REPLICATION_VERSION).varint(fetch_id)
    _write_cursor(writer, cursor)
    return writer.getvalue()


def decode_replica_fetch(data: bytes) -> tuple[int, ReplicationCursor]:
    """Inverse of :func:`encode_replica_fetch`; ValueError on malformed input."""
    try:
        reader = ByteReader(data)
        version = reader.varint()
        if version != REPLICATION_VERSION:
            raise ValueError(f"unsupported replication version {version}")
        fetch_id = reader.varint()
        return fetch_id, _read_cursor(reader)
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed replica fetch: {exc}") from exc


# -- per-log delta pieces ---------------------------------------------------
#
# Sealed segments past the cursor are shipped verbatim (same column
# layout as the checkpoint codec); the mutable tail — pending rows and
# open intervals — is small and shipped whole every delta.


def _write_interval_delta(writer: ByteWriter, log: _IntervalLog, base: int) -> None:
    new = log.segments[base:]
    writer.varint(len(new))
    for segment in new:
        writer.varint(len(segment[0]))
        for column in segment[:5]:
            _write_i64(writer, column)
        _write_f64(writer, segment[5])
    writer.varint(len(log.pending))
    for tag, rank, start, end, value, posterior in log.pending:
        writer.varint(tag).varint(rank).varint(start).varint(end).svarint(value)
        writer.float64(posterior)
    writer.varint(len(log.open))
    for tag in sorted(log.open):
        start, rows = log.open[tag]
        writer.varint(tag).varint(start).varint(len(rows))
        for value, posterior in rows:
            writer.svarint(value).float64(posterior)


def _apply_interval_delta(reader: ByteReader, log: _IntervalLog) -> None:
    for _ in range(reader.varint()):
        count = reader.varint()
        ints = tuple(_read_i64(reader, count) for _ in range(5))
        log.segments.append(ints + (_read_f64(reader, count),))
    log.pending = [
        (
            reader.varint(),
            reader.varint(),
            reader.varint(),
            reader.varint(),
            reader.svarint(),
            reader.float64(),
        )
        for _ in range(reader.varint())
    ]
    log.open = {}
    for _ in range(reader.varint()):
        tag = reader.varint()
        start = reader.varint()
        rows = tuple(
            (reader.svarint(), reader.float64()) for _ in range(reader.varint())
        )
        log.open[tag] = (start, rows)


def _write_event_delta(writer: ByteWriter, log: _EventLog, base: int) -> None:
    new = log.segments[base:]
    writer.varint(len(new))
    for segment in new:
        writer.varint(len(segment[0]))
        for column in segment:
            _write_i64(writer, column)
    writer.varint(len(log.pending))
    for time, tag, place, container in log.pending:
        writer.varint(time).varint(tag).svarint(place).svarint(container)


def _apply_event_delta(
    reader: ByteReader, log: _EventLog, last_event: dict[int, int]
) -> None:
    for _ in range(reader.varint()):
        count = reader.varint()
        segment = tuple(_read_i64(reader, count) for _ in range(4))
        log.segments.append(segment)
        times, tags = segment[0], segment[1]
        for i in range(count):
            time, tag = int(times[i]), int(tags[i])
            if time > last_event.get(tag, -1):
                last_event[tag] = time
    log.pending = []
    for _ in range(reader.varint()):
        row = (reader.varint(), reader.varint(), reader.svarint(), reader.svarint())
        log.pending.append(row)
        if row[0] > last_event.get(row[1], -1):
            last_event[row[1]] = row[0]


def _write_alert_delta(writer: ByteWriter, log: _AlertLog, base: int) -> None:
    new = log.segments[base:]
    writer.varint(len(new))
    for names, keys, starts, ends, offsets, flat in new:
        writer.varint(len(names))
        for column in (names, keys, starts, ends):
            _write_i64(writer, column)
        _write_i64(writer, offsets)  # len(names) + 1 entries
        writer.varint(len(flat))
        _write_f64(writer, flat)
    writer.varint(len(log.pending))
    for name, key, start, end, values in log.pending:
        writer.varint(name).varint(key).varint(start).varint(end)
        writer.varint(len(values))
        for value in values:
            writer.float64(value)


def _apply_alert_delta(reader: ByteReader, log: _AlertLog) -> None:
    for _ in range(reader.varint()):
        count = reader.varint()
        ints = tuple(_read_i64(reader, count) for _ in range(4))
        offsets = _read_i64(reader, count + 1)
        flat = _read_f64(reader, reader.varint())
        if len(offsets) and (offsets[-1] != len(flat) or offsets[0] != 0):
            raise ValueError("alert segment offsets do not cover the value block")
        log.segments.append(ints + (offsets, flat))
    log.pending = []
    for _ in range(reader.varint()):
        name = reader.varint()
        key = reader.varint()
        start = reader.varint()
        end = reader.varint()
        values = tuple(reader.float64() for _ in range(reader.varint()))
        log.pending.append((name, key, start, end, values))


# -- the delta --------------------------------------------------------------


def encode_archive_delta(
    archive: SiteArchive, cursor: ReplicationCursor, fetch_id: int = 0
) -> bytes:
    """Everything a replica at ``cursor`` is missing from ``archive``.

    If the cursor's generation does not match (compaction or primary
    restart) — or claims more sealed state than the archive holds — the
    delta is cut against :data:`ZERO_CURSOR` instead and flagged as a
    full resync.
    """
    base = cursor
    counts = tuple(len(getattr(archive, name).segments) for name in _LOGS)
    stale = (
        base.generation != archive.generation
        or any(have < claimed for have, claimed in zip(counts, base.segments))
        or base.tags > len(archive.tag_table)
        or base.keys > len(archive.key_table)
        or base.last_boundary > archive.last_boundary
    )
    if stale:
        base = ZERO_CURSOR
    writer = ByteWriter()
    writer.varint(REPLICATION_VERSION).varint(fetch_id)
    writer.svarint(archive.site)
    writer.varint(archive.seal_every).varint(archive.top_k)
    writer.varint(archive.generation)
    writer.varint(1 if stale else 0)
    _write_cursor(writer, base)
    writer.varint(archive.last_boundary)
    writer.varint(len(archive.tag_table) - base.tags)
    for tag in archive.tag_table[base.tags :]:
        write_epc(writer, tag)
    writer.varint(len(archive.key_table) - base.keys)
    for key in archive.key_table[base.keys :]:
        writer.text(key)
    _write_interval_delta(writer, archive.location, base.segments[0])
    _write_interval_delta(writer, archive.containment, base.segments[1])
    _write_interval_delta(writer, archive.belief, base.segments[2])
    _write_event_delta(writer, archive.events, base.segments[3])
    _write_alert_delta(writer, archive.alerts, base.segments[4])
    writer.varint(len(archive.alert_cursors))
    for name in sorted(archive.alert_cursors):
        writer.text(name)
        writer.varint(archive.alert_cursors[name])
    return writer.getvalue()


def apply_archive_delta(
    archive: SiteArchive | None, data: bytes
) -> tuple[SiteArchive, int, bool]:
    """Apply a delta; returns ``(archive, fetch_id, full_resync)``.

    Incremental deltas mutate ``archive`` in place and require its
    :func:`cursor_of` to equal the delta's base (the cursor the replica
    sent) — anything else raises :class:`ValueError`. Full-resync
    deltas return a **new** archive built from scratch; callers must
    swap it in (and rebuild anything holding the old object).
    """
    try:
        return _apply(archive, ByteReader(data))
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed archive delta: {exc}") from exc


def _apply(
    archive: SiteArchive | None, reader: ByteReader
) -> tuple[SiteArchive, int, bool]:
    version = reader.varint()
    if version != REPLICATION_VERSION:
        raise ValueError(f"unsupported replication version {version}")
    fetch_id = reader.varint()
    site = reader.svarint()
    seal_every = reader.varint()
    top_k = reader.varint()
    generation = reader.varint()
    full = bool(reader.varint())
    base = _read_cursor(reader)
    if full or (archive is None and base == ZERO_CURSOR):
        target = SiteArchive(site, seal_every=seal_every, top_k=top_k)
        full = True
    else:
        target = archive
        if target is None:
            raise ValueError("incremental delta but replica holds no archive")
        if target.site != site:
            raise ValueError(
                f"delta for site {site} applied to replica of site {target.site}"
            )
        if cursor_of(target) != base:
            raise ValueError("delta base does not match replica state")
        if base == ZERO_CURSOR:
            # Bootstrapping into a still-empty replica archive: nothing
            # is sealed yet, so adopt the primary's sealing parameters —
            # otherwise the copy's encoded header can never match a
            # primary built with non-default ones.
            target.seal_every = seal_every
            target.top_k = top_k
    target.last_boundary = reader.varint()
    before = len(target.tag_table)
    for _ in range(reader.varint()):
        target.intern_tag(read_epc(reader))
        before += 1
        if len(target.tag_table) != before:
            raise ValueError("duplicate tag in archive delta")
    before = len(target.key_table)
    for _ in range(reader.varint()):
        target.intern_key(reader.text())
        before += 1
        if len(target.key_table) != before:
            raise ValueError("duplicate key in archive delta")
    _apply_interval_delta(reader, target.location)
    _apply_interval_delta(reader, target.containment)
    _apply_interval_delta(reader, target.belief)
    _apply_event_delta(reader, target.events, target.last_event)
    _apply_alert_delta(reader, target.alerts)
    cursors: dict[str, int] = {}
    for _ in range(reader.varint()):
        name = reader.text()
        cursors[name] = reader.varint()
    target.alert_cursors = cursors
    target.generation = generation
    return target, fetch_id, full
