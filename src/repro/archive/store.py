"""Per-site append-only historical archive (the time-travel store).

The streaming service answers "where is tag X *now*"; this module keeps
what it said at every epoch boundary so the serving layer can answer
"where *was* tag X at time t", containment provenance, dwell totals,
and alert audits long after the stream has moved on.

A :class:`SiteArchive` is fed once per inference boundary from the
site's :class:`~repro.core.service.StreamingInference` output and holds
four columnar logs:

* **location intervals** — each tag's decoded place as ``[start, end)``
  intervals, built from the emitted :class:`~repro.core.events.ObjectEvent`
  stream (adjacent same-place events collapse into one interval);
* **containment intervals** — the per-boundary containment snapshot as
  intervals, each carrying the posterior probability the EM assigned to
  the container when it was adopted;
* **belief intervals** — the top-k posterior candidates per tag (rank,
  candidate, probability), resealed whenever the posterior changes;
* **events** and **query alerts** — the raw emitted rows, for scans.

Rows accumulate in a small Python *pending* list; :meth:`~SiteArchive.seal`
freezes pending rows into an immutable numpy **segment** (automatic
once ``seal_every`` rows gather), and :meth:`~SiteArchive.compact`
merges adjacent same-value intervals across segments. Readers take
:meth:`~SiteArchive.snapshot_reader` — sealed segments are shared
(immutable), pending/open state is copied — so a reader's answers are
unaffected by appends that happen after the snapshot.

Everything here is deterministic: ingest iterates service state in
sorted-tag order and posteriors are computed with a fixed summation
order, so two runs with bit-identical inference state produce
bit-identical archives — the property the chaos harness leans on for
crash recovery (the archive rides inside site checkpoints, see
:mod:`repro.archive.codec`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.sim.tags import EPC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.service import StreamingInference

__all__ = ["SiteArchive", "NO_CONTAINER", "TOP_K"]


def _fresh_segments(segments):
    """An empty container of the same kind as ``segments``.

    Plain in-memory logs use a ``list``; tiered logs use
    :class:`~repro.archive.tiers.TieredSegments`, which must survive
    compaction (``compact`` rebuilds the sealed-segment container).
    """
    fresh = getattr(segments, "fresh", None)
    return fresh() if fresh is not None else []


def _sealed_row_total(segments) -> int:
    """Sealed-row count without materializing disk-resident segments."""
    counts = getattr(segments, "row_counts", None)
    if counts is not None:
        return sum(counts())
    return sum(len(seg[0]) for seg in segments)

#: value sentinel for "contained by nothing" in containment columns.
NO_CONTAINER = -1

#: how many posterior candidates the belief log keeps per tag.
TOP_K = 3

#: interval-log row: (tag_id, rank, start, end, value, posterior).
_ROW_INTS = 5


def _posteriors(weights: dict[EPC, float]) -> list[tuple[EPC, float]]:
    """Normalize log-domain candidate weights to probabilities.

    Candidates are processed in sorted-EPC order so the float summation
    order (and therefore every bit of the result) is deterministic.
    """
    items = sorted(weights.items())
    peak = max(weight for _, weight in items)
    exps = [(cand, math.exp(weight - peak)) for cand, weight in items]
    total = 0.0
    for _, mass in exps:
        total += mass
    return [(cand, mass / total) for cand, mass in exps]


class _IntervalLog:
    """Append-only ``(tag, rank, start, end, value, posterior)`` intervals.

    Per tag there is at most one *open* state — a tuple of
    ``(value, posterior)`` rows by rank, in force since ``start``. When
    :meth:`observe` sees a different state, rows for the old one are
    sealed with ``end`` = the new boundary. ``value_only=True``
    compares values and ignores posterior drift (containment intervals
    keep the posterior at adoption time instead of resealing every
    boundary).
    """

    def __init__(self, seal_every: int) -> None:
        self.seal_every = seal_every
        #: immutable sealed segments: parallel arrays
        #: (tags, ranks, starts, ends, values) int64 + posteriors float64.
        self.segments: list[tuple[np.ndarray, ...]] = []
        #: rows sealed but not yet frozen into a segment.
        self.pending: list[tuple[int, int, int, int, int, float]] = []
        #: per-tag open state: tag_id -> (start, ((value, posterior), ...)).
        self.open: dict[int, tuple[int, tuple[tuple[int, float], ...]]] = {}

    # -- writing ----------------------------------------------------------

    def observe(
        self,
        tag: int,
        time: int,
        state: tuple[tuple[int, float], ...],
        value_only: bool = False,
    ) -> None:
        current = self.open.get(tag)
        if current is not None:
            if value_only:
                same = tuple(v for v, _ in current[1]) == tuple(v for v, _ in state)
            else:
                same = current[1] == state
            if same:
                return
            start, rows = current
            for rank, (value, posterior) in enumerate(rows):
                self.pending.append((tag, rank, start, time, value, posterior))
            self._maybe_seal()
        if state:
            self.open[tag] = (time, state)
        elif current is not None:
            del self.open[tag]

    def _maybe_seal(self) -> None:
        if len(self.pending) >= self.seal_every:
            self.seal()

    def seal(self) -> None:
        """Freeze pending rows into one immutable columnar segment."""
        if not self.pending:
            return
        rows = self.pending
        self.pending = []
        cols = tuple(
            np.fromiter((row[i] for row in rows), dtype=np.int64, count=len(rows))
            for i in range(_ROW_INTS)
        )
        posts = np.fromiter((row[5] for row in rows), dtype=np.float64, count=len(rows))
        self.segments.append(cols + (posts,))

    def compact(self) -> int:
        """Merge adjacent same-value intervals; returns rows removed.

        Rows across all sealed segments are re-sorted by
        ``(tag, rank, start)`` and neighbours with identical
        ``(tag, rank, value, posterior)`` whose intervals touch are
        fused. The result replaces every sealed segment; pending and
        open state are untouched. Query answers are unchanged.
        """
        self.seal()
        rows = sorted(self._sealed_rows(), key=lambda r: (r[0], r[1], r[2]))
        merged: list[tuple[int, int, int, int, int, float]] = []
        for row in rows:
            if merged:
                last = merged[-1]
                if (
                    last[0] == row[0]
                    and last[1] == row[1]
                    and last[4] == row[4]
                    and last[5] == row[5]
                    and last[3] == row[2]
                ):
                    merged[-1] = (last[0], last[1], last[2], row[3], last[4], last[5])
                    continue
            merged.append(row)
        removed = len(rows) - len(merged)
        self.segments = _fresh_segments(self.segments)
        self.pending = merged
        self.seal()
        return removed

    # -- reading ----------------------------------------------------------

    def _sealed_rows(self) -> Iterator[tuple[int, int, int, int, int, float]]:
        for tags, ranks, starts, ends, values, posts in self.segments:
            for i in range(len(tags)):
                yield (
                    int(tags[i]),
                    int(ranks[i]),
                    int(starts[i]),
                    int(ends[i]),
                    int(values[i]),
                    float(posts[i]),
                )

    def _rows_for(self, tag: int) -> Iterator[tuple[int, int, int, int, float]]:
        """Sealed + pending ``(rank, start, end, value, posterior)`` rows."""
        for tags, ranks, starts, ends, values, posts in self.segments:
            for i in np.nonzero(tags == tag)[0].tolist():
                yield (
                    int(ranks[i]),
                    int(starts[i]),
                    int(ends[i]),
                    int(values[i]),
                    float(posts[i]),
                )
        for row in self.pending:
            if row[0] == tag:
                yield row[1:]

    def covering(self, tag: int, time: int) -> list[tuple[int, int, int, float]]:
        """Rows in force at ``time``: ``(rank, start, value, posterior)``.

        Sealed rows cover ``start <= time < end``; the open state covers
        ``time >= start``. Sorted by rank.
        """
        hits = [
            (rank, start, value, posterior)
            for rank, start, end, value, posterior in self._rows_for(tag)
            if start <= time < end
        ]
        current = self.open.get(tag)
        if current is not None and current[0] <= time:
            start, rows = current
            hits.extend(
                (rank, start, value, posterior)
                for rank, (value, posterior) in enumerate(rows)
            )
        hits.sort(key=lambda r: r[0])
        return hits

    def in_range(
        self, tag: int, lo: int, hi: int, rank: int = 0
    ) -> list[tuple[int, int, int, float]]:
        """Rank-``rank`` intervals overlapping ``[lo, hi)``, by start.

        Rows are ``(start, end, value, posterior)`` with ``end == -1``
        for the still-open interval.
        """
        out = [
            (start, end, value, posterior)
            for row_rank, start, end, value, posterior in self._rows_for(tag)
            if row_rank == rank and start < hi and end > lo
        ]
        current = self.open.get(tag)
        if current is not None and current[0] < hi and rank < len(current[1]):
            start, rows = current
            value, posterior = rows[rank]
            out.append((start, -1, value, posterior))
        out.sort(key=lambda r: r[0])
        return out

    def snapshot(self) -> "_IntervalLog":
        view = _IntervalLog(self.seal_every)
        view.segments = self.segments.copy()
        view.pending = list(self.pending)
        view.open = dict(self.open)
        return view

    def row_count(self) -> int:
        return _sealed_row_total(self.segments) + len(self.pending)


class _EventLog:
    """Append-only ``(time, tag, place, container)`` event rows."""

    def __init__(self, seal_every: int) -> None:
        self.seal_every = seal_every
        self.segments: list[tuple[np.ndarray, ...]] = []
        self.pending: list[tuple[int, int, int, int]] = []

    def append(self, time: int, tag: int, place: int, container: int) -> None:
        self.pending.append((time, tag, place, container))
        if len(self.pending) >= self.seal_every:
            self.seal()

    def seal(self) -> None:
        if not self.pending:
            return
        rows = self.pending
        self.pending = []
        self.segments.append(
            tuple(
                np.fromiter((row[i] for row in rows), dtype=np.int64, count=len(rows))
                for i in range(4)
            )
        )

    def rows(self) -> Iterator[tuple[int, int, int, int]]:
        for times, tags, places, containers in self.segments:
            for i in range(len(times)):
                yield (int(times[i]), int(tags[i]), int(places[i]), int(containers[i]))
        yield from self.pending

    def snapshot(self) -> "_EventLog":
        view = _EventLog(self.seal_every)
        view.segments = self.segments.copy()
        view.pending = list(self.pending)
        return view

    def row_count(self) -> int:
        return _sealed_row_total(self.segments) + len(self.pending)


class _AlertLog:
    """Append-only alert rows: ``(name, key, start, end, values...)``.

    ``name`` and ``key`` are ids into the archive's string table;
    ``values`` is the alert's variable-length float payload, stored
    flat with offsets in sealed segments.
    """

    def __init__(self, seal_every: int) -> None:
        self.seal_every = seal_every
        #: (names, keys, starts, ends, offsets[n+1]) int64 + flat float64.
        self.segments: list[tuple[np.ndarray, ...]] = []
        self.pending: list[tuple[int, int, int, int, tuple[float, ...]]] = []

    def append(
        self, name: int, key: int, start: int, end: int, values: tuple[float, ...]
    ) -> None:
        self.pending.append((name, key, start, end, values))
        if len(self.pending) >= self.seal_every:
            self.seal()

    def seal(self) -> None:
        if not self.pending:
            return
        rows = self.pending
        self.pending = []
        ints = tuple(
            np.fromiter((row[i] for row in rows), dtype=np.int64, count=len(rows))
            for i in range(4)
        )
        lengths = np.fromiter(
            (len(row[4]) for row in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths, dtype=np.int64)]
        )
        flat = np.fromiter(
            (v for row in rows for v in row[4]),
            dtype=np.float64,
            count=int(offsets[-1]),
        )
        self.segments.append(ints + (offsets, flat))

    def rows(self) -> Iterator[tuple[int, int, int, int, tuple[float, ...]]]:
        for names, keys, starts, ends, offsets, flat in self.segments:
            for i in range(len(names)):
                values = tuple(flat[offsets[i] : offsets[i + 1]].tolist())
                yield (int(names[i]), int(keys[i]), int(starts[i]), int(ends[i]), values)
        yield from self.pending

    def snapshot(self) -> "_AlertLog":
        view = _AlertLog(self.seal_every)
        view.segments = self.segments.copy()
        view.pending = list(self.pending)
        return view

    def row_count(self) -> int:
        return _sealed_row_total(self.segments) + len(self.pending)


class SiteArchive:
    """One site's append-only history, fed at every inference boundary."""

    def __init__(self, site: int, seal_every: int = 4096, top_k: int = TOP_K) -> None:
        if seal_every < 1:
            raise ValueError("seal_every must be positive")
        if top_k < 1:
            raise ValueError("top_k must be positive")
        self.site = site
        self.seal_every = seal_every
        self.top_k = top_k
        #: last boundary whose inference output has been ingested.
        self.last_boundary = 0
        #: sealed-segment layout epoch. Appends (seal) only grow segment
        #: lists, so a replication cursor taken within one generation
        #: stays valid; :meth:`compact` rewrites the layout and bumps
        #: this, forcing replicas holding old cursors to full-resync.
        #: Volatile like ``_event_cursor``: not serialized by the codec,
        #: so a restored archive restarts at generation 0.
        self.generation = 0
        #: optional :class:`~repro.archive.tiers.DiskTier` (see
        #: :meth:`attach_tier`); None keeps everything in RAM.
        self.tier = None
        #: interned tags, in first-encounter order (deterministic: ingest
        #: iterates service state sorted).
        self.tag_table: list[EPC] = []
        self._tag_ids: dict[EPC, int] = {}
        #: interned strings (query names, alert keys).
        self.key_table: list[str] = []
        self._key_ids: dict[str, int] = {}
        self.location = _IntervalLog(seal_every)
        self.containment = _IntervalLog(seal_every)
        self.belief = _IntervalLog(seal_every)
        self.events = _EventLog(seal_every)
        self.alerts = _AlertLog(seal_every)
        #: alerts already ingested, per query name (rides in checkpoints:
        #: query alert logs are checkpointed too, so the cursors stay
        #: aligned across crash recovery).
        self.alert_cursors: dict[str, int] = {}
        #: per-tag epoch of the latest archived event — the "when did
        #: this site last actually see the tag" freshness signal the
        #: frontend's scatter-gather merge ranks sites by. Derived from
        #: the event log (the codec rebuilds it on decode).
        self.last_event: dict[int, int] = {}
        #: position in the service's ``events`` list; deliberately
        #: volatile — a restarted service starts a fresh events list, so
        #: the cursor resets with it (see :mod:`repro.archive.codec`).
        self._event_cursor = 0

    # -- interning --------------------------------------------------------

    def intern_tag(self, tag: EPC) -> int:
        tag_id = self._tag_ids.get(tag)
        if tag_id is None:
            tag_id = self._tag_ids[tag] = len(self.tag_table)
            self.tag_table.append(tag)
        return tag_id

    def tag_id_of(self, tag: EPC) -> int | None:
        """Interned id of ``tag`` (None if never archived)."""
        return self._tag_ids.get(tag)

    def tag_of(self, tag_id: int) -> EPC:
        return self.tag_table[tag_id]

    def intern_key(self, key: str) -> int:
        key_id = self._key_ids.get(key)
        if key_id is None:
            key_id = self._key_ids[key] = len(self.key_table)
            self.key_table.append(key)
        return key_id

    def key_of(self, key_id: int) -> str:
        return self.key_table[key_id]

    # -- ingest (the service → archive feed) ------------------------------

    def ingest_service(self, service: "StreamingInference") -> None:
        """Capture one boundary's inference output.

        Call once after each :meth:`~repro.core.service.StreamingInference.run_at`:
        new emitted events extend the location intervals and the event
        log; the containment snapshot and the posterior top-k extend
        their interval logs. Iteration is in sorted-tag order so the
        archive is a pure function of the service state.
        """
        boundary = service.last_run_time
        if boundary < self.last_boundary:
            raise ValueError(
                f"archive at boundary {self.last_boundary} cannot ingest "
                f"older boundary {boundary}"
            )
        # Absolute cursor: survives the service's memory budget
        # dropping already-ingested events off the front.
        fresh, self._event_cursor = service.events_since(self._event_cursor)
        for event in fresh:
            tag_id = self.intern_tag(event.tag)
            container = (
                NO_CONTAINER
                if event.container is None
                else self.intern_tag(event.container)
            )
            self.events.append(event.time, tag_id, event.place, container)
            self.location.observe(
                tag_id, event.time, ((event.place, 1.0),), value_only=True
            )
            if event.time > self.last_event.get(tag_id, -1):
                self.last_event[tag_id] = event.time
        for tag in sorted(service.containment):
            tag_id = self.intern_tag(tag)
            container = service.containment[tag]
            weights = service.last_weights.get(tag)
            posterior_list = _posteriors(weights) if weights else []
            if container is None:
                state = ((NO_CONTAINER, 1.0),)
            else:
                table = dict(posterior_list)
                posterior = table.get(container, 1.0 if not posterior_list else 0.0)
                state = ((self.intern_tag(container), posterior),)
            self.containment.observe(tag_id, boundary, state, value_only=True)
        for tag in sorted(service.last_weights):
            weights = service.last_weights[tag]
            if not weights:
                # A tag can surface with zero containment candidates in
                # its window (e.g. nothing co-located before it moved
                # on); there is no posterior to log for it.
                continue
            tag_id = self.intern_tag(tag)
            posterior_list = _posteriors(weights)
            top = sorted(posterior_list, key=lambda cp: (-cp[1], cp[0]))[: self.top_k]
            self.belief.observe(
                tag_id,
                boundary,
                tuple((self.intern_tag(cand), prob) for cand, prob in top),
            )
        self.last_boundary = max(self.last_boundary, boundary)

    def ingest_alerts(self, name: str, alerts: Iterable) -> None:
        """Append a query's alerts emitted since the previous ingest.

        Alerts are normalized to ``(key, start, end, values)``:
        pattern alerts map directly; route-deviation alerts become
        zero-length intervals carrying ``(site, *expected)`` as values.
        """
        alerts = list(alerts)
        cursor = self.alert_cursors.get(name, 0)
        name_id = self.intern_key(name)
        for alert in alerts[cursor:]:
            if hasattr(alert, "start_time"):
                key, start, end = alert.key, alert.start_time, alert.end_time
                values = tuple(float(v) for v in alert.values)
            else:
                key, start, end = alert.tag, alert.time, alert.time
                values = (float(alert.site),) + tuple(float(v) for v in alert.expected)
            self.alerts.append(name_id, self.intern_key(str(key)), start, end, values)
        self.alert_cursors[name] = len(alerts)

    # -- maintenance ------------------------------------------------------

    def seal(self) -> None:
        """Freeze every log's pending rows into sealed segments."""
        for log in (self.location, self.containment, self.belief):
            log.seal()
        self.events.seal()
        self.alerts.seal()

    def compact(self) -> int:
        """Merge adjacent same-value intervals; returns rows removed.

        Rewrites the sealed-segment layout, so the archive's
        ``generation`` is bumped and replication cursors taken before
        the compaction become invalid (replicas full-resync).
        """
        removed = 0
        for log in (self.location, self.containment, self.belief):
            removed += log.compact()
        self.generation += 1
        return removed

    def attach_tier(self, tier, hot_segments: int = 2) -> None:
        """Move sealed segments onto a disk tier (see :mod:`repro.archive.tiers`).

        Every log's sealed segments beyond the newest ``hot_segments``
        spill to ``tier`` immediately; future seals spill automatically
        as they age out of the hot window. Pending rows always stay in
        RAM. Readers are unaffected — disk-resident segments load
        lazily (and transparently) through the tier's LRU cache.
        """
        from repro.archive.tiers import TieredSegments

        for log in (self.location, self.containment, self.belief, self.events, self.alerts):
            log.segments = TieredSegments(tier, list(log.segments), hot_segments)
        self.tier = tier

    def snapshot_reader(self) -> "SiteArchive":
        """A consistent read view: later appends do not affect it.

        Sealed segments are shared (immutable); pending rows, open
        intervals, and the intern tables are copied.
        """
        view = SiteArchive(self.site, self.seal_every, self.top_k)
        view.last_boundary = self.last_boundary
        view.generation = self.generation
        view.tier = self.tier
        view.tag_table = list(self.tag_table)
        view._tag_ids = dict(self._tag_ids)
        view.key_table = list(self.key_table)
        view._key_ids = dict(self._key_ids)
        view.location = self.location.snapshot()
        view.containment = self.containment.snapshot()
        view.belief = self.belief.snapshot()
        view.events = self.events.snapshot()
        view.alerts = self.alerts.snapshot()
        view.alert_cursors = dict(self.alert_cursors)
        view.last_event = dict(self.last_event)
        return view

    def row_count(self) -> int:
        """Total archived rows across all logs (sealed + pending)."""
        return (
            self.location.row_count()
            + self.containment.row_count()
            + self.belief.row_count()
            + self.events.row_count()
            + self.alerts.row_count()
        )
