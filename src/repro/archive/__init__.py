"""Historical archive: per-site append-only history of inference output.

* :mod:`repro.archive.store` — :class:`SiteArchive`: columnar interval /
  event / alert logs with segment sealing, compaction, and
  snapshot-consistent readers, fed at each inference boundary;
* :mod:`repro.archive.codec` — the versioned binary format that lets an
  archive ride inside site checkpoints and survive crash recovery
  bit-identically;
* :mod:`repro.archive.replication` — cursor-based incremental segment
  replication so read replicas hold bit-identical archive copies;
* :mod:`repro.archive.tiers` — tiered storage: hot pending rows, sealed
  in-memory segments, and lazily-loaded on-disk segments behind an LRU
  eviction policy.

The serving layer (:mod:`repro.serving`) executes time-travel queries —
point-in-time location/containment, trajectories, provenance, dwell,
alert scans — against these archives (primary or replica).
"""

from repro.archive.codec import ARCHIVE_VERSION, decode_archive, encode_archive
from repro.archive.replication import (
    REPLICATION_VERSION,
    ReplicationCursor,
    apply_archive_delta,
    cursor_of,
    decode_replica_fetch,
    encode_archive_delta,
    encode_replica_fetch,
)
from repro.archive.store import NO_CONTAINER, TOP_K, SiteArchive
from repro.archive.tiers import DiskTier, TieredSegments

__all__ = [
    "ARCHIVE_VERSION",
    "NO_CONTAINER",
    "REPLICATION_VERSION",
    "TOP_K",
    "DiskTier",
    "ReplicationCursor",
    "SiteArchive",
    "TieredSegments",
    "apply_archive_delta",
    "cursor_of",
    "decode_archive",
    "decode_replica_fetch",
    "encode_archive",
    "encode_archive_delta",
    "encode_replica_fetch",
]
