"""Historical archive: per-site append-only history of inference output.

* :mod:`repro.archive.store` — :class:`SiteArchive`: columnar interval /
  event / alert logs with segment sealing, compaction, and
  snapshot-consistent readers, fed at each inference boundary;
* :mod:`repro.archive.codec` — the versioned binary format that lets an
  archive ride inside site checkpoints and survive crash recovery
  bit-identically.

The serving layer (:mod:`repro.serving`) executes time-travel queries —
point-in-time location/containment, trajectories, provenance, dwell,
alert scans — against these archives.
"""

from repro.archive.codec import ARCHIVE_VERSION, decode_archive, encode_archive
from repro.archive.store import NO_CONTAINER, TOP_K, SiteArchive

__all__ = [
    "ARCHIVE_VERSION",
    "NO_CONTAINER",
    "TOP_K",
    "SiteArchive",
    "decode_archive",
    "encode_archive",
]
