"""Tiered storage for sealed archive segments (RAM-hot → disk-cold).

A week-long archive should not live entirely in RAM. The storage
ladder is:

* **pending rows** — tiny Python lists, always in memory (the hot
  write path);
* **hot sealed segments** — the newest few immutable numpy segments of
  each log, kept in memory because recent history is queried most;
* **cold sealed segments** — everything older, spilled to one columnar
  file per segment on a :class:`DiskTier` and loaded lazily through a
  small LRU-resident cache when a query actually touches them.

:class:`TieredSegments` is a drop-in, list-shaped replacement for a
log's ``segments`` list: ``append``/``len``/iteration/slicing behave
identically (materializing cold segments on touch), so the query path,
the checkpoint codec, and segment replication all work unchanged over
a tiered archive. ``copy()`` shares handles — snapshots stay cheap —
and ``fresh()`` survives compaction (see ``_fresh_segments`` in the
store).

Spilled files are raw little-endian column blocks (the same layout the
archive codec uses), so a spill→load round trip is bit-exact and
``encode_archive`` over a tiered archive equals the in-RAM encoding.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict
from typing import Iterator, NamedTuple

import numpy as np

from repro._util.encoding import ByteReader, ByteWriter
from repro.obs.registry import MetricsRegistry

__all__ = [
    "ArchiveCorruption",
    "DiskTier",
    "SegmentHandle",
    "TieredSegments",
    "TierStats",
]

#: little-endian crc32 footer appended to every spilled column file, so
#: a truncated or bit-flipped file fails validation with a description
#: instead of a raw numpy/struct exception deep in the decoder.
_CRC = struct.Struct("<I")


class ArchiveCorruption(ValueError):
    """A spilled tier segment failed its length or checksum validation."""


class SegmentHandle(NamedTuple):
    """A spilled segment: where it lives and how many rows it holds."""

    path: str
    rows: int


def _tier_counter_property(metric: str):
    def _get(self: "TierStats") -> int:
        return self.registry.counter(metric).value

    def _set(self: "TierStats", value: int) -> None:
        self.registry.counter(metric).set(value)

    return property(_get, _set, doc=f"registry-backed tier counter {metric!r}")


class TierStats:
    """Spill/load accounting for one :class:`DiskTier`, backed by an
    always-on :class:`~repro.obs.MetricsRegistry` behind compat
    properties (the ``+=`` call sites read-then-write the same series)."""

    FIELDS = (
        "spills",
        "loads",
        "cache_hits",
        "evictions",
        "bytes_spilled",
        "corruptions",
    )

    spills = _tier_counter_property("spills")
    loads = _tier_counter_property("loads")
    cache_hits = _tier_counter_property("cache_hits")
    evictions = _tier_counter_property("evictions")
    bytes_spilled = _tier_counter_property("bytes_spilled")
    corruptions = _tier_counter_property("corruptions")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}


class DiskTier:
    """On-disk segment store with an LRU cache of resident segments.

    ``max_resident`` bounds how many cold segments are held
    materialized at once; loading past the bound evicts the least
    recently used (the file stays on disk — eviction just drops the
    arrays).
    """

    def __init__(self, root: str, max_resident: int = 8) -> None:
        if max_resident < 1:
            raise ValueError("max_resident must be positive")
        self.root = root
        self.max_resident = max_resident
        os.makedirs(root, exist_ok=True)
        self._resident: OrderedDict[str, tuple[np.ndarray, ...]] = OrderedDict()
        self._next = 0
        self.stats = TierStats()

    def store(self, segment: tuple[np.ndarray, ...]) -> SegmentHandle:
        """Spill one immutable segment; returns its handle."""
        writer = ByteWriter()
        writer.varint(len(segment))
        for column in segment:
            is_float = column.dtype.kind == "f"
            writer.varint(1 if is_float else 0).varint(len(column))
            dtype = "<f8" if is_float else "<i8"
            writer.raw(np.ascontiguousarray(column, dtype=dtype).tobytes())
        data = writer.getvalue()
        path = os.path.join(self.root, f"seg-{self._next:08d}.col")
        self._next += 1
        with open(path, "wb") as handle:
            handle.write(data + _CRC.pack(zlib.crc32(data)))
        self.stats.spills += 1
        self.stats.bytes_spilled += len(data)
        return SegmentHandle(path, len(segment[0]))

    def load(self, handle: SegmentHandle) -> tuple[np.ndarray, ...]:
        """Materialize a spilled segment (LRU-cached).

        Raises :class:`ArchiveCorruption` (a :class:`ValueError`) with
        the file path and the failure mode when the file is truncated,
        bit-flipped, or otherwise undecodable — and counts it.
        """
        cached = self._resident.get(handle.path)
        if cached is not None:
            self._resident.move_to_end(handle.path)
            self.stats.cache_hits += 1
            return cached
        with open(handle.path, "rb") as fh:
            raw = fh.read()
        if len(raw) < _CRC.size:
            self.stats.corruptions += 1
            raise ArchiveCorruption(
                f"tier segment {handle.path} truncated ({len(raw)} bytes)"
            )
        data, footer = raw[: -_CRC.size], raw[-_CRC.size :]
        if zlib.crc32(data) != _CRC.unpack(footer)[0]:
            self.stats.corruptions += 1
            raise ArchiveCorruption(
                f"tier segment {handle.path} failed checksum validation"
            )
        try:
            segment = self._decode(data)
        except (ValueError, EOFError, struct.error, IndexError, OverflowError) as exc:
            self.stats.corruptions += 1
            raise ArchiveCorruption(
                f"malformed tier segment {handle.path}: {exc}"
            ) from exc
        self.stats.loads += 1
        self._resident[handle.path] = segment
        while len(self._resident) > self.max_resident:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        return segment

    @staticmethod
    def _decode(data: bytes) -> tuple[np.ndarray, ...]:
        reader = ByteReader(data)
        columns = []
        for _ in range(reader.varint()):
            is_float = reader.varint()
            count = reader.varint()
            dtype = "<f8" if is_float else "<i8"
            # frombuffer keeps the arrays read-only, which is exactly
            # right for immutable sealed segments.
            columns.append(np.frombuffer(reader.raw(count * 8), dtype=dtype))
        return tuple(columns)

    @property
    def resident_count(self) -> int:
        return len(self._resident)


class TieredSegments:
    """List-shaped sealed-segment container backed by a :class:`DiskTier`.

    Entries are either in-memory segment tuples (the hot tail) or
    :class:`SegmentHandle`\\ s (cold, spilled). Reads materialize cold
    entries through the tier's LRU cache; handles themselves are never
    mutated, so ``copy()`` (used by archive snapshots) is a cheap
    shallow copy that shares both hot segments and handles.
    """

    def __init__(self, tier: DiskTier, segments=None, hot: int = 2) -> None:
        if hot < 0:
            raise ValueError("hot segment count cannot be negative")
        self._tier = tier
        self._hot = hot
        self._entries: list = list(segments) if segments else []
        self._spill_cold()

    # -- list protocol (what the store/codec/replication touch) ------------

    def append(self, segment: tuple[np.ndarray, ...]) -> None:
        self._entries.append(segment)
        self._spill_cold()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        for entry in list(self._entries):
            yield self._materialize(entry)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(entry) for entry in self._entries[index]]
        return self._materialize(self._entries[index])

    def copy(self) -> "TieredSegments":
        view = TieredSegments(self._tier, hot=self._hot)
        view._entries = list(self._entries)
        return view

    # -- store integration hooks -------------------------------------------

    def fresh(self) -> "TieredSegments":
        """An empty container on the same tier (compaction rebuilds)."""
        return TieredSegments(self._tier, hot=self._hot)

    def row_counts(self) -> list[int]:
        """Per-segment row counts without materializing cold segments."""
        return [
            entry.rows if isinstance(entry, SegmentHandle) else len(entry[0])
            for entry in self._entries
        ]

    # -- internals ----------------------------------------------------------

    def _spill_cold(self) -> None:
        cold = len(self._entries) - self._hot
        for i in range(max(0, cold)):
            entry = self._entries[i]
            if not isinstance(entry, SegmentHandle):
                self._entries[i] = self._tier.store(entry)

    def _materialize(self, entry) -> tuple[np.ndarray, ...]:
        if isinstance(entry, SegmentHandle):
            return self._tier.load(entry)
        return entry

    @property
    def spilled_count(self) -> int:
        return sum(1 for entry in self._entries if isinstance(entry, SegmentHandle))
