"""Versioned binary codec for :class:`~repro.archive.store.SiteArchive`.

Archives ride inside site checkpoints
(:mod:`repro.runtime.checkpoint`), so the format must restore a site's
history **bit-identically**: sealed segments, pending rows, open
intervals, and the intern tables all round-trip exactly, and
``encode(decode(encode(a))) == encode(a)`` always holds. Columns are
serialized as raw little-endian int64/float64 blocks (no per-row
varints — numpy decodes them in one ``frombuffer``).

The service-event cursor is deliberately **not** serialized: it indexes
the live service's in-memory ``events`` list, which a restarted process
rebuilds from empty, so the cursor must restart at zero with it.

Like every wire format in this repository, malformed input raises
:class:`ValueError`, never a bare decoder error.
"""

from __future__ import annotations

import struct

import numpy as np

from repro._util.encoding import ByteReader, ByteWriter
from repro.archive.store import SiteArchive, _AlertLog, _EventLog, _IntervalLog
from repro.sim.tags import read_epc, write_epc

__all__ = ["ARCHIVE_VERSION", "encode_archive", "decode_archive"]

ARCHIVE_VERSION = 1


def _write_i64(writer: ByteWriter, column: np.ndarray) -> None:
    writer.raw(np.ascontiguousarray(column, dtype="<i8").tobytes())


def _read_i64(reader: ByteReader, count: int) -> np.ndarray:
    return np.frombuffer(reader.raw(count * 8), dtype="<i8").copy()


def _write_f64(writer: ByteWriter, column: np.ndarray) -> None:
    writer.raw(np.ascontiguousarray(column, dtype="<f8").tobytes())


def _read_f64(reader: ByteReader, count: int) -> np.ndarray:
    return np.frombuffer(reader.raw(count * 8), dtype="<f8").copy()


# -- interval logs ----------------------------------------------------------


def _write_interval_log(writer: ByteWriter, log: _IntervalLog) -> None:
    writer.varint(len(log.segments))
    for segment in log.segments:
        writer.varint(len(segment[0]))
        for column in segment[:5]:
            _write_i64(writer, column)
        _write_f64(writer, segment[5])
    writer.varint(len(log.pending))
    for tag, rank, start, end, value, posterior in log.pending:
        writer.varint(tag).varint(rank).varint(start).varint(end).svarint(value)
        writer.float64(posterior)
    writer.varint(len(log.open))
    for tag in sorted(log.open):
        start, rows = log.open[tag]
        writer.varint(tag).varint(start).varint(len(rows))
        for value, posterior in rows:
            writer.svarint(value).float64(posterior)


def _read_interval_log(reader: ByteReader, seal_every: int) -> _IntervalLog:
    log = _IntervalLog(seal_every)
    for _ in range(reader.varint()):
        count = reader.varint()
        ints = tuple(_read_i64(reader, count) for _ in range(5))
        log.segments.append(ints + (_read_f64(reader, count),))
    for _ in range(reader.varint()):
        log.pending.append(
            (
                reader.varint(),
                reader.varint(),
                reader.varint(),
                reader.varint(),
                reader.svarint(),
                reader.float64(),
            )
        )
    for _ in range(reader.varint()):
        tag = reader.varint()
        start = reader.varint()
        rows = tuple(
            (reader.svarint(), reader.float64()) for _ in range(reader.varint())
        )
        log.open[tag] = (start, rows)
    return log


# -- event / alert logs -----------------------------------------------------


def _write_event_log(writer: ByteWriter, log: _EventLog) -> None:
    writer.varint(len(log.segments))
    for segment in log.segments:
        writer.varint(len(segment[0]))
        for column in segment:
            _write_i64(writer, column)
    writer.varint(len(log.pending))
    for time, tag, place, container in log.pending:
        writer.varint(time).varint(tag).svarint(place).svarint(container)


def _read_event_log(reader: ByteReader, seal_every: int) -> _EventLog:
    log = _EventLog(seal_every)
    for _ in range(reader.varint()):
        count = reader.varint()
        log.segments.append(tuple(_read_i64(reader, count) for _ in range(4)))
    for _ in range(reader.varint()):
        log.pending.append(
            (reader.varint(), reader.varint(), reader.svarint(), reader.svarint())
        )
    return log


def _write_alert_log(writer: ByteWriter, log: _AlertLog) -> None:
    writer.varint(len(log.segments))
    for names, keys, starts, ends, offsets, flat in log.segments:
        writer.varint(len(names))
        for column in (names, keys, starts, ends):
            _write_i64(writer, column)
        _write_i64(writer, offsets)  # len(names) + 1 entries
        writer.varint(len(flat))
        _write_f64(writer, flat)
    writer.varint(len(log.pending))
    for name, key, start, end, values in log.pending:
        writer.varint(name).varint(key).varint(start).varint(end)
        writer.varint(len(values))
        for value in values:
            writer.float64(value)


def _read_alert_log(reader: ByteReader, seal_every: int) -> _AlertLog:
    log = _AlertLog(seal_every)
    for _ in range(reader.varint()):
        count = reader.varint()
        ints = tuple(_read_i64(reader, count) for _ in range(4))
        offsets = _read_i64(reader, count + 1)
        flat = _read_f64(reader, reader.varint())
        if len(offsets) and (offsets[-1] != len(flat) or offsets[0] != 0):
            raise ValueError("alert segment offsets do not cover the value block")
        log.segments.append(ints + (offsets, flat))
    for _ in range(reader.varint()):
        name = reader.varint()
        key = reader.varint()
        start = reader.varint()
        end = reader.varint()
        values = tuple(reader.float64() for _ in range(reader.varint()))
        log.pending.append((name, key, start, end, values))
    return log


# -- the archive ------------------------------------------------------------


def encode_archive(archive: SiteArchive) -> bytes:
    """Serialize a site archive (sealed + pending + open state)."""
    writer = ByteWriter()
    writer.varint(ARCHIVE_VERSION)
    writer.svarint(archive.site)
    writer.varint(archive.last_boundary)
    writer.varint(archive.top_k)
    writer.varint(archive.seal_every)
    writer.varint(len(archive.tag_table))
    for tag in archive.tag_table:
        write_epc(writer, tag)
    writer.varint(len(archive.key_table))
    for key in archive.key_table:
        writer.text(key)
    _write_interval_log(writer, archive.location)
    _write_interval_log(writer, archive.containment)
    _write_interval_log(writer, archive.belief)
    _write_event_log(writer, archive.events)
    _write_alert_log(writer, archive.alerts)
    writer.varint(len(archive.alert_cursors))
    for name in sorted(archive.alert_cursors):
        writer.text(name)
        writer.varint(archive.alert_cursors[name])
    return writer.getvalue()


def decode_archive(data: bytes) -> SiteArchive:
    """Inverse of :func:`encode_archive`; ValueError on malformed input."""
    try:
        return _decode(ByteReader(data))
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed site archive: {exc}") from exc


def _decode(reader: ByteReader) -> SiteArchive:
    version = reader.varint()
    if version != ARCHIVE_VERSION:
        raise ValueError(f"unsupported archive version {version}")
    site = reader.svarint()
    last_boundary = reader.varint()
    top_k = reader.varint()
    seal_every = reader.varint()
    archive = SiteArchive(site, seal_every=seal_every, top_k=top_k)
    archive.last_boundary = last_boundary
    for _ in range(reader.varint()):
        tag = read_epc(reader)
        if tag in archive._tag_ids:
            raise ValueError(f"duplicate tag {tag} in archive tag table")
        archive.intern_tag(tag)
    for _ in range(reader.varint()):
        key = reader.text()
        if key in archive._key_ids:
            raise ValueError(f"duplicate key {key!r} in archive key table")
        archive.intern_key(key)
    archive.location = _read_interval_log(reader, seal_every)
    archive.containment = _read_interval_log(reader, seal_every)
    archive.belief = _read_interval_log(reader, seal_every)
    archive.events = _read_event_log(reader, seal_every)
    archive.alerts = _read_alert_log(reader, seal_every)
    for _ in range(reader.varint()):
        name = reader.text()
        archive.alert_cursors[name] = reader.varint()
    # last_event is derived state: rebuild it from the event log rather
    # than widening the wire format.
    for time, tag, _, _ in archive.events.rows():
        if time > archive.last_event.get(tag, -1):
            archive.last_event[tag] = time
    return archive
