"""Process-parallel shared-nothing federation: the :class:`ProcessTransport`.

The GIL caps :class:`~repro.runtime.transport.ThreadedTransport` at one
core no matter how many sites the federation has. This transport runs
the inference hot path on real OS processes instead: N **workers**
(forked ``multiprocessing`` processes) each host a shard of the logical
sites, and the parent process stays the single deterministic router,
ledger owner, and fault-injection point.

Design, in one paragraph: the parent forks its workers *lazily* on the
first parallel tick, after every site, query factory, sensor stream,
and op table has been registered — so lambdas, traces, and closures
cross by fork inheritance and nothing of the sort is ever pickled.
Each worker executes **named operations** against its hosted
:class:`~repro.runtime.node.SiteNode`\\ s (``site_call`` is a
synchronous RPC, ``site_cast`` an asynchronous one; the concurrent
casts of ``advance_to`` are where the parallel speedup comes from).
Envelopes a node sends inside a worker are buffered in a per-worker
outbox shim and surface to the parent with the op's reply; the parent
pushes each through its :attr:`ProcessTransport.egress` hook — by
default ledger accounting + routing, and
:class:`~repro.runtime.faults.FaultyTransport` repoints the hook at its
own fault injector, so the chaos harness drives worker-origin traffic
exactly as it drives in-process traffic. Control frames are pickled;
**bulk payloads are not**: any ``bytes`` blob at or above
:data:`SHM_THRESHOLD` — batched migration bundles, site checkpoints,
archive segments — crosses the process boundary as a raw block in a
:mod:`multiprocessing.shared_memory` segment, with zero re-encoding
through the envelope/archive codecs (one memcpy in, one out).

**Site sharding and rebalancing.** Many logical sites map onto few
workers through a shard map. Every worker inherits *all* node objects
at fork time but only drives its own shard; :meth:`move_site` reassigns
a site by pulling its checkpoint (the existing
:mod:`~repro.runtime.checkpoint` wire format — no new state protocol),
dropping it on the old worker, and restoring it onto the dormant
replica in the new worker. :meth:`maybe_rebalance` applies that move
between intervals using the ledger's per-link byte counters as the load
signal; because checkpoint/restore is bit-exact, a rebalance is
invisible to every observable result.

**Determinism contract.** Command pipes are FIFO per worker and the
parent drains replies worker-by-worker in index order, so every
envelope's per-link order is a pure function of the cluster's phase
schedule — the property the fault plans and the chaos harness's
bit-identity invariant rest on. Parallelism only ever reorders work
*between* barriers, which the runtime already tolerates.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from dataclasses import replace
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Callable, Mapping

from repro.distributed.network import Network
from repro.obs import get_telemetry
from repro.obs.recorder import FlightRecorder
from repro.runtime.checkpoint import peek_checkpoint_site
from repro.runtime.envelope import Envelope
from repro.runtime.transport import Handler, Transport

__all__ = ["ProcessTransport", "WorkerDied", "SHM_THRESHOLD"]


class WorkerDied(RuntimeError):
    """A shard worker process exited (or stopped replying) mid-command.

    Names the worker, the oldest in-flight operation, *and* the dead
    worker's flight-recorder tail (the last commands the parent routed
    to it, plus any telemetry entries it shipped at the last barrier),
    so a crash in a 16-worker federation points at the actual victim —
    with its recent history — instead of leaving the parent blocked
    forever on a pipe read.
    """

    #: how many flight-recorder entries ride on the exception message.
    TAIL = 16

    def __init__(
        self, worker: int, op: str, reason: str, tail: list[dict] | None = None
    ) -> None:
        self.worker = worker
        self.op = op
        self.tail = list(tail or [])[-self.TAIL :]
        message = f"shard worker {worker} died with {op!r} in flight: {reason}"
        if self.tail:
            lines = "\n".join(f"  {self._entry_line(e)}" for e in self.tail)
            message += (
                f"\nflight recorder (last {len(self.tail)} entries for "
                f"worker {worker}):\n{lines}"
            )
        super().__init__(message)

    @staticmethod
    def _entry_line(entry: dict) -> str:
        kind = entry.get("type", "?")
        name = entry.get("name", entry.get("op", "?"))
        extras = ", ".join(
            f"{k}={entry[k]}"
            for k in ("plane", "op", "site", "boundary", "seq")
            if k in entry and k != "op"
        )
        return f"[{kind}] {name}" + (f" ({extras})" if extras else "")

#: payload size (bytes) at which a blob rides a shared-memory segment
#: instead of the pickled control frame.
SHM_THRESHOLD = 64 * 1024


# -- the shared-memory blob plane -----------------------------------------


class _ShmRef:
    """Wire marker for a payload parked in a shared-memory segment."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size

    def __reduce__(self):
        return (_ShmRef, (self.name, self.size))


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Detach ``seg`` from this process's resource tracker.

    Ownership is explicit here — the receiver unlinks after reading —
    so the tracker must not also try to unlink it at interpreter exit
    (double-unlink warnings, or worse, reaping a segment the peer has
    not read yet)."""
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _park_blob(data: bytes) -> _ShmRef:
    seg = shared_memory.SharedMemory(create=True, size=max(len(data), 1))
    seg.buf[: len(data)] = data
    ref = _ShmRef(seg.name, len(data))
    seg.close()
    _untrack(seg)
    return ref


def _claim_blob(ref: _ShmRef) -> bytes:
    # Attaching does not register with the tracker (and the creator
    # already unregistered), so no _untrack here — a second unregister
    # would make the tracker process log a KeyError at message time.
    seg = shared_memory.SharedMemory(name=ref.name)
    data = bytes(seg.buf[: ref.size])
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already reaped
        pass
    return data


def _pack_value(value: object) -> object:
    if isinstance(value, bytes) and len(value) >= SHM_THRESHOLD:
        return _park_blob(value)
    return value


def _unpack_value(value: object) -> object:
    if isinstance(value, _ShmRef):
        return _claim_blob(value)
    return value


def _pack_env(env: Envelope) -> Envelope:
    if len(env.payload) >= SHM_THRESHOLD:
        return replace(env, payload=_park_blob(env.payload))
    return env


def _unpack_env(env: Envelope) -> Envelope:
    if isinstance(env.payload, _ShmRef):
        return replace(env, payload=_claim_blob(env.payload))
    return env


class _Channel:
    """One side of a worker pipe: pickled control frames, shm blobs.

    Only the blob-bearing slots of each frame shape are transformed —
    op arguments, op results, envelope payloads — so small frames stay
    a single pickle with no segment round-trip."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, msg: tuple) -> None:
        kind = msg[0]
        if kind in ("call", "cast"):
            _, site, op, args = msg
            msg = (kind, site, op, tuple(_pack_value(a) for a in args))
        elif kind == "deliver":
            msg = (kind, _pack_env(msg[1]))
        elif kind == "adopt":
            msg = (kind, msg[1], _pack_value(msg[2]))
        elif kind == "ret":
            _, ck, result, outbox, err = msg
            msg = (kind, ck, _pack_value(result), [_pack_env(e) for e in outbox], err)
        self._conn.send(msg)

    def recv(self) -> tuple:
        msg = self._conn.recv()
        kind = msg[0]
        if kind in ("call", "cast"):
            _, site, op, args = msg
            return (kind, site, op, tuple(_unpack_value(a) for a in args))
        if kind == "deliver":
            return (kind, _unpack_env(msg[1]))
        if kind == "adopt":
            return (kind, msg[1], _unpack_value(msg[2]))
        if kind == "ret":
            _, ck, result, outbox, err = msg
            return (kind, ck, _unpack_value(result), [_unpack_env(e) for e in outbox], err)
        return msg

    def poll(self, timeout: float = 0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()


# -- worker side -----------------------------------------------------------


class _WorkerShim:
    """What a hosted node sees as its transport inside a worker.

    Sends are buffered, not delivered: they surface to the parent with
    the current op's reply and go through the parent's egress hook
    (ledger accounting, routing, fault injection). ``reliable`` mirrors
    the *outermost* parent transport so the node's at-least-once layer
    behaves identically on both sides of the fork. No ledger attribute
    on purpose: a worker touching the ledger would silently diverge
    from the parent's accounting, and should crash instead."""

    def __init__(self, reliable: bool) -> None:
        self.reliable = reliable
        self.outbox: list[Envelope] = []

    def send(self, env: Envelope) -> None:
        self.outbox.append(env)

    def flush(self) -> None:  # a worker never barriers; the parent does
        pass

    def drain(self) -> list[Envelope]:
        out, self.outbox = self.outbox, []
        return out


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("process", "channel", "pending", "inflight")

    def __init__(self, process, channel: _Channel) -> None:
        self.process = process
        self.channel = channel
        self.pending = 0  # commands sent but not yet replied
        #: FIFO descriptions of the pending commands, for diagnostics.
        self.inflight: deque[str] = deque()


class ProcessTransport(Transport):
    """Per-worker OS processes hosting shards of logical sites."""

    hosts_sites = True

    #: auto-rebalance fires when the busiest worker's traffic delta
    #: exceeds ``ratio``× the idlest worker's (plus a noise floor).
    REBALANCE_RATIO = 2.0
    REBALANCE_MIN_BYTES = 4096

    def __init__(
        self,
        n_workers: int = 2,
        ledger: Network | None = None,
        shard_map: Mapping[int, int] | None = None,
        rebalance: bool = True,
        scheduled_moves: Mapping[int, tuple[int, int]] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        super().__init__(ledger)
        self.n_workers = n_workers
        self.rebalance = rebalance
        #: deterministic move overrides: boundary index (1-based count of
        #: :meth:`maybe_rebalance` calls) -> (site, target worker). Used
        #: by tests/experiments to force a mid-run shard move.
        self.scheduled_moves = dict(scheduled_moves or {})
        self._explicit_shard = dict(shard_map) if shard_map is not None else None
        self._handlers: dict[int, Handler] = {}
        self._site_ops: dict[int, dict[str, Callable]] = {}
        #: site -> worker index (parent-side routing truth).
        self._shard: dict[int, int] = {}
        self._workers: list[_WorkerHandle] = []
        self._started = False
        self._closed = False
        self._in_worker: int | None = None
        self._call_results: list[object] = []
        self._boundaries = 0
        self._last_loads: dict[int, int] = {}
        #: where worker-origin envelopes enter the parent. Default:
        #: account + route. FaultyTransport repoints this at its own
        #: ``send`` so injection covers worker traffic.
        self.egress: Callable[[Envelope], None] = self._default_egress
        #: reliability advertised to worker-side nodes; a lossy wrapper
        #: sets this to False before the fork.
        self.outer_reliable = True
        #: always-on parent-side flight recorder: the recent commands
        #: routed to each worker (plus telemetry entries workers shipped
        #: at the last quiescence). Cheap — one small dict per command —
        #: and what :class:`WorkerDied` quotes as the victim's tail.
        self.flight = FlightRecorder(capacity=512)

    # -- registration -------------------------------------------------------

    def register(self, site: int, handler: Handler) -> None:
        # Registration stays open after the fork: a late handler (e.g. a
        # serving frontend's synthetic site) is parent-resident by
        # construction — only *hosting* must happen before the fork.
        if self._closed:
            raise RuntimeError("transport is closed")
        if site in self._handlers:
            raise ValueError(f"site {site} already registered")
        self._handlers[site] = handler

    def host_site(self, site: int, ops: Mapping[str, Callable]) -> None:
        if self._started:
            raise RuntimeError("cannot host sites after workers have forked")
        if site not in self._handlers:
            raise ValueError(f"site {site} has no registered handler")
        self._site_ops[site] = dict(ops)

    # -- lazy fork ----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started or self._closed:
            return
        self._started = True
        sites = sorted(self._site_ops)
        if not sites:
            return  # nothing to host; stays a synchronous parent-only transport
        n = min(self.n_workers, len(sites))
        if self._explicit_shard is not None:
            missing = set(sites) - set(self._explicit_shard)
            if missing:
                raise ValueError(f"shard_map missing sites {sorted(missing)}")
            bad = {s: w for s, w in self._explicit_shard.items() if not 0 <= w < n}
            if bad:
                raise ValueError(f"shard_map worker out of range: {bad}")
            self._shard = {s: self._explicit_shard[s] for s in sites}
        else:
            self._shard = {s: i % n for i, s in enumerate(sites)}
        ctx = get_context("fork")
        for w in range(n):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=self._worker_main,
                args=(w, child_conn),
                name=f"shard-{w}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process, _Channel(parent_conn)))
        self._note_shard_gauges()

    def _note_shard_gauges(self) -> None:
        counts = {w: 0 for w in range(len(self._workers))}
        for worker in self._shard.values():
            counts[worker] += 1
        self.ledger.note_shard_sites(counts)

    # -- worker main loop ---------------------------------------------------

    def _worker_main(self, index: int, conn) -> None:
        channel = _Channel(conn)
        shim = _WorkerShim(self.outer_reliable)
        # The fork copies the parent's telemetry buffers; discard them
        # or the first delta pull would re-ship (double-count) every
        # pre-fork parent entry.
        fork_tel = get_telemetry()
        if fork_tel.enabled:
            fork_tel.registry.drain()
            fork_tel.recorder.drain()
        hosted = {s for s, w in self._shard.items() if w == index}
        for site in hosted:
            self._site_ops[site]["attach"](shim)
        stats = {
            "worker": index,
            "busy_cpu_seconds": 0.0,
            "busy_wall_seconds": 0.0,
            "commands": 0,
            "envelopes_out": 0,
        }
        while True:
            try:
                msg = channel.recv()
            except EOFError:
                return
            kind = msg[0]
            if kind == "stop":
                return
            cpu0, wall0 = time.process_time(), time.perf_counter()
            result, err = None, None
            try:
                if kind in ("call", "cast"):
                    _, site, op, args = msg
                    if site not in hosted:
                        raise RuntimeError(
                            f"worker {index} does not host site {site}"
                        )
                    result = self._site_ops[site][op](*args)
                elif kind == "deliver":
                    env = msg[1]
                    if env.dst not in hosted:
                        raise RuntimeError(
                            f"worker {index} got envelope for unhosted site {env.dst}"
                        )
                    self._handlers[env.dst](env)
                elif kind == "adopt":
                    _, site, blob = msg
                    ops = self._site_ops[site]
                    ops["attach"](shim)
                    ops["reset_fresh"]()
                    ops["restore"](blob)
                    hosted.add(site)
                elif kind == "drop":
                    hosted.discard(msg[1])
                elif kind == "stats":
                    result = dict(stats, hosted_sites=sorted(hosted))
                elif kind == "telemetry":
                    # Out-of-band telemetry delta: the worker's registry
                    # and flight-recorder contents since the last pull.
                    # Only ever requested by the parent at barrier
                    # quiescence with telemetry enabled, so it never
                    # interleaves with data ops.
                    tel = get_telemetry()
                    if tel.enabled:
                        result = (tel.registry.drain(), tel.recorder.drain())
                    else:
                        result = ({}, [])
                else:  # pragma: no cover - protocol bug
                    raise RuntimeError(f"unknown command {kind!r}")
            except BaseException:
                err = traceback.format_exc()
            stats["busy_cpu_seconds"] += time.process_time() - cpu0
            stats["busy_wall_seconds"] += time.perf_counter() - wall0
            stats["commands"] += 1
            outbox = shim.drain()
            stats["envelopes_out"] += len(outbox)
            reply_kind = "call" if kind in ("call", "stats", "telemetry") else kind
            try:
                channel.send(("ret", reply_kind, result, outbox, err))
            except BrokenPipeError:  # pragma: no cover - parent went away
                return

    # -- parent-side command plumbing ---------------------------------------

    @staticmethod
    def _describe_cmd(msg: tuple) -> str:
        kind = msg[0]
        if kind in ("call", "cast"):
            return f"{kind} {msg[2]}@site{msg[1]}"
        if kind == "deliver":
            env = msg[1]
            return f"deliver {env.kind}@site{env.dst}"
        return kind

    def _send_cmd(self, w: int, msg: tuple) -> None:
        handle = self._workers[w]
        # Opportunistically drain ready replies first: keeps the pipes
        # from filling up (and deadlocking) under envelope-heavy
        # barriers without changing any per-link ordering — replies are
        # consumed FIFO per worker either way.
        while handle.pending and handle.channel.poll():
            self._pump(w)
        handle.pending += 1
        desc = self._describe_cmd(msg)
        handle.inflight.append(desc)
        self.flight.record(
            {"type": "state", "plane": "process", "name": "cmd", "worker": w, "op": desc}
        )
        handle.channel.send(msg)

    #: how often the reply wait re-checks worker liveness (seconds).
    PUMP_POLL = 0.05
    #: optional wall-clock bound on one reply; ``None`` disables it (a
    #: legitimately long op — a huge inference tick — must not be killed
    #: by an arbitrary timer; *dead* workers are caught by the liveness
    #: poll within :attr:`PUMP_POLL` regardless).
    PUMP_TIMEOUT: float | None = None

    def _pump(self, w: int) -> None:
        """Receive and process exactly one reply from worker ``w``.

        The wait is a liveness-checking poll, not a blocking read: a
        worker that died mid-command raises :class:`WorkerDied` naming
        the worker and the oldest in-flight op, instead of leaving the
        parent blocked on the pipe forever.
        """
        handle = self._workers[w]
        op = handle.inflight[0] if handle.inflight else "<unknown op>"
        waited = 0.0
        while not handle.channel.poll(self.PUMP_POLL):
            if not handle.process.is_alive():
                # One final poll: the reply may have been written just
                # before the process exited (e.g. a clean "stop" race).
                if handle.channel.poll():
                    break
                raise self._worker_died(
                    w, op,
                    f"process exited with code {handle.process.exitcode}",
                )
            waited += self.PUMP_POLL
            if self.PUMP_TIMEOUT is not None and waited >= self.PUMP_TIMEOUT:
                raise self._worker_died(w, op, f"no reply within {waited:.1f}s")
        try:
            reply = handle.channel.recv()
        except EOFError:
            raise self._worker_died(w, op, "pipe closed mid-reply") from None
        handle.pending -= 1
        if handle.inflight:
            handle.inflight.popleft()
        _, kind, result, outbox, err = reply
        if err is not None:
            raise RuntimeError(f"shard worker {w} op failed:\n{err}")
        for env in outbox:
            worker = self._shard.get(env.src)
            if worker is not None:
                self.ledger.note_shard_traffic(worker, out_bytes=len(env.payload))
            self.egress(env)
        if kind == "call":
            self._call_results.append(result)

    def _worker_died(self, w: int, op: str, reason: str) -> WorkerDied:
        """Build the fatal diagnosis: the dead worker's flight-recorder
        tail rides the exception, and — when telemetry is active with a
        dump directory — the full window is dumped to JSONL."""
        tail = self.flight.tail(WorkerDied.TAIL, worker=w)
        tel = get_telemetry()
        if tel.enabled:
            for entry in tail:
                tel.recorder.record(entry)
            tel.record_state("process", "worker.died", worker=w, op=op, reason=reason)
            if tel.dump_dir is not None:
                tel.dump(f"worker-died-{w}")
        return WorkerDied(w, op, reason, tail=tail)

    def _default_egress(self, env: Envelope) -> None:
        self.ledger.send(env.src, env.dst, env.kind, env.payload)
        self.deliver(env)

    # -- Transport interface ------------------------------------------------

    def send(self, env: Envelope) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        self.ledger.send(env.src, env.dst, env.kind, env.payload)
        self.deliver(env)

    def deliver(self, env: Envelope) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        w = self._shard.get(env.dst) if self._started else None
        if w is not None:
            self.ledger.note_shard_traffic(w, in_bytes=len(env.payload))
            self._send_cmd(w, ("deliver", env))
            return
        handler = self._handlers.get(env.dst)
        if handler is not None:
            handler(env)

    def dispatch(self, site: int, fn: Callable[[], None]) -> None:
        if self._started and site in self._shard:
            raise RuntimeError(
                "worker-hosted sites take named ops (site_cast), not closures"
            )
        fn()

    def site_call(self, site: int, op: str, *args: object) -> object:
        ops = self._site_ops.get(site)
        if ops is None:
            raise KeyError(f"site {site} is not hosted")
        if not self._started:
            # Pre-fork (all registration still open): run on the parent
            # objects — exactly the state the workers will inherit.
            return ops[op](*args)
        w = self._shard[site]
        self._send_cmd(w, ("call", site, op, args))
        while not self._call_results:
            self._pump(w)
        return self._call_results.pop()

    def site_cast(self, site: int, op: str, *args: object) -> None:
        if site not in self._site_ops:
            raise KeyError(f"site {site} is not hosted")
        self._ensure_started()
        if not self._workers:
            self._site_ops[site][op](*args)
            return
        self._send_cmd(self._shard[site], ("cast", site, op, args))

    def flush(self) -> None:
        while any(handle.pending for handle in self._workers):
            for w in range(len(self._workers)):
                while self._workers[w].pending:
                    self._pump(w)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.channel.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.channel.close()
        self._workers.clear()

    # -- sharding and rebalancing --------------------------------------------

    @property
    def shard_map(self) -> dict[int, int]:
        """Current site -> worker assignment (parent-side truth)."""
        return dict(self._shard)

    def move_site(self, site: int, target: int) -> None:
        """Reassign ``site`` to worker ``target`` via checkpoint/restore.

        Must be called at a quiescent barrier (the cluster calls
        :meth:`maybe_rebalance` between intervals, after its flush), so
        the site's unacked outbox is drained and no envelope for it is
        in flight."""
        self._ensure_started()
        if site not in self._shard:
            raise KeyError(f"site {site} is not hosted")
        if not 0 <= target < len(self._workers):
            raise ValueError(f"no worker {target}")
        source = self._shard[site]
        if target == source:
            return
        blob = self.site_call(site, "snapshot")
        if peek_checkpoint_site(blob) != site:
            raise RuntimeError(f"site {site} produced a foreign checkpoint")
        self.flush()
        self._send_cmd(source, ("drop", site))
        self._send_cmd(target, ("adopt", site, blob))
        self._shard[site] = target
        self.flush()
        self.ledger.note_rebalance()
        self._note_shard_gauges()

    def maybe_rebalance(self) -> bool:
        """One between-intervals rebalance step; returns True on a move.

        The load signal is each site's ledger byte traffic (in + out,
        per-link counters) since the previous step — a pure function of
        parent-side state, so the decision sequence is deterministic.
        ``scheduled_moves`` entries override the policy at their
        boundary index."""
        if not self._started or not self._workers:
            return False
        self._boundaries += 1
        forced = self.scheduled_moves.get(self._boundaries)
        if forced is not None:
            site, target = forced
            self.move_site(site, target)
            return True
        if not self.rebalance or len(self._workers) < 2:
            return False
        loads = dict.fromkeys(self._shard, 0)
        for (src, dst), nbytes in self.ledger.bytes_by_link.items():
            if src in loads:
                loads[src] += nbytes
            if dst in loads:
                loads[dst] += nbytes
        deltas = {s: loads[s] - self._last_loads.get(s, 0) for s in loads}
        self._last_loads = loads
        per_worker = [0] * len(self._workers)
        for s, w in self._shard.items():
            per_worker[w] += deltas[s]
        busiest = max(range(len(per_worker)), key=lambda w: (per_worker[w], -w))
        idlest = min(range(len(per_worker)), key=lambda w: (per_worker[w], w))
        own = sorted(s for s, w in self._shard.items() if w == busiest)
        if busiest == idlest or len(own) < 2:
            return False
        if per_worker[busiest] <= (
            self.REBALANCE_RATIO * per_worker[idlest] + self.REBALANCE_MIN_BYTES
        ):
            return False
        site = max(own, key=lambda s: (deltas[s], -s))
        self.move_site(site, idlest)
        return True

    # -- introspection --------------------------------------------------------

    def collect_telemetry(self, tel=None) -> int:
        """Pull each worker's telemetry delta over the pipe plane.

        Called by the cluster between intervals — at barrier quiescence,
        never mid-phase — and only when telemetry is enabled, so a
        telemetry-off run issues a byte-identical command stream to a
        build without this subsystem. Registry deltas merge into the
        parent registry; span/state entries land in the parent recorder
        (worker-stamped) and in the transport's own flight ring so a
        later :class:`WorkerDied` can quote them. Returns the number of
        entries absorbed.
        """
        tel = tel if tel is not None else get_telemetry()
        if not tel.enabled or not self._started or not self._workers:
            return 0
        absorbed = 0
        for w in range(len(self._workers)):
            self._send_cmd(w, ("telemetry",))
            while not self._call_results:
                self._pump(w)
            registry_delta, entries = self._call_results.pop()
            tel.registry.merge(registry_delta)
            for entry in entries:
                entry.setdefault("worker", w)
                tel.recorder.record(entry)
                self.flight.record(entry)
                absorbed += 1
        return absorbed

    def worker_stats(self) -> list[dict]:
        """Per-worker counters: busy CPU/wall seconds, commands,
        envelopes originated, hosted sites. Empty before the fork."""
        if not self._started or not self._workers:
            return []
        out = []
        for w in range(len(self._workers)):
            self._send_cmd(w, ("stats",))
            while not self._call_results:
                self._pump(w)
            out.append(self._call_results.pop())
        return out
