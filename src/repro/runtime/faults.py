"""Deterministic fault injection for the site runtime.

Real RFID federations (dock doors, cold-chain trucks) lose, reorder,
duplicate, and delay messages. :class:`FaultyTransport` is a decorator
over any reliable :class:`~repro.runtime.transport.Transport` that
injects exactly those faults per ``(src, dst)`` link, driven by a
seeded :class:`FaultPlan` — the same seed always produces the same
fault schedule, which is what makes the chaos test harness's
bit-identity invariant checkable.

Accounting discipline (the ledger invariant): the *first* transmission
of each sequenced envelope is accounted under the envelope's own kind,
so per-kind data totals stay byte-identical to a fault-free run. Every
repeat — a reliability-layer retransmit or a network-injected duplicate
— is accounted under the ``retransmit`` kind, and acknowledgement
frames under ``ack``; together those two kinds are the run's fault
overhead (Table 5d).

Eventual delivery is guaranteed by construction: each sequenced message
is dropped at most :attr:`LinkFaults.max_drops` times and delayed at
most :attr:`LinkFaults.max_delay` flush rounds, so the cluster's
ack/retransmit loop always converges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro._util.rng import spawn_rng
from repro.distributed.network import ACK, EDGE_ACK, RETRANSMIT
from repro.obs import get_telemetry
from repro.runtime.envelope import Envelope
from repro.runtime.transport import Handler, InProcessTransport, Transport

__all__ = ["LinkFaults", "FaultPlan", "FaultyTransport"]


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one directed ``(src, dst)`` link.

    Probabilities apply independently per transmission attempt, in
    order: drop, duplicate, delay. A delayed message is held for 1 to
    ``max_delay`` flush rounds; messages released in the same round are
    re-shuffled, which (together with delays) reorders the link.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 2
    #: per-message drop cap — guarantees eventual delivery.
    max_drops: int = 4

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1), got {p}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least one flush round")
        if self.max_drops < 0:
            raise ValueError("max_drops must be non-negative")

    @property
    def lossless(self) -> bool:
        return self.drop == 0.0 and self.duplicate == 0.0 and self.delay == 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded assignment of :class:`LinkFaults` to links.

    ``default`` applies to every link not named in ``links``. The seed
    feeds one independent RNG stream per link, so the fault schedule of
    a link depends only on the seed and that link's own traffic order —
    deterministic even when the wrapped transport runs sites on worker
    threads (per-link send order is fixed by the cluster's phases).
    """

    seed: int = 0
    default: LinkFaults = LinkFaults()
    links: tuple[tuple[tuple[int, int], LinkFaults], ...] = ()

    @classmethod
    def chaos(
        cls,
        seed: int,
        drop: float = 0.25,
        duplicate: float = 0.2,
        delay: float = 0.25,
        max_delay: int = 3,
    ) -> "FaultPlan":
        """A convenience plan mixing every fault on every link."""
        return cls(
            seed=seed,
            default=LinkFaults(
                drop=drop, duplicate=duplicate, delay=delay, max_delay=max_delay
            ),
        )

    def for_link(self, src: int, dst: int) -> LinkFaults:
        for link, faults in self.links:
            if link == (src, dst):
                return faults
        return self.default


class FaultyTransport(Transport):
    """Chaos decorator: injects seeded per-link faults into a transport.

    Wraps a *reliable* inner transport (default: a fresh
    :class:`InProcessTransport` sharing this ledger) and advertises
    ``reliable = False``, switching nodes to at-least-once delivery
    (sequence numbers, acks, dedup) — see
    :meth:`repro.runtime.node.SiteNode.handle`.
    """

    reliable = False

    def __init__(self, plan: FaultPlan, inner: Transport | None = None) -> None:
        if inner is not None and not inner.reliable:
            raise ValueError("FaultyTransport must wrap a reliable transport")
        super().__init__(None if inner is None else inner.ledger)
        self.plan = plan
        self.inner = inner if inner is not None else InProcessTransport(self.ledger)
        if getattr(self.inner, "hosts_sites", False):
            # A site-hosting inner runs nodes in worker processes, whose
            # outgoing envelopes surface at the parent through the
            # inner's egress hook — repoint it here so worker-origin
            # traffic passes fault injection exactly like local sends.
            # Workers also need their nodes on at-least-once delivery:
            # `outer_reliable` is what the in-worker transport shim
            # advertises to them (set before the fork, inherited by it).
            self.inner.egress = self.send
            self.inner.outer_reliable = False
        self._lock = threading.Lock()
        self._rngs: dict[tuple[int, int], np.random.Generator] = {}
        self._release_rng = spawn_rng(plan.seed, "faults", "release")
        #: sequenced (src, dst, seq) triples already transmitted once.
        self._seen: set[tuple[int, int, int]] = set()
        self._drops: dict[tuple[int, int, str, int], int] = {}
        #: held messages: (release_round, arrival_index, envelope).
        self._held: list[tuple[int, int, Envelope]] = []
        self._round = 0
        self._arrivals = 0
        #: fault totals for reporting: injected events by type.
        self.injected = {"drop": 0, "duplicate": 0, "delay": 0}

    # -- plumbing to the wrapped transport ---------------------------------

    def register(self, site: int, handler: Handler) -> None:
        self.inner.register(site, handler)

    def dispatch(self, site: int, fn) -> None:
        self.inner.dispatch(site, fn)

    def deliver(self, env: Envelope) -> None:
        self.inner.deliver(env)

    def close(self) -> None:
        self.inner.close()

    # -- site hosting (delegated to a process-parallel inner) ---------------

    @property
    def hosts_sites(self) -> bool:  # type: ignore[override]
        return bool(getattr(self.inner, "hosts_sites", False))

    def host_site(self, site, ops) -> None:
        self.inner.host_site(site, ops)

    def site_call(self, site: int, op: str, *args: object) -> object:
        return self.inner.site_call(site, op, *args)

    def site_cast(self, site: int, op: str, *args: object) -> None:
        self.inner.site_cast(site, op, *args)

    def maybe_rebalance(self) -> bool:
        rebalance = getattr(self.inner, "maybe_rebalance", None)
        return rebalance() if rebalance is not None else False

    def worker_stats(self) -> list[dict]:
        stats = getattr(self.inner, "worker_stats", None)
        return stats() if stats is not None else []

    def collect_telemetry(self, tel=None) -> int:
        collect = getattr(self.inner, "collect_telemetry", None)
        return collect(tel) if collect is not None else 0

    # -- fault injection ----------------------------------------------------

    def _link_rng(self, src: int, dst: int) -> np.random.Generator:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._rngs[key] = spawn_rng(self.plan.seed, "faults", src, dst)
        return rng

    def _account(self, env: Envelope, retransmission: bool) -> None:
        if env.kind in (ACK, EDGE_ACK):
            kind = env.kind
        else:
            kind = RETRANSMIT if retransmission else env.kind
        self.ledger.send(env.src, env.dst, kind, env.payload)

    def _hold(self, env: Envelope, rounds: int) -> None:
        self._arrivals += 1
        self._held.append((self._round + rounds, self._arrivals, env))

    def send(self, env: Envelope) -> None:
        # Delivery happens outside the lock: under a synchronous inner
        # transport the handler may itself send (acks, relays), which
        # would re-enter this non-reentrant lock.
        copies = 0
        with self._lock:
            if not env.seq:
                # Unsequenced traffic has no retransmit protection, so
                # faults would silently lose it: pass it through intact.
                self._account(env, False)
                copies = 1
            else:
                copies = self._inject(env)
        for _ in range(copies):
            self.inner.deliver(env)

    def _inject(self, env: Envelope) -> int:
        """Account ``env``, apply the link's fault rolls, and return how
        many copies to deliver right now (held/dropped copies return 0)."""
        faults = self.plan.for_link(env.src, env.dst)
        key = (env.src, env.dst, env.kind, env.seq)
        retransmission = (env.src, env.dst, env.seq) in self._seen
        if env.kind not in (ACK, EDGE_ACK):
            self._seen.add((env.src, env.dst, env.seq))
        self._account(env, retransmission)
        if faults.lossless:
            return 1
        rng = self._link_rng(env.src, env.dst)
        # Fixed draw order per attempt keeps the schedule deterministic
        # regardless of outcomes.
        roll_drop = rng.random()
        roll_dup = rng.random()
        roll_delay = rng.random()
        if roll_drop < faults.drop:
            drops = self._drops.get(key, 0)
            if drops < faults.max_drops:
                self._drops[key] = drops + 1
                self._note_fault("drop", env)
                return 0
        copies = 1
        if roll_dup < faults.duplicate:
            copies = 2
            self._note_fault("duplicate", env)
            self._account(env, True)  # the extra wire copy
        if roll_delay < faults.delay:
            self._note_fault("delay", env)
            rounds = int(rng.integers(1, faults.max_delay + 1))
            for _ in range(copies):
                self._hold(env, rounds)
            return 0
        return copies

    def _note_fault(self, fault: str, env: Envelope) -> None:
        """Count an injected fault (legacy dict + registry series) and,
        when telemetry is on, log the state transition to the flight
        recorder. Telemetry never feeds back into the RNG draws or the
        delivery decision, so traced and untraced schedules are equal."""
        self.injected[fault] += 1
        self.ledger.registry.counter("faults_injected", fault=fault).inc()
        tel = get_telemetry()
        if tel.enabled:
            tel.recorder.record_state(
                "faults", f"inject.{fault}",
                src=env.src, dst=env.dst, kind=env.kind, seq=env.seq,
            )

    # -- the flush barrier ---------------------------------------------------

    def flush(self) -> None:
        """Deliver everything due, advancing one delay round per call.

        Messages still held for future rounds survive the call — the
        cluster's ack/retransmit loop keeps flushing until every
        sequenced envelope is acknowledged, so delays expire and late
        duplicates drain into the dedup layer.
        """
        while True:
            with self._lock:
                self._round += 1
                due = [item for item in self._held if item[0] <= self._round]
                self._held = [item for item in self._held if item[0] > self._round]
                # Shuffle the round's releases: reordering within the
                # link beyond what staggered delays already produce.
                order = self._release_rng.permutation(len(due)) if due else []
                batch = [due[i][2] for i in order]
            for env in batch:
                self.inner.deliver(env)
            self.inner.flush()
            if not batch:
                return

    def pending_count(self) -> int:
        """Messages still held for future flush rounds."""
        with self._lock:
            return len(self._held)

    @property
    def sync_round_limit(self) -> int:
        """Retransmit rounds the cluster barrier should allow.

        A sequenced envelope is forced through after ``max_drops``
        drops plus at most ``max_delay`` rounds in the delay buffer,
        and its ack needs the same on the reverse link — so twice the
        worst link's budget (plus slack) bounds convergence. Capped so
        a pathological plan (e.g. ``max_drops=10**9``) fails loudly in
        bounded time instead of spinning for years.
        """
        faults = [self.plan.default] + [spec for _, spec in self.plan.links]
        worst = max(spec.max_drops + spec.max_delay for spec in faults)
        return max(64, min(2 * worst + 8, 4096))
