"""The federation orchestrator: periodic ticks + message-driven migration.

:class:`Cluster` replaces the old lockstep ``for``-loop deployment with
an explicit event-driven schedule per inference interval:

1. **Route** — in deterministic site order, each node's fresh arrivals
   (objects first read during the elapsed interval) are resolved
   through the ONS, and one ``migrate-request`` per ``(dst, src)`` pair
   is sent. The previous sites respond with **batched**
   ``inference-state``/``query-state`` bundles (centroid-compressed,
   §4.2) which the arrival site absorbs — all via transport messages.
   A flush between sites keeps multi-hop chains ordered, so threaded
   and in-process runs are bit-identical.
2. **Tick** — every node's inference run for the boundary is dispatched
   onto its site's execution context (concurrently under
   :class:`~repro.runtime.transport.ThreadedTransport`) and barriered.
   The run that covers an object's arrival readings therefore already
   holds its migrated priors (§4.1). Local query processing (new object
   events × sensor readings) happens inside the tick, on the node's own
   context.
3. **Hand-off** — query-automaton state owed from this interval's
   migrations is sent now (Appendix B): the origin's tick has just
   processed the departing objects' final local events, so the
   automaton state is final; the destination merges it with any partial
   match formed from the objects' first local events.
4. **Snapshot** — the global containment estimate is recorded for the
   error metrics.

The site-serial routing phase is cheap (dictionary work and small
payloads); the expensive inference runs are what parallelize.

**Fault tolerance.** Every barrier is a *reliable* barrier: on an
unreliable transport (:class:`~repro.runtime.faults.FaultyTransport`)
the cluster keeps flushing and retransmitting each node's unacked
envelopes until every sequenced message is acknowledged, so by the end
of each phase all data has actually been applied regardless of drops,
duplicates, delays, or reordering. :meth:`Cluster.crash` /
:meth:`Cluster.recover` schedule a site dying mid-interval and
rejoining from its last per-boundary checkpoint
(:meth:`~repro.runtime.node.SiteNode.snapshot`); both must land inside
the same interval — a site still down when the next boundary's
processing starts raises, because its tick cannot be skipped without
changing results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.ons import ObjectNamingService
from repro.metrics.accuracy import containment_error_rate
from repro.obs import get_telemetry
from repro.runtime.envelope import MIGRATE_REQUEST, Envelope, MigrationEvent, encode_tag_list
from repro.runtime.node import SiteNode
from repro.runtime.transport import InProcessTransport, Transport
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import GroundTruth, Trace

__all__ = ["Cluster", "ClusterSnapshot"]

MigrationStrategy = Literal["none", "collapsed"]


@dataclass
class ClusterSnapshot:
    """Global containment estimate at one interval boundary."""

    time: int
    containment: dict[EPC, EPC | None]
    known: set[EPC] = field(default_factory=set)


class Cluster:
    """Runs one :class:`SiteNode` per trace over a pluggable transport."""

    #: fallback cap on retransmit rounds per barrier, used when the
    #: transport does not advertise its own convergence bound (see
    #: ``FaultyTransport.sync_round_limit``). Hitting the limit means
    #: the transport genuinely cannot deliver some envelope.
    MAX_SYNC_ROUNDS = 64

    def __init__(
        self,
        traces: Sequence[Trace],
        config: ServiceConfig | None = None,
        strategy: MigrationStrategy = "collapsed",
        transport: Transport | None = None,
        batch_migrations: bool = True,
        migration_listener: Callable[[int, int, list[EPC], int], None] | None = None,
    ) -> None:
        if strategy not in ("none", "collapsed"):
            raise ValueError(f"unknown migration strategy {strategy!r}")
        self.config = config or ServiceConfig(emit_events=False)
        self.strategy = strategy
        self.transport = transport if transport is not None else InProcessTransport()
        self.network = self.transport.ledger
        self.ons = ObjectNamingService(self.network)
        self.batch_migrations = batch_migrations
        self.migration_listener = migration_listener
        self.nodes = [
            SiteNode(trace, self.config, batch_migrations=batch_migrations)
            for trace in traces
        ]
        for node in self.nodes:
            node.bind(self.transport)
        #: whether site state lives in worker processes: if so, the
        #: cluster drives every node through named ops (RPC) instead of
        #: direct method calls, and pulls worker state back at the end.
        self._hosted = bool(getattr(self.transport, "hosts_sites", False))
        self._ops = {node.site: self._site_ops_for(node) for node in self.nodes}
        if self._hosted:
            for site, ops in self._ops.items():
                self.transport.host_site(site, ops)
        self._current_site: dict[EPC, int] = {}
        self.snapshots: list[ClusterSnapshot] = []
        self.last_boundary = 0
        # -- fault-tolerance state ------------------------------------------
        #: query factories, kept so a crashed site can rebuild instances.
        self._query_factories: dict[str, Callable[[int], Any]] = {}
        #: scheduled (time, order, op, site) crash/recover events.
        self._fault_events: list[tuple[int, int, str, int]] = []
        self._fault_cursor = 0
        #: latest per-site checkpoints (taken each boundary while fault
        #: events are scheduled; see :meth:`checkpoint_all`).
        self._checkpoints: dict[int, bytes] = {}
        self._down: set[int] = set()
        #: attached serving frontends, notified after each boundary's
        #: archive appends (epoch-tagged cache invalidation).
        self._frontends: list[Any] = []
        #: attached archive read replicas, caught up after each
        #: boundary's appends (incremental segment deltas).
        self._replicas: list[Any] = []

    def _site_ops_for(self, node: SiteNode) -> dict[str, Callable]:
        """The named-op table the cluster drives one site through.

        On an ordinary transport these run in-process (see
        :meth:`_site_call` — identical to the old direct calls); on a
        site-hosting transport the table crosses into a worker at fork
        time and the same names are invoked by RPC. Bound methods and
        lambdas are fine: the table is registered *before* the fork and
        crosses by inheritance, never by pickle.
        """
        site = node.site
        return {
            # transport rebinding at fork time (worker outbox shim)
            "attach": node.rebind_transport,
            # interval schedule
            "poll_arrivals": node.poll_arrivals,
            "send": node.send,
            "advance_to": node.advance_to,
            "flush_query_handoffs": node.flush_query_handoffs,
            # reliable barrier
            "unacked_count": lambda: len(node.unacked_envelopes()),
            "retransmit_unacked": node.retransmit_unacked,
            # fault tolerance / rebalancing (checkpoint path)
            "snapshot": node.snapshot,
            "restore": node.restore,
            "reset_fresh": lambda: node.reset(self._fresh_queries(site)),
            # observation
            "containment_probe": lambda tags: {
                tag: node.service.containment.get(tag) for tag in tags
            },
            "seen": lambda: set(node.seen),
            "archive_boundary": lambda: node.archive.last_boundary,
        }

    def _site_call(self, site: int, op: str, *args: object) -> object:
        """Run one named op against ``site``, wherever its state lives."""
        if self._hosted:
            return self.transport.site_call(site, op, *args)
        return self._ops[site][op](*args)

    # -- registration ------------------------------------------------------

    @property
    def services(self) -> list[StreamingInference]:
        return [node.service for node in self.nodes]

    def add_query(self, name: str, factory: Callable[[int], Any]) -> None:
        """Instantiate one continuous query per site (``factory(site)``)."""
        self._query_factories[name] = factory
        for node in self.nodes:
            node.add_query(name, factory(node.site))

    def set_sensor_streams(self, streams: Mapping[int, Iterable[Any]]) -> None:
        """Attach per-site sensor streams consumed by the queries."""
        by_site = {node.site: node for node in self.nodes}
        for site, readings in streams.items():
            by_site[site].set_sensor_stream(readings)

    def attach_frontend(self, frontend: Any) -> None:
        """Wire a :class:`~repro.serving.frontend.QueryFrontend` in.

        The frontend registers on the cluster's transport (scatter-
        gather targets every site) and is notified after each boundary's
        archive appends so its epoch-tagged result cache invalidates.
        """
        frontend.bind(self.transport, [node.site for node in self.nodes])
        self._frontends.append(frontend)
        for node in self.nodes:
            frontend.note_append(
                node.site, self._site_call(node.site, "archive_boundary")
            )

    def attach_replica(self, replica: Any) -> None:
        """Wire a parent-resident :class:`~repro.serving.replica.ArchiveReplica`.

        The replica registers on the cluster's transport, catches up
        immediately (its primary serves ``replica-fetch`` envelopes),
        and is re-synced after every boundary's archive appends — so
        its answers track the primary with at most one boundary of lag
        during an interval and zero lag between intervals. Replicas
        hosted on transport workers are wired by hand instead (register
        + ``host_site`` before the fork).
        """
        replica.bind(self.transport)
        self._replicas.append(replica)
        replica.catch_up()

    # -- the interval schedule ---------------------------------------------

    def run(self, horizon: int) -> None:
        """Advance every site to ``horizon``, one interval at a time."""
        interval = self.config.run_interval
        tel = get_telemetry()
        for boundary in range(self.last_boundary + interval, horizon + 1, interval):
            # Crashes/recoveries scheduled inside the elapsed interval
            # take effect before the boundary's processing begins.
            self._apply_fault_events(boundary)
            # Route first: objects that arrived during the elapsed
            # interval get their migrated state absorbed *before* the
            # run that covers their arrival readings (§4.1 — the new
            # site retrieves state when the object reaches it).
            with tel.span("federation", "route", boundary=boundary):
                for node in self.nodes:
                    fresh = self._site_call(
                        node.site, "poll_arrivals", boundary - interval, boundary
                    )
                    self._route_arrivals(node, fresh, boundary)
                    self._sync()
            # Then tick every site — concurrently under a threaded or
            # process transport; the runs are independent given routed
            # state.
            with tel.span("federation", "tick", boundary=boundary):
                for node in self.nodes:
                    if self._hosted:
                        self.transport.site_cast(node.site, "advance_to", boundary)
                    else:
                        self.transport.dispatch(
                            node.site, partial(node.advance_to, boundary)
                        )
                self._sync()
            # Finally hand off query state owed from this interval's
            # migrations: the origin's tick just processed the objects'
            # final local events, so the automaton state is now final.
            with tel.span("federation", "handoff", boundary=boundary):
                for node in self.nodes:
                    self._site_call(node.site, "flush_query_handoffs", boundary)
                    self._sync()
            self.snapshots.append(self._snapshot(boundary))
            for frontend in self._frontends:
                for node in self.nodes:
                    frontend.note_append(
                        node.site, self._site_call(node.site, "archive_boundary")
                    )
            with tel.span("archive", "replica.catchup", boundary=boundary):
                for replica in self._replicas:
                    replica.catch_up()
            self.last_boundary = boundary
            if self._fault_cursor < len(self._fault_events):
                # Checkpoints are only needed while crash/recover events
                # are still ahead; once the last one has been applied,
                # per-boundary serialization would be pure waste.
                with tel.span("federation", "checkpoint", boundary=boundary):
                    self.checkpoint_all()
            # Between intervals — at barrier quiescence — a sharded
            # transport may reassign logical sites across its workers.
            rebalance = getattr(self.transport, "maybe_rebalance", None)
            if rebalance is not None:
                rebalance()
            # Also at quiescence: pull worker-side telemetry deltas back
            # over the pipe plane. Out-of-band by construction — this
            # command is only ever issued when telemetry is enabled and
            # only between intervals, so a telemetry-off run's transport
            # command stream is byte-identical to pre-telemetry builds.
            if tel.enabled:
                collect = getattr(self.transport, "collect_telemetry", None)
                if collect is not None:
                    collect(tel)
        if self._hosted:
            self._sync_back()

    def _sync(self) -> None:
        """The reliable barrier: flush, then retransmit until acked.

        On a reliable transport this is a single flush. On a lossy one,
        each round re-sends every node's unacked envelopes and flushes
        again (advancing the fault plan's delay rounds), so the barrier
        returns only once every sequenced message has provably been
        applied — delivery faults can reorder work *within* a phase but
        never leak messages across phases.
        """
        self.transport.flush()
        if self.transport.reliable:
            return
        limit = getattr(self.transport, "sync_round_limit", self.MAX_SYNC_ROUNDS)
        for _ in range(limit):
            if not any(
                self._site_call(node.site, "unacked_count") for node in self.nodes
            ):
                return
            for node in self.nodes:
                self._site_call(node.site, "retransmit_unacked")
            self.transport.flush()
        raise RuntimeError(
            f"at-least-once delivery did not converge in {limit} "
            "rounds — the fault plan never lets some envelope through"
        )

    def _route_arrivals(self, node: SiteNode, fresh: list[EPC], boundary: int) -> None:
        if not fresh:
            return
        site = node.site
        by_source: dict[int, list[EPC]] = {}
        for tag in fresh:
            if self.strategy == "none":
                self._current_site[tag] = site
                continue
            previous = self.ons.lookup(tag, site)
            self.ons.update(tag, site)
            self._current_site[tag] = site
            if previous is not None and previous != site:
                by_source.setdefault(previous, []).append(tag)
        if self.strategy != "collapsed":
            return
        for src, tags in sorted(by_source.items()):
            self._site_call(
                site,
                "send",
                Envelope(site, src, MIGRATE_REQUEST, encode_tag_list(tags), boundary),
            )
            if self.migration_listener is not None:
                self.migration_listener(src, site, tags, boundary)

    # -- crash/recover scheduling -------------------------------------------

    def crash(self, site: int, time: int) -> None:
        """Schedule ``site`` to crash at stream time ``time``.

        The crash takes effect at the next boundary whose interval
        contains ``time``: the node loses *all* volatile state (service,
        query automata, arrival/delivery cursors), exactly as a process
        restart would. Pair it with :meth:`recover` inside the same
        interval so the site is back before its next tick.
        """
        self._schedule_fault(site, time, "crash")

    def recover(self, site: int, time: int) -> None:
        """Schedule ``site`` to restart from its last checkpoint at ``time``."""
        self._schedule_fault(site, time, "recover")

    def _schedule_fault(self, site: int, time: int, op: str) -> None:
        if site not in {node.site for node in self.nodes}:
            raise ValueError(f"unknown site {site}")
        if time <= self.last_boundary:
            raise ValueError(
                f"cannot schedule {op} at t={time}: boundary {self.last_boundary} "
                "already processed"
            )
        self._fault_events.append((time, len(self._fault_events), op, site))
        self._fault_events.sort()
        if self.last_boundary and not self._checkpoints:
            # Faults scheduled mid-session: state only mutates inside
            # run(), so the nodes still hold exactly their state at
            # last_boundary — capture it now or a recovery landing in
            # the very next interval would have nothing to restore.
            self.checkpoint_all()

    def _apply_fault_events(self, boundary: int) -> None:
        by_site = {node.site: node for node in self.nodes}
        while (
            self._fault_cursor < len(self._fault_events)
            and self._fault_events[self._fault_cursor][0] <= boundary
        ):
            _, _, op, site = self._fault_events[self._fault_cursor]
            self._fault_cursor += 1
            assert site in by_site
            if op == "crash":
                if site in self._down:
                    raise RuntimeError(f"site {site} is already down")
                get_telemetry().record_state(
                    "federation", "site.crash", site=site, boundary=boundary
                )
                self._site_call(site, "reset_fresh")
                self._down.add(site)
            else:
                if site not in self._down:
                    raise RuntimeError(f"site {site} is not down; cannot recover")
                get_telemetry().record_state(
                    "federation", "site.recover", site=site, boundary=boundary
                )
                checkpoint = self._checkpoints.get(site)
                if checkpoint is not None:
                    self._site_call(site, "restore", checkpoint)
                elif self.last_boundary:
                    # Recovering without a checkpoint is only sound
                    # before the first boundary (initial state *is* the
                    # time-zero state); afterwards it would silently
                    # resume with amnesia and corrupt results.
                    raise RuntimeError(
                        f"no checkpoint to recover site {site} from at "
                        f"boundary {boundary}"
                    )
                self._down.discard(site)
        if self._down:
            raise RuntimeError(
                f"sites {sorted(self._down)} are still down at boundary {boundary}; "
                "schedule recover() within the same interval as the crash"
            )

    def _fresh_queries(self, site: int) -> dict[str, Any]:
        return {name: factory(site) for name, factory in self._query_factories.items()}

    def _sync_back(self) -> None:
        """Pull every worker-hosted site's state into the parent replicas.

        Callers read results straight off the nodes after a run (query
        alerts, archives, history, migration records, service changes) —
        state that lives in the workers on a hosting transport. A site
        checkpoint captures all of it, so the end-of-run pull is the
        same bit-exact snapshot/restore path crash recovery and shard
        rebalancing use: reset each parent replica with fresh query
        instances (restore assumes empty automata), then restore the
        worker's checkpoint into it.
        """
        for node in self.nodes:
            data = self._site_call(node.site, "snapshot")
            node.reset(self._fresh_queries(node.site))
            node.restore(data)

    def checkpoint_all(self) -> dict[int, bytes]:
        """Checkpoint every site's full state; returns the snapshots.

        Taken automatically at each interval boundary once any crash or
        recovery is scheduled, so :meth:`recover` always restores from
        the most recent boundary.
        """
        for node in self.nodes:
            self._checkpoints[node.site] = self._site_call(node.site, "snapshot")
        return dict(self._checkpoints)

    def fault_overhead_bytes(self) -> int:
        """Bytes spent on retransmits + acks (0 on reliable transports)."""
        return self.network.fault_overhead_bytes()

    def _snapshot(self, time: int) -> ClusterSnapshot:
        by_site: dict[int, list[EPC]] = {}
        for tag, site in self._current_site.items():
            by_site.setdefault(site, []).append(tag)
        merged: dict[EPC, EPC | None] = {}
        known: set[EPC] = set()
        for site in sorted(by_site):
            tags = by_site[site]
            merged.update(self._site_call(site, "containment_probe", tags))
            known.update(tags)
        if self.strategy == "none":
            # Without ONS traffic, ownership falls to the latest seen set.
            for node in self.nodes:
                known.update(self._site_call(node.site, "seen"))
        return ClusterSnapshot(time, merged, known)

    # -- metrics -----------------------------------------------------------

    @property
    def migrations(self) -> list[MigrationEvent]:
        """All tag-level hand-offs, in global (time, dst, src) order."""
        merged = [m for node in self.nodes for m in node.migrations_in]
        merged.sort(key=lambda m: (m.time, m.dst, m.src, m.tag))
        return merged

    def containment_error(self, truth: GroundTruth) -> float:
        """Mean containment error across interval snapshots.

        Each snapshot is scored over the items any site has seen by
        then, against the ground truth just before the snapshot time
        (clamped at 0 for a degenerate time-0 snapshot).
        """
        scores = []
        for snap in self.snapshots:
            items = [t for t in snap.known if t.kind is TagKind.ITEM]
            if not items:
                continue
            at_time = max(snap.time - 1, 0)
            scores.append(
                containment_error_rate(truth, snap.containment, at_time, items)
            )
        return float(np.mean(scores)) if scores else 0.0

    def detected_changes(self):
        """Change points pooled across sites."""
        out = []
        for node in self.nodes:
            out.extend(node.service.changes)
        return out

    def communication_bytes(self) -> int:
        return self.network.total_bytes()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
