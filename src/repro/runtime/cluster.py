"""The federation orchestrator: periodic ticks + message-driven migration.

:class:`Cluster` replaces the old lockstep ``for``-loop deployment with
an explicit event-driven schedule per inference interval:

1. **Route** — in deterministic site order, each node's fresh arrivals
   (objects first read during the elapsed interval) are resolved
   through the ONS, and one ``migrate-request`` per ``(dst, src)`` pair
   is sent. The previous sites respond with **batched**
   ``inference-state``/``query-state`` bundles (centroid-compressed,
   §4.2) which the arrival site absorbs — all via transport messages.
   A flush between sites keeps multi-hop chains ordered, so threaded
   and in-process runs are bit-identical.
2. **Tick** — every node's inference run for the boundary is dispatched
   onto its site's execution context (concurrently under
   :class:`~repro.runtime.transport.ThreadedTransport`) and barriered.
   The run that covers an object's arrival readings therefore already
   holds its migrated priors (§4.1). Local query processing (new object
   events × sensor readings) happens inside the tick, on the node's own
   context.
3. **Hand-off** — query-automaton state owed from this interval's
   migrations is sent now (Appendix B): the origin's tick has just
   processed the departing objects' final local events, so the
   automaton state is final; the destination merges it with any partial
   match formed from the objects' first local events.
4. **Snapshot** — the global containment estimate is recorded for the
   error metrics.

The site-serial routing phase is cheap (dictionary work and small
payloads); the expensive inference runs are what parallelize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.ons import ObjectNamingService
from repro.metrics.accuracy import containment_error_rate
from repro.runtime.envelope import MIGRATE_REQUEST, Envelope, MigrationEvent, encode_tag_list
from repro.runtime.node import SiteNode
from repro.runtime.transport import InProcessTransport, Transport
from repro.sim.tags import EPC, TagKind
from repro.sim.trace import GroundTruth, Trace

__all__ = ["Cluster", "ClusterSnapshot"]

MigrationStrategy = Literal["none", "collapsed"]


@dataclass
class ClusterSnapshot:
    """Global containment estimate at one interval boundary."""

    time: int
    containment: dict[EPC, EPC | None]
    known: set[EPC] = field(default_factory=set)


class Cluster:
    """Runs one :class:`SiteNode` per trace over a pluggable transport."""

    def __init__(
        self,
        traces: Sequence[Trace],
        config: ServiceConfig | None = None,
        strategy: MigrationStrategy = "collapsed",
        transport: Transport | None = None,
        batch_migrations: bool = True,
        migration_listener: Callable[[int, int, list[EPC], int], None] | None = None,
    ) -> None:
        if strategy not in ("none", "collapsed"):
            raise ValueError(f"unknown migration strategy {strategy!r}")
        self.config = config or ServiceConfig(emit_events=False)
        self.strategy = strategy
        self.transport = transport if transport is not None else InProcessTransport()
        self.network = self.transport.ledger
        self.ons = ObjectNamingService(self.network)
        self.batch_migrations = batch_migrations
        self.migration_listener = migration_listener
        self.nodes = [
            SiteNode(trace, self.config, batch_migrations=batch_migrations)
            for trace in traces
        ]
        for node in self.nodes:
            node.bind(self.transport)
        self._current_site: dict[EPC, int] = {}
        self.snapshots: list[ClusterSnapshot] = []
        self.last_boundary = 0

    # -- registration ------------------------------------------------------

    @property
    def services(self) -> list[StreamingInference]:
        return [node.service for node in self.nodes]

    def add_query(self, name: str, factory: Callable[[int], Any]) -> None:
        """Instantiate one continuous query per site (``factory(site)``)."""
        for node in self.nodes:
            node.add_query(name, factory(node.site))

    def set_sensor_streams(self, streams: Mapping[int, Iterable[Any]]) -> None:
        """Attach per-site sensor streams consumed by the queries."""
        by_site = {node.site: node for node in self.nodes}
        for site, readings in streams.items():
            by_site[site].set_sensor_stream(readings)

    # -- the interval schedule ---------------------------------------------

    def run(self, horizon: int) -> None:
        """Advance every site to ``horizon``, one interval at a time."""
        interval = self.config.run_interval
        for boundary in range(self.last_boundary + interval, horizon + 1, interval):
            # Route first: objects that arrived during the elapsed
            # interval get their migrated state absorbed *before* the
            # run that covers their arrival readings (§4.1 — the new
            # site retrieves state when the object reaches it).
            for node in self.nodes:
                fresh = node.poll_arrivals(boundary - interval, boundary)
                self._route_arrivals(node, fresh, boundary)
                self.transport.flush()
            # Then tick every site — concurrently under a threaded
            # transport; the runs are independent given routed state.
            for node in self.nodes:
                self.transport.dispatch(node.site, partial(node.advance_to, boundary))
            self.transport.flush()
            # Finally hand off query state owed from this interval's
            # migrations: the origin's tick just processed the objects'
            # final local events, so the automaton state is now final.
            for node in self.nodes:
                node.flush_query_handoffs(boundary)
                self.transport.flush()
            self.snapshots.append(self._snapshot(boundary))
            self.last_boundary = boundary

    def _route_arrivals(self, node: SiteNode, fresh: list[EPC], boundary: int) -> None:
        if not fresh:
            return
        site = node.site
        by_source: dict[int, list[EPC]] = {}
        for tag in fresh:
            if self.strategy == "none":
                self._current_site[tag] = site
                continue
            previous = self.ons.lookup(tag, site)
            self.ons.update(tag, site)
            self._current_site[tag] = site
            if previous is not None and previous != site:
                by_source.setdefault(previous, []).append(tag)
        if self.strategy != "collapsed":
            return
        for src, tags in sorted(by_source.items()):
            self.transport.send(
                Envelope(site, src, MIGRATE_REQUEST, encode_tag_list(tags), boundary)
            )
            if self.migration_listener is not None:
                self.migration_listener(src, site, tags, boundary)

    def _snapshot(self, time: int) -> ClusterSnapshot:
        services = {node.site: node.service for node in self.nodes}
        merged: dict[EPC, EPC | None] = {}
        known: set[EPC] = set()
        for tag, site in self._current_site.items():
            merged[tag] = services[site].containment.get(tag)
            known.add(tag)
        if self.strategy == "none":
            # Without ONS traffic, ownership falls to the latest seen set.
            for node in self.nodes:
                known.update(node.seen)
        return ClusterSnapshot(time, merged, known)

    # -- metrics -----------------------------------------------------------

    @property
    def migrations(self) -> list[MigrationEvent]:
        """All tag-level hand-offs, in global (time, dst, src) order."""
        merged = [m for node in self.nodes for m in node.migrations_in]
        merged.sort(key=lambda m: (m.time, m.dst, m.src, m.tag))
        return merged

    def containment_error(self, truth: GroundTruth) -> float:
        """Mean containment error across interval snapshots.

        Each snapshot is scored over the items any site has seen by
        then, against the ground truth just before the snapshot time
        (clamped at 0 for a degenerate time-0 snapshot).
        """
        scores = []
        for snap in self.snapshots:
            items = [t for t in snap.known if t.kind is TagKind.ITEM]
            if not items:
                continue
            at_time = max(snap.time - 1, 0)
            scores.append(
                containment_error_rate(truth, snap.containment, at_time, items)
            )
        return float(np.mean(scores)) if scores else 0.0

    def detected_changes(self):
        """Change points pooled across sites."""
        out = []
        for node in self.nodes:
            out.extend(node.service.changes)
        return out

    def communication_bytes(self) -> int:
        return self.network.total_bytes()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
