"""Pluggable message transports for the site runtime.

A :class:`Transport` moves :class:`~repro.runtime.envelope.Envelope`\\ s
between registered site handlers and schedules per-site work. Every
delivered byte is accounted through a shared
:class:`~repro.distributed.network.Network` ledger (per-kind *and*
per-link), so Table 5's communication-cost breakdown is independent of
which transport runs the cluster.

* :class:`InProcessTransport` — synchronous, single-threaded delivery.
  Deterministic by construction; preserves the semantics (and byte
  accounting) of the original lockstep deployment.
* :class:`ThreadedTransport` — one worker thread per site with per-link
  FIFO inboxes, so independent sites advance concurrently. Handlers run
  only on their own site's worker (actor discipline), which keeps state
  mutation single-writer; combined with the cluster's barrier phases
  this makes the threaded run bit-identical to the in-process one.

Both of the above are *reliable* (every accepted send is delivered
exactly once, in per-link order). :class:`~repro.runtime.faults.FaultyTransport`
wraps either one and injects seeded drop/duplicate/delay/reorder faults
per link; it advertises ``reliable = False``, which switches the
:class:`~repro.runtime.node.SiteNode` at-least-once layer on.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Mapping

from repro.distributed.network import Network
from repro.runtime.envelope import Envelope

__all__ = ["Transport", "InProcessTransport", "ThreadedTransport"]

Handler = Callable[[Envelope], None]


class Transport(ABC):
    """Delivery of envelopes plus per-site work scheduling."""

    #: whether every accepted :meth:`send` is guaranteed to reach its
    #: handler exactly once. Lossy decorators set this to ``False``,
    #: which makes nodes keep an unacked outbox and emit acks.
    reliable: bool = True

    #: whether registered site state lives in a different execution
    #: domain than the caller (worker processes). When ``True`` the
    #: cluster must drive sites through :meth:`site_call` /
    #: :meth:`site_cast` named operations instead of direct method
    #: calls or closures — closures cannot cross a process boundary.
    hosts_sites: bool = False

    def __init__(self, ledger: Network | None = None) -> None:
        self.ledger = ledger if ledger is not None else Network()

    # -- site hosting (process-parallel transports) ------------------------

    def host_site(self, site: int, ops: Mapping[str, Callable]) -> None:
        """Hand over ``site``'s named operations for remote execution.

        Only meaningful on transports with ``hosts_sites = True``; the
        ops table must be registered *before* the transport spawns its
        workers (everything crosses the fork by inheritance, so
        unpicklable closures and query factories are fine).
        """
        raise NotImplementedError(f"{type(self).__name__} does not host sites")

    def site_call(self, site: int, op: str, *args: object) -> object:
        """Run a named op in ``site``'s domain and return its result."""
        raise NotImplementedError(f"{type(self).__name__} does not host sites")

    def site_cast(self, site: int, op: str, *args: object) -> None:
        """Schedule a named op in ``site``'s domain without waiting.

        Completion is observed at the next :meth:`flush` barrier; casts
        to distinct workers run concurrently (this is the parallel tick
        path)."""
        raise NotImplementedError(f"{type(self).__name__} does not host sites")

    @abstractmethod
    def register(self, site: int, handler: Handler) -> None:
        """Attach ``handler`` as the recipient of envelopes for ``site``."""

    @abstractmethod
    def send(self, env: Envelope) -> None:
        """Account for ``env`` and deliver it to its destination handler.

        Sends to a destination with no registered handler (e.g. the ONS
        ledger site) are accounted and dropped.
        """

    @abstractmethod
    def deliver(self, env: Envelope) -> None:
        """Hand ``env`` to its destination handler *without* accounting.

        The seam lossy decorators use: they do their own (fault-aware)
        ledger accounting at send time, then route surviving copies
        through the wrapped transport's delivery machinery.
        """

    @abstractmethod
    def dispatch(self, site: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` in ``site``'s execution context."""

    @abstractmethod
    def flush(self) -> None:
        """Block until all sent envelopes and dispatched work — including
        any follow-up messages they triggered — have been processed."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release transport resources (worker threads, queues)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InProcessTransport(Transport):
    """Synchronous delivery on the caller's thread (deterministic)."""

    def __init__(self, ledger: Network | None = None) -> None:
        super().__init__(ledger)
        self._handlers: dict[int, Handler] = {}

    def register(self, site: int, handler: Handler) -> None:
        if site in self._handlers:
            raise ValueError(f"site {site} already registered")
        self._handlers[site] = handler

    def send(self, env: Envelope) -> None:
        self.ledger.send(env.src, env.dst, env.kind, env.payload)
        self.deliver(env)

    def deliver(self, env: Envelope) -> None:
        handler = self._handlers.get(env.dst)
        if handler is not None:
            handler(env)

    def dispatch(self, site: int, fn: Callable[[], None]) -> None:
        fn()

    def flush(self) -> None:
        pass  # everything already ran synchronously


class _SiteWorker(threading.Thread):
    """One site's event loop: drains per-link inboxes, then local tasks."""

    def __init__(self, site: int, handler: Handler, transport: "ThreadedTransport") -> None:
        super().__init__(name=f"site-{site}", daemon=True)
        self.site = site
        self.handler = handler
        self.transport = transport
        self.cv = threading.Condition()
        #: per-link FIFO inboxes, keyed by source site.
        self.inboxes: dict[int, deque[Envelope]] = {}
        self.tasks: deque[Callable[[], None]] = deque()
        self.stopped = False

    def post_envelope(self, env: Envelope) -> None:
        with self.cv:
            self.inboxes.setdefault(env.src, deque()).append(env)
            self.cv.notify()

    def post_task(self, fn: Callable[[], None]) -> None:
        with self.cv:
            self.tasks.append(fn)
            self.cv.notify()

    def stop(self) -> None:
        with self.cv:
            self.stopped = True
            self.cv.notify()

    def _take(self) -> tuple[str, object] | None:
        """Next work item: envelopes (links in source order) before tasks."""
        for src in sorted(self.inboxes):
            queue = self.inboxes[src]
            if queue:
                return ("envelope", queue.popleft())
        if self.tasks:
            return ("task", self.tasks.popleft())
        return None

    def run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:  # noqa: BLE001 - loop machinery failed
            # The worker is dead: queued work for this site will never
            # retire, so poison the barrier instead of hanging it.
            self.transport._worker_died(self.site, exc)

    def _loop(self) -> None:
        while True:
            with self.cv:
                item = self._take()
                while item is None:
                    if self.stopped:
                        return
                    self.cv.wait()
                    item = self._take()
            kind, work = item
            try:
                if kind == "envelope":
                    self.handler(work)  # type: ignore[arg-type]
                else:
                    work()  # type: ignore[operator]
            except BaseException as exc:  # noqa: BLE001 - surfaced at flush()
                self.transport._record_error(exc)
            finally:
                self.transport._work_done()


class ThreadedTransport(Transport):
    """Per-site worker threads with per-link inboxes.

    Delivery and dispatch are asynchronous; :meth:`flush` is the barrier
    that waits for global quiescence. An outstanding-work counter makes
    the barrier exact: a handler's follow-up sends are counted before
    the handler itself retires, so ``flush`` cannot return while a
    message chain is still in flight.

    The barrier is exception-safe: a handler (or dispatched task) that
    raises on its worker thread wakes :meth:`flush` *immediately* and
    the error is re-raised to the caller — even while other queued work
    is still in flight or blocked, where waiting for full quiescence
    could hang forever. A worker whose event loop itself dies poisons
    the barrier permanently for the same reason.
    """

    def __init__(self, ledger: Network | None = None) -> None:
        super().__init__(ledger)
        self._workers: dict[int, _SiteWorker] = {}
        self._quiet = threading.Condition()
        self._outstanding = 0
        self._errors: list[BaseException] = []
        self._dead: dict[int, BaseException] = {}
        self._ledger_lock = threading.Lock()
        self._closed = False

    # -- work accounting ---------------------------------------------------

    def _work_added(self) -> None:
        with self._quiet:
            self._outstanding += 1

    def _work_done(self) -> None:
        with self._quiet:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._quiet.notify_all()

    def _record_error(self, exc: BaseException) -> None:
        with self._quiet:
            self._errors.append(exc)
            # Fail fast: the barrier must not keep waiting on work that
            # the failure may have stranded.
            self._quiet.notify_all()

    def _worker_died(self, site: int, exc: BaseException) -> None:
        with self._quiet:
            self._dead[site] = exc
            self._quiet.notify_all()

    # -- Transport interface ----------------------------------------------

    def register(self, site: int, handler: Handler) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        if site in self._workers:
            raise ValueError(f"site {site} already registered")
        worker = _SiteWorker(site, handler, self)
        self._workers[site] = worker
        worker.start()

    def send(self, env: Envelope) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        with self._ledger_lock:
            self.ledger.send(env.src, env.dst, env.kind, env.payload)
        self.deliver(env)

    def deliver(self, env: Envelope) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        worker = self._workers.get(env.dst)
        if worker is None:
            return  # accounted control traffic (e.g. ONS) with no node
        self._work_added()
        worker.post_envelope(env)

    def dispatch(self, site: int, fn: Callable[[], None]) -> None:
        if self._closed:
            raise RuntimeError("transport is closed")
        worker = self._workers.get(site)
        if worker is None:
            raise KeyError(f"no worker registered for site {site}")
        self._work_added()
        worker.post_task(fn)

    def flush(self) -> None:
        with self._quiet:
            while self._outstanding > 0 and not self._errors and not self._dead:
                self._quiet.wait()
            if self._dead:
                site, exc = next(iter(self._dead.items()))
                raise RuntimeError(
                    f"site {site}'s worker loop died; transport is poisoned"
                ) from exc
            if self._errors:
                errors, self._errors = self._errors, []
                raise RuntimeError(
                    f"{len(errors)} site worker(s) failed"
                ) from errors[0]

    #: how long :meth:`close` waits for each worker to stop. A class
    #: attribute so tests exercising the stuck-worker path can shrink it.
    CLOSE_TIMEOUT = 5.0

    def close(self) -> None:
        """Stop every worker thread. Idempotent — and *retryable*: a
        worker that does not stop within :attr:`CLOSE_TIMEOUT` (e.g. a
        handler still blocked when close is called) stays registered,
        so a later close() tries again instead of clearing the registry
        over a live thread and silently leaking it. Workers whose loops
        already died (or that raised from a handler and kept looping)
        join normally."""
        self._closed = True
        for worker in self._workers.values():
            worker.stop()
        remaining: dict[int, _SiteWorker] = {}
        for site, worker in self._workers.items():
            worker.join(timeout=self.CLOSE_TIMEOUT)
            if worker.is_alive():
                remaining[site] = worker
        self._workers = remaining
