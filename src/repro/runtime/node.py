"""One site of the federation: inference service + local queries.

A :class:`SiteNode` owns one :class:`~repro.core.service.StreamingInference`
plus the site's registered continuous queries, and *reacts to messages*
instead of being driven by direct calls: a ``migrate-request`` makes it
export and send state, an ``inference-state``/``query-state`` envelope
makes it absorb state. The only locally-driven entry points are
:meth:`advance_to` (the periodic inference tick, dispatched by the
cluster onto this site's execution context) and :meth:`poll_arrivals`
(reading the site's own antennas).

Under :class:`~repro.runtime.transport.ThreadedTransport` every handler
and tick runs on this node's own worker thread, so node state is
single-writer without locks.

**At-least-once delivery.** Every data envelope a node sends carries a
per-``(src, dst)`` link sequence number; the receiver dedups on it, so
replaying a ``migrate-request`` / ``inference-state`` / ``query-state``
envelope is idempotent on any transport. When the bound transport is
*unreliable* (``transport.reliable`` is ``False``) the node additionally
keeps an unacked outbox and acknowledges every delivered data envelope;
the cluster retransmits unacked envelopes at each barrier until the
outbox drains. The result: a lossy, duplicating, reordering network
yields bit-identical inference and query results — only the ledger's
``retransmit``/``ack`` overhead kinds differ.

**Crash recovery.** :meth:`snapshot` serializes everything a site needs
to resume exactly where it was — inference state, per-object query
automaton state, arrival/sensor cursors, delivery cursors, and the
historical archive — and :meth:`restore` rebuilds the node from it (see
:mod:`repro.runtime.checkpoint` for the wire format).

**History.** Each tick's inference output (events, containment
snapshot, posterior top-k, fresh query alerts) is appended to the
site's :class:`~repro.archive.store.SiteArchive`; a ``history-request``
envelope makes the node answer a time-travel query against it through
its :class:`~repro.serving.history.HistoryService`.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Iterable, Mapping

from repro.archive import SiteArchive
from repro.archive.replication import decode_replica_fetch, encode_archive_delta
from repro.core.collapsed import CollapsedState
from repro.core.events import ObjectEvent
from repro.core.service import ServiceConfig, StreamingInference
from repro.runtime.envelope import (
    ACK,
    HISTORY_REQUEST,
    HISTORY_RESPONSE,
    INFERENCE_STATE,
    MIGRATE_REQUEST,
    QUERY_STATE,
    REPLICA_FETCH,
    REPLICA_SEGMENTS,
    Envelope,
    MigrationEvent,
    decode_ack,
    decode_query_bundle,
    decode_single_query_state,
    decode_state_bundle,
    decode_tag_list,
    encode_ack,
    encode_query_bundle,
    encode_single_query_state,
    encode_state_bundle,
)
from repro.obs import get_telemetry
from repro.queries.compiler import QueryEngine
from repro.runtime.router import QueryRouter
from repro.runtime.transport import Transport
from repro.serving.history import HistoryService
from repro.serving.wire import (
    HistoryResponse,
    decode_history_request,
    encode_history_response,
)
from repro.sim.tags import EPC
from repro.sim.trace import Trace
from repro.streams.engine import merge_by_time

__all__ = ["SiteNode"]


def _is_empty_state(state: CollapsedState) -> bool:
    return (
        not state.weights
        and state.container is None
        and state.changed_at is None
    )


class SiteNode:
    """Event-driven runtime for one site."""

    def __init__(
        self,
        trace: Trace,
        config: ServiceConfig | None = None,
        batch_migrations: bool = True,
    ) -> None:
        self.trace = trace
        self.site = trace.site
        self.config = config
        self.service = StreamingInference(trace, config)
        self.batch_migrations = batch_migrations
        self.queries: dict[str, Any] = {}
        #: the site's shared operator runtime: declarative queries are
        #: compiled into it, with identical local sub-plans instantiated
        #: once across all registered queries.
        self.engine = QueryEngine()
        #: names of queries dispatched through the engine (their tuples
        #: must be pushed once into the engine, not once per query).
        self._engine_queries: set[str] = set()
        self.router = QueryRouter(self.queries)
        #: append-only history of this site's inference output, fed at
        #: every boundary; the serving layer's historical queries read it.
        self.archive = SiteArchive(self.site)
        self.history = HistoryService(self.archive)
        #: tags this site has ever observed (arrival detection).
        self.seen: set[EPC] = set()
        #: state hand-offs absorbed *into* this node (tag-level record).
        self.migrations_in: list[MigrationEvent] = []
        #: query-state exports owed after the next tick: (requester, tags).
        self._pending_handoffs: list[tuple[int, list[EPC]]] = []
        self._transport: Transport | None = None
        self._sensors: list[Any] = []
        self._sensor_pos = 0
        self._event_pos = 0
        # -- at-least-once delivery state (per-link) -----------------------
        #: next outgoing sequence number per destination site.
        self._link_tx: dict[int, int] = {}
        #: sequence numbers already applied, per source site (dedup).
        self._link_rx: dict[int, set[int]] = {}
        #: sent-but-unacknowledged envelopes keyed (dst, seq); only
        #: populated on unreliable transports (reliable ones never lose
        #: an envelope, so acks would be pure overhead).
        self._unacked: dict[tuple[int, int], Envelope] = {}
        #: duplicate deliveries suppressed by the dedup layer.
        self.duplicates_dropped = 0

    # -- wiring ---------------------------------------------------------

    def bind(self, transport: Transport) -> None:
        """Register this node as the recipient of its site's envelopes."""
        self._transport = transport
        transport.register(self.site, self.handle)

    def rebind_transport(self, transport: Transport) -> None:
        """Swap the transport this node sends through, *without*
        re-registering its handler.

        Worker processes use this after the fork: the inherited binding
        points at the parent-side transport object, but worker-side
        sends must go to the worker's outbox shim instead (anything
        duck-typing ``send``/``reliable`` is accepted)."""
        self._transport = transport

    # -- crash recovery ---------------------------------------------------

    def reset(self, queries: Mapping[str, Any] | None = None) -> None:
        """Simulate a process restart: drop every piece of volatile state.

        The trace (durable storage), sensor stream, and transport
        binding survive — a restarted site re-reads those — but the
        inference service, cursors, and delivery state do not. Pass
        fresh ``queries`` instances to replace the registered ones (the
        cluster rebuilds them from its registered factories); without
        them the existing instances stay registered. Either way the
        compiled operator DAG is rebuilt and every declarative query is
        recompiled into it with empty automata — a restart loses query
        state like any other volatile state; :meth:`restore` repopulates
        it from the checkpoint. Hand-written (non-declarative) query
        instances are not touched unless replaced.
        """
        self.service = StreamingInference(self.trace, self.config)
        if queries is not None:
            self.queries.clear()
            self.queries.update(queries)
        self.engine = QueryEngine()
        self._engine_queries = set()
        for name, query in self.queries.items():
            # Rebinds don't re-count the ledger's operator gauges: the
            # site's registered plans are unchanged, only rebuilt.
            self._bind_query(name, query, account=False)
        self.archive = SiteArchive(self.site)
        self.history = HistoryService(self.archive)
        self.seen = set()
        self.migrations_in = []
        self._pending_handoffs = []
        self._sensor_pos = 0
        self._event_pos = 0
        self._link_tx = {}
        self._link_rx = {}
        self._unacked = {}
        self.duplicates_dropped = 0

    def snapshot(self) -> bytes:
        """Serialize this site's full volatile state (see
        :mod:`repro.runtime.checkpoint` for the format)."""
        from repro.runtime.checkpoint import encode_site_checkpoint

        return encode_site_checkpoint(self)

    def restore(self, data: bytes) -> None:
        """Rebuild state from a :meth:`snapshot` taken at a boundary.

        Resets first (without touching query instances), then
        repopulates the service, cursors, delivery state, and each
        registered query from the checkpoint.
        """
        from repro.runtime.checkpoint import restore_site_checkpoint

        self.reset()
        restore_site_checkpoint(self, data)

    def add_query(self, name: str, query: Any) -> None:
        """Register a continuous query.

        Declarative facades (anything exposing a ``spec`` and ``bind``)
        are compiled into the site's shared :class:`QueryEngine`, where
        identical local sub-plans across queries are instantiated once;
        other objects are dispatched directly. State migrates if the
        query implements the
        :class:`~repro.queries.protocol.QueryState` hooks.
        """
        self.queries[name] = query
        self._bind_query(name, query)

    def _bind_query(self, name: str, query: Any, account: bool = True) -> None:
        """Compile a declarative query into the shared engine and, for
        first-time registrations, surface the sharing gauges in the
        communication ledger (crash-recovery rebinds pass
        ``account=False`` so one site never counts its plans twice)."""
        bind = getattr(query, "bind", None)
        if bind is None or getattr(query, "spec", None) is None:
            return
        built_before = self.engine.operators_built
        shared_before = self.engine.operators_shared
        bind(self.engine)
        self._engine_queries.add(name)
        if account and self._transport is not None:
            ledger = self._transport.ledger
            ledger.plan_operators_built += (
                self.engine.operators_built - built_before
            )
            ledger.plan_operators_shared += (
                self.engine.operators_shared - shared_before
            )

    def set_sensor_stream(self, readings: Iterable[Any]) -> None:
        """Provide this site's (time-sorted) sensor stream for queries."""
        self._sensors = sorted(readings, key=lambda r: r.time)
        self._sensor_pos = 0

    # -- local drivers ----------------------------------------------------

    def poll_arrivals(self, lo: int, hi: int) -> list[EPC]:
        """Tags first observed by this site's readers in ``[lo, hi)``."""
        fresh = sorted(set(self.trace.tags_read_in(lo, hi)) - self.seen)
        self.seen.update(fresh)
        return fresh

    def advance_to(self, boundary: int) -> None:
        """One inference tick: run RFINFER, feed new tuples to queries,
        then append the boundary's output to the historical archive.

        Under a memory budget the boundary ends by truncating the
        service's retained per-run state — after the archive (the spill
        target) has ingested it."""
        record = self.service.run_at(boundary)
        if self.service.online is not None and self._transport is not None:
            self._transport.ledger.note_pruning(
                self.site, record.pruned_tags, record.full_tags
            )
        started = time.perf_counter()
        self._feed_queries(boundary)
        record.phase_seconds["queries"] = time.perf_counter() - started
        started = time.perf_counter()
        self._feed_archive()
        record.phase_seconds["archive"] = time.perf_counter() - started
        tel = get_telemetry()
        if tel.enabled:
            tel.emit_span(
                "site", "queries", record.phase_seconds["queries"],
                site=self.site, boundary=boundary,
            )
            tel.emit_span(
                "archive", "append", record.phase_seconds["archive"],
                site=self.site, boundary=boundary,
                archived_boundary=self.archive.last_boundary,
            )
        self.service.truncate_history()

    def _feed_archive(self) -> None:
        """Capture this boundary's inference output and fresh alerts.

        Iteration is in sorted-query-name order (and the archive ingests
        service state in sorted-tag order), so the archive is a pure
        function of the site's post-tick state — a crash-recovered site
        rebuilds the identical history.
        """
        self.archive.ingest_service(self.service)
        for name in sorted(self.queries):
            alerts = getattr(self.queries[name], "alerts", None)
            if alerts is not None:
                self.archive.ingest_alerts(name, alerts)

    def _feed_queries(self, boundary: int) -> None:
        events, self._event_pos = self.service.events_since(self._event_pos)
        hi = self._sensor_pos
        while hi < len(self._sensors) and self._sensors[hi].time < boundary:
            hi += 1
        sensors = self._sensors[self._sensor_pos : hi]
        self._sensor_pos = hi
        if not self.queries or (not events and not sensors):
            return
        engine = self.engine if self._engine_queries else None
        direct = [
            query
            for name, query in self.queries.items()
            if name not in self._engine_queries
        ]
        # Sensors first at equal timestamps, as the stream engine does.
        # Each tuple enters the shared engine exactly once — the DAG
        # fans it out to every compiled plan — then goes to any
        # hand-written queries directly.
        for item in merge_by_time(sensors, events):
            if engine is not None:
                engine.push(item)
            for query in direct:
                if isinstance(item, ObjectEvent):
                    query.on_event(item)
                else:
                    on_sensor = getattr(query, "on_sensor", None)
                    if on_sensor is not None:
                        on_sensor(item)

    # -- message handling ---------------------------------------------------

    def handle(self, env: Envelope) -> None:
        """React to one delivered envelope.

        Sequenced envelopes pass the at-least-once layer first: an
        ``ack`` retires its outbox entry, and a data sequence number
        already applied is dropped (and re-acked — the original ack may
        have been lost), so duplicated delivery never double-applies
        inference state or re-fires query alerts.
        """
        if env.kind == ACK:
            self._unacked.pop((env.src, decode_ack(env.payload)), None)
            return
        if env.seq:
            seen = self._link_rx.setdefault(env.src, set())
            if env.seq in seen:
                self.duplicates_dropped += 1
                self._ack(env)
                return
            seen.add(env.seq)
        self._dispatch(env)
        if env.seq:
            self._ack(env)

    def _dispatch(self, env: Envelope) -> None:
        if env.kind == MIGRATE_REQUEST:
            self._serve_migration(env.src, decode_tag_list(env.payload), env.time)
        elif env.kind == INFERENCE_STATE:
            self._absorb_inference(env)
        elif env.kind == QUERY_STATE:
            self._absorb_query_state(env)
        elif env.kind == HISTORY_REQUEST:
            self._serve_history(env)
        elif env.kind == REPLICA_FETCH:
            self._serve_replication(env)
        else:
            raise ValueError(f"site {self.site}: unknown message kind {env.kind!r}")

    def _ack(self, env: Envelope) -> None:
        """Acknowledge a delivered data envelope (lossy transports only)."""
        transport = self._require_transport()
        if transport.reliable:
            return
        transport.send(
            Envelope(
                self.site, env.src, ACK, encode_ack(env.seq), env.time, seq=env.seq
            )
        )

    def _require_transport(self) -> Transport:
        if self._transport is None:
            raise RuntimeError(f"site {self.site} is not bound to a transport")
        return self._transport

    def _send(self, env: Envelope) -> None:
        """Stamp the next per-link sequence number and transmit.

        On an unreliable transport the stamped envelope is also parked
        in the unacked outbox; the cluster's barrier retransmits it
        until the destination's ack arrives.
        """
        transport = self._require_transport()
        seq = self._link_tx.get(env.dst, 0) + 1
        self._link_tx[env.dst] = seq
        env = replace(env, seq=seq)
        if not transport.reliable:
            self._unacked[(env.dst, seq)] = env
        transport.send(env)

    def send(self, env: Envelope) -> None:
        """Send one data envelope originating at this site (sequenced)."""
        if env.src != self.site:
            raise ValueError(f"site {self.site} cannot send as site {env.src}")
        self._send(env)

    def unacked_envelopes(self) -> list[Envelope]:
        """Sent-but-unacked envelopes, in deterministic (dst, seq) order."""
        return [self._unacked[key] for key in sorted(self._unacked)]

    def retransmit_unacked(self) -> int:
        """Re-send every unacked envelope; returns how many were re-sent."""
        pending = self.unacked_envelopes()
        transport = self._require_transport()
        for env in pending:
            transport.send(env)
        return len(pending)

    def _serve_migration(self, requester: int, tags: list[EPC], time: int) -> None:
        """Ship inference state now; owe query state after the next tick.

        Inference state must reach the requester *before* its run over
        the arrival interval (§4.1: the migrated weights seed local
        inference). Query-automaton state is freshest *after* this
        site's own run over the departure interval (that run feeds the
        object's final local events to the queries), so it follows in
        the post-tick hand-off phase and merges with whatever partial
        match the new site has formed meanwhile.
        """
        tel = get_telemetry()
        with tel.span(
            "federation", "migrate.export",
            src=self.site, dst=requester, boundary=time,
        ) as span:
            self._export_migration(requester, tags, time, span)
        if self.queries:
            self._pending_handoffs.append((requester, tags))

    def _export_migration(
        self, requester: int, tags: list[EPC], time: int, span
    ) -> None:
        exported = self.service.export_states(tags)
        # An empty state (no weights, no container, no change floor)
        # carries zero information — absorbing it is a no-op — so both
        # modes drop it instead of shipping dead bytes. `migrations`
        # therefore records state actually shipped, identically in
        # batched and per-tag mode.
        states = {
            tag: state.to_bytes()
            for tag, state in exported.items()
            if not _is_empty_state(state)
        }
        span.set(requested=len(tags), shipped=len(states))
        if not states:
            pass
        elif self.batch_migrations:
            self._send(
                Envelope(
                    self.site, requester, INFERENCE_STATE,
                    encode_state_bundle(states), time,
                )
            )
        else:
            for tag in sorted(states):
                self._send(
                    Envelope(self.site, requester, INFERENCE_STATE, states[tag], time)
                )

    def flush_query_handoffs(self, time: int) -> None:
        """Send owed query state (called by the cluster after the tick)."""
        pending, self._pending_handoffs = self._pending_handoffs, []
        for requester, tags in pending:
            per_query = self.router.export(tags)
            if not per_query:
                continue
            if self.batch_migrations:
                self._send(
                    Envelope(
                        self.site, requester, QUERY_STATE,
                        encode_query_bundle(per_query), time,
                    )
                )
            else:
                for name in sorted(per_query):
                    for tag in sorted(per_query[name]):
                        self._send(
                            Envelope(
                                self.site, requester, QUERY_STATE,
                                encode_single_query_state(
                                    name, tag, per_query[name][tag]
                                ),
                                time,
                            )
                        )

    def _serve_history(self, env: Envelope) -> None:
        """Answer one historical query against the site's archive.

        Requests are idempotent reads and arrive unsequenced: the
        frontend retransmits until the response lands and dedups on the
        request id, so re-serving a duplicate is harmless — no outbox
        or ack involvement (see :mod:`repro.serving.frontend`). The
        response is likewise unsequenced and accounted under its own
        ledger kind.
        """
        tel = get_telemetry()
        with tel.span("serving", "history.serve", site=self.site) as span:
            request = decode_history_request(env.payload)
            answer = self.history.answer(request)
            span.set(request_id=request.request_id, kind=answer.kind)
            response = HistoryResponse(
                request_id=request.request_id,
                site=self.site,
                as_of=self.archive.last_boundary,
                kind=answer.kind,
                last_update=answer.last_update,
                rows=answer.rows,
            )
            self._require_transport().send(
                Envelope(
                    self.site, env.src, HISTORY_RESPONSE,
                    encode_history_response(response), env.time,
                )
            )

    def _serve_replication(self, env: Envelope) -> None:
        """Answer a read replica's catch-up fetch with an archive delta.

        Like history requests, fetches are idempotent and unsequenced:
        the replica keeps re-fetching (with a fresh fetch id and its
        current cursor) until a delta applies, so a lost response just
        costs one more round. A cursor from before a compaction (or a
        primary restart) falls back to a full-resync delta — see
        :mod:`repro.archive.replication`.
        """
        tel = get_telemetry()
        with tel.span(
            "archive", "replica.serve", site=self.site, dst=env.src
        ) as span:
            fetch_id, cursor = decode_replica_fetch(env.payload)
            delta = encode_archive_delta(self.archive, cursor, fetch_id)
            span.set(fetch_id=fetch_id, delta_bytes=len(delta))
            self._require_transport().send(
                Envelope(self.site, env.src, REPLICA_SEGMENTS, delta, env.time)
            )

    def _absorb_inference(self, env: Envelope) -> None:
        tel = get_telemetry()
        with tel.span(
            "federation", "migrate.absorb",
            src=env.src, dst=self.site, seq=env.seq, boundary=env.time,
        ) as span:
            if self.batch_migrations:
                raw = decode_state_bundle(env.payload)
                arrivals = [
                    (CollapsedState.from_bytes(raw[tag]), len(raw[tag]))
                    for tag in sorted(raw)
                ]
            else:
                arrivals = [(CollapsedState.from_bytes(env.payload), len(env.payload))]
            span.set(states=len(arrivals), payload_bytes=len(env.payload))
            for state, size in arrivals:
                self.service.absorb_state(state)
                self.migrations_in.append(
                    MigrationEvent(state.tag, env.src, self.site, env.time, size)
                )

    def _absorb_query_state(self, env: Envelope) -> None:
        if self.batch_migrations:
            self.router.apply_bundle(decode_query_bundle(env.payload))
        else:
            name, tag, data = decode_single_query_state(env.payload)
            self.router.apply(name, tag, data)
