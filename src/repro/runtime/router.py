"""Federated query routing: migrating per-object query state (§4.2).

The global blocks of the monitoring queries (``SEQ(A+)`` patterns,
the tracking query's route progress) consume the *global* event
stream, so their per-object state must follow the object between sites
(Appendix B). The :class:`QueryRouter` wires the uniform
:class:`~repro.queries.protocol.QueryState` protocol into the
deployment: on departure it collects each registered query's byte
state for the migrating objects; on arrival it routes the decoded
states back into the matching query instances. Every compiled plan
(and therefore every declarative facade) implements the protocol
generically — the router never sees per-query codecs.

Migration uses the ``export_state``/``import_state`` half of the
protocol (``None`` meaning "no state for this object"); site
checkpoints use the ``snapshot_state``/``restore_state`` half, which
is mandatory for registered queries (see :meth:`snapshot_queries`).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sim.tags import EPC

__all__ = ["QueryRouter"]


class QueryRouter:
    """Exports and applies query state for one site's registered queries."""

    def __init__(self, queries: dict[str, Any] | None = None) -> None:
        #: name → query instance; shared (not copied) with the owning
        #: node so late registrations are visible.
        self.queries: dict[str, Any] = queries if queries is not None else {}

    def export(self, tags: Iterable[EPC]) -> dict[str, dict[EPC, bytes]]:
        """Collect each query's serialized state for ``tags``.

        Queries without migration hooks, and objects a query holds no
        state for, are simply skipped.
        """
        out: dict[str, dict[EPC, bytes]] = {}
        for name in sorted(self.queries):
            exporter = getattr(self.queries[name], "export_state", None)
            if exporter is None:
                continue
            states: dict[EPC, bytes] = {}
            for tag in tags:
                raw = exporter(tag)
                if raw is not None:
                    states[tag] = raw
            if states:
                out[name] = states
        return out

    def apply(self, name: str, tag: EPC, data: bytes) -> bool:
        """Route one migrated state into the named query (if present)."""
        query = self.queries.get(name)
        if query is None:
            return False
        importer = getattr(query, "import_state", None)
        if importer is None:
            return False
        importer(tag, data)
        return True

    def apply_bundle(self, per_query: dict[str, dict[EPC, bytes]]) -> int:
        """Route a decoded query bundle; returns states applied."""
        applied = 0
        for name in sorted(per_query):
            for tag in sorted(per_query[name]):
                if self.apply(name, tag, per_query[name][tag]):
                    applied += 1
        return applied

    # -- whole-site checkpoints (crash recovery) ---------------------------

    def snapshot_queries(self) -> dict[str, bytes]:
        """Serialize every registered query's full state.

        Unlike migration (which is best-effort per object), a
        checkpoint must be complete: a registered query without
        ``snapshot_state``/``restore_state`` hooks would silently lose
        its alerts and partial matches on recovery, so it is an error.
        """
        out: dict[str, bytes] = {}
        for name in sorted(self.queries):
            snapshot = getattr(self.queries[name], "snapshot_state", None)
            if snapshot is None:
                raise ValueError(
                    f"query {name!r} has no snapshot_state hook; "
                    "it cannot survive a site crash"
                )
            out[name] = snapshot()
        return out

    def restore_queries(self, blobs: dict[str, bytes]) -> None:
        """Route checkpointed state back into fresh query instances."""
        for name in sorted(blobs):
            query = self.queries.get(name)
            if query is None:
                raise ValueError(f"checkpoint names unregistered query {name!r}")
            restorer = getattr(query, "restore_state", None)
            if restorer is None:
                raise ValueError(f"query {name!r} has no restore_state hook")
            restorer(blobs[name])
