"""Site checkpoint wire format (crash recovery).

A checkpoint captures everything a :class:`~repro.runtime.node.SiteNode`
needs to resume *exactly* where it was at an interval boundary:

* **inference state** — containment estimates, change floors, migrated
  priors, each object's latest run weights, seeded-only marks, critical
  regions, detected change points, the calibrated change threshold,
  and (v3) the online detector's run-length posteriors and flags;
* **query state** — one blob per registered query via the
  :class:`~repro.queries.protocol.QueryState` protocol's
  ``snapshot_state`` hook. Compiled plans serialize themselves
  generically — each stateful operator (pattern automata with alert
  logs, window relations) appends one self-delimiting section — so any
  declarative query checkpoints without bespoke code (see
  :mod:`repro.queries.compiler` and :mod:`repro.streams.state`);
* **cursors** — the arrival-detection ``seen`` set, the sensor-stream
  position, absorbed migrations, and the at-least-once delivery
  cursors (per-link next sequence numbers and applied-sequence sets),
  so a restored site neither re-applies old envelopes nor re-detects
  old arrivals;
* **history** — the site's :class:`~repro.archive.store.SiteArchive`
  via its versioned codec (:mod:`repro.archive.codec`), so a recovered
  site serves bit-identical historical answers to the run that never
  crashed.

Weights and scores are serialized as float64: migration rounds to
float32 to keep Table 5 honest, but a checkpoint that rounded would
make the recovered run diverge bit-from-bit from the run that never
crashed — the exact property the chaos harness enforces.

Like every other wire format in this repository, malformed input
raises :class:`ValueError`, never a bare decoder error.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro._util.encoding import ByteReader, ByteWriter
from repro.core.changepoint import ChangePoint
from repro.core.online import encode_online_state, restore_online_state
from repro.core.truncation import CriticalRegion
from repro.runtime.envelope import MigrationEvent
from repro.sim.tags import EPC, read_epc, read_opt_epc, write_epc, write_opt_epc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.node import SiteNode

__all__ = [
    "encode_site_checkpoint",
    "restore_site_checkpoint",
    "peek_checkpoint_site",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_VERSION = 3


def peek_checkpoint_site(data: bytes) -> int:
    """Return the site id a checkpoint belongs to, without restoring it.

    The shard rebalancer validates a snapshot/adopt pair with this
    before any node state is touched.
    """
    try:
        reader = ByteReader(data)
        version = reader.varint()
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        return reader.svarint()
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed site checkpoint: {exc}") from exc


def _write_weight_map(writer: ByteWriter, weights: dict[EPC, dict[EPC, float]]) -> None:
    writer.varint(len(weights))
    for tag in sorted(weights):
        write_epc(writer, tag)
        per_tag = weights[tag]
        writer.varint(len(per_tag))
        for candidate in sorted(per_tag):
            write_epc(writer, candidate)
            writer.float64(per_tag[candidate])


def _read_weight_map(reader: ByteReader) -> dict[EPC, dict[EPC, float]]:
    out: dict[EPC, dict[EPC, float]] = {}
    for _ in range(reader.varint()):
        tag = read_epc(reader)
        out[tag] = {
            read_epc(reader): reader.float64() for _ in range(reader.varint())
        }
    return out


def encode_site_checkpoint(node: "SiteNode") -> bytes:
    """Serialize ``node``'s full volatile state at an interval boundary."""
    service = node.service
    writer = ByteWriter()
    writer.varint(CHECKPOINT_VERSION)
    writer.svarint(node.site)
    writer.varint(service.last_run_time)
    # The calibrated change threshold (recomputable but expensive).
    threshold = service._threshold
    writer.varint(0 if threshold is None else 1)
    if threshold is not None:
        writer.float64(threshold)
    # Containment estimates (None containers are real entries).
    writer.varint(len(service.containment))
    for tag in sorted(service.containment):
        write_epc(writer, tag)
        write_opt_epc(writer, service.containment[tag])
    writer.varint(len(service.valid_from))
    for tag in sorted(service.valid_from):
        write_epc(writer, tag)
        writer.varint(service.valid_from[tag])
    _write_weight_map(writer, service.prior_weights)
    _write_weight_map(writer, service.last_weights)
    writer.varint(len(service._seeded_only))
    for tag in sorted(service._seeded_only):
        write_epc(writer, tag)
    writer.varint(len(service.critical_regions))
    for tag in sorted(service.critical_regions):
        write_epc(writer, tag)
        region = service.critical_regions[tag]
        writer.varint(region.start)
        writer.varint(region.end)
    # Regions parked by the stability gate (v3): restored alongside the
    # live ones so a recovered site re-infers re-entering tags over the
    # same critical epochs as the run that never crashed.
    writer.varint(len(service.stashed_regions))
    for tag in sorted(service.stashed_regions):
        write_epc(writer, tag)
        region = service.stashed_regions[tag]
        writer.varint(region.start)
        writer.varint(region.end)
    writer.varint(len(service.changes))
    for change in service.changes:
        write_epc(writer, change.tag)
        writer.varint(change.time)
        write_opt_epc(writer, change.old_container)
        write_opt_epc(writer, change.new_container)
        writer.float64(change.score)
    # Online-detector state (v3): run-length posteriors, cooloffs, and
    # the flagged set must survive a crash bit-for-bit, or the recovered
    # site's stability gate would make different skip decisions than
    # the run that never crashed. Empty when the gate is off.
    writer.blob(b"" if service.online is None else encode_online_state(service.online))
    # Node-level cursors.
    writer.varint(len(node.seen))
    for tag in sorted(node.seen):
        write_epc(writer, tag)
    writer.varint(node._sensor_pos)
    writer.varint(node.duplicates_dropped)
    writer.varint(len(node.migrations_in))
    for event in node.migrations_in:
        write_epc(writer, event.tag)
        writer.svarint(event.src)
        writer.svarint(event.dst)
        writer.varint(event.time)
        writer.varint(event.bytes_sent)
    # Delivery cursors (at-least-once layer). The unacked outbox is
    # deliberately absent: checkpoints are taken at boundaries, after
    # the cluster's reliable barrier has drained it.
    writer.varint(len(node._link_tx))
    for dst in sorted(node._link_tx):
        writer.svarint(dst)
        writer.varint(node._link_tx[dst])
    writer.varint(len(node._link_rx))
    for src in sorted(node._link_rx):
        writer.svarint(src)
        seqs = sorted(node._link_rx[src])
        writer.varint(len(seqs))
        previous = 0
        for seq in seqs:  # delta-encoded: applied seqs are near-dense
            writer.varint(seq - previous)
            previous = seq
    # Per-query state blobs.
    query_blobs = node.router.snapshot_queries()
    writer.varint(len(query_blobs))
    for name in sorted(query_blobs):
        writer.text(name)
        writer.blob(query_blobs[name])
    # The historical archive (its codec owns its own versioning).
    from repro.archive import encode_archive

    writer.blob(encode_archive(node.archive))
    return writer.getvalue()


def restore_site_checkpoint(node: "SiteNode", data: bytes) -> None:
    """Rebuild ``node`` from :func:`encode_site_checkpoint` output.

    The node must already be reset (fresh service + fresh query
    instances); this routine repopulates them.
    """
    try:
        _restore(node, ByteReader(data))
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed site checkpoint: {exc}") from exc


def _restore(node: "SiteNode", reader: ByteReader) -> None:
    version = reader.varint()
    if version != CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    site = reader.svarint()
    if site != node.site:
        raise ValueError(f"checkpoint is for site {site}, not {node.site}")
    service = node.service
    service.last_run_time = reader.varint()
    if reader.varint():
        service._threshold = reader.float64()
    service.containment = {
        read_epc(reader): read_opt_epc(reader) for _ in range(reader.varint())
    }
    service.valid_from = {
        read_epc(reader): reader.varint() for _ in range(reader.varint())
    }
    service.prior_weights = _read_weight_map(reader)
    service.last_weights = _read_weight_map(reader)
    service._seeded_only = {read_epc(reader) for _ in range(reader.varint())}
    service.critical_regions = {
        read_epc(reader): CriticalRegion(reader.varint(), reader.varint())
        for _ in range(reader.varint())
    }
    service.stashed_regions = {
        read_epc(reader): CriticalRegion(reader.varint(), reader.varint())
        for _ in range(reader.varint())
    }
    changes = []
    for _ in range(reader.varint()):
        changes.append(
            ChangePoint(
                tag=read_epc(reader),
                time=reader.varint(),
                old_container=read_opt_epc(reader),
                new_container=read_opt_epc(reader),
                score=reader.float64(),
            )
        )
    service.changes = changes
    online_blob = reader.blob()
    if online_blob:
        if service.online is None:
            raise ValueError(
                "checkpoint carries online-detector state but the site's "
                "service config has no online gate"
            )
        restore_online_state(service.online, online_blob)
    node.seen = {read_epc(reader) for _ in range(reader.varint())}
    node._sensor_pos = reader.varint()
    node.duplicates_dropped = reader.varint()
    migrations = []
    for _ in range(reader.varint()):
        migrations.append(
            MigrationEvent(
                tag=read_epc(reader),
                src=reader.svarint(),
                dst=reader.svarint(),
                time=reader.varint(),
                bytes_sent=reader.varint(),
            )
        )
    node.migrations_in = migrations
    node._link_tx = {reader.svarint(): reader.varint() for _ in range(reader.varint())}
    link_rx: dict[int, set[int]] = {}
    for _ in range(reader.varint()):
        src = reader.svarint()
        seqs: set[int] = set()
        previous = 0
        for _ in range(reader.varint()):
            previous += reader.varint()
            seqs.add(previous)
        link_rx[src] = seqs
    node._link_rx = link_rx
    blobs = {reader.text(): reader.blob() for _ in range(reader.varint())}
    node.router.restore_queries(blobs)
    from repro.archive import decode_archive
    from repro.serving.history import HistoryService

    archive = decode_archive(reader.blob())
    if archive.site != node.site:
        raise ValueError(
            f"checkpoint archive is for site {archive.site}, not {node.site}"
        )
    node.archive = archive
    node.history = HistoryService(archive)
