"""Event-driven site runtime (§4, Fig. 3).

The federation is a set of :class:`~repro.runtime.node.SiteNode`\\ s
exchanging typed :class:`~repro.runtime.envelope.Envelope` messages over
a pluggable :class:`~repro.runtime.transport.Transport`, orchestrated by
a :class:`~repro.runtime.cluster.Cluster`:

* :mod:`repro.runtime.envelope` — the message protocol: ONS traffic,
  migrate requests, batched (centroid-compressed) inference- and
  query-state bundles;
* :mod:`repro.runtime.transport` — deterministic in-process delivery or
  per-site worker threads with per-link inboxes;
* :mod:`repro.runtime.process` — process-parallel shared-nothing
  execution: logical sites sharded across forked OS workers, with
  shared-memory handoff for bulk payloads and a ledger-driven shard
  rebalancer;
* :mod:`repro.runtime.node` — one site's inference service + continuous
  queries, reacting to messages;
* :mod:`repro.runtime.router` — federated query routing: per-object
  automaton state migrates alongside inference state;
* :mod:`repro.runtime.cluster` — the interval schedule (tick → route →
  snapshot) replacing the old lockstep loop;
* :mod:`repro.runtime.faults` — seeded per-link fault injection
  (drop/duplicate/delay/reorder) over any transport;
* :mod:`repro.runtime.checkpoint` — the site checkpoint format behind
  :meth:`SiteNode.snapshot`/:meth:`SiteNode.restore` and
  :meth:`Cluster.crash`/:meth:`Cluster.recover` (the historical archive
  rides inside it).

Each node also feeds a per-site :class:`~repro.archive.store.SiteArchive`
at every boundary and answers ``history-request`` envelopes from the
serving layer (:mod:`repro.serving`) against it — attach a
:class:`~repro.serving.frontend.QueryFrontend` with
:meth:`Cluster.attach_frontend` for federated time-travel queries.

The legacy :class:`repro.distributed.coordinator.DistributedDeployment`
is now a thin facade over this runtime.
"""

from repro.runtime.cluster import Cluster, ClusterSnapshot
from repro.runtime.envelope import Envelope, MigrationEvent
from repro.runtime.faults import FaultPlan, FaultyTransport, LinkFaults
from repro.runtime.node import SiteNode
from repro.runtime.process import ProcessTransport, WorkerDied
from repro.runtime.router import QueryRouter
from repro.runtime.transport import InProcessTransport, ThreadedTransport, Transport

__all__ = [
    "Cluster",
    "ClusterSnapshot",
    "Envelope",
    "FaultPlan",
    "FaultyTransport",
    "InProcessTransport",
    "LinkFaults",
    "MigrationEvent",
    "ProcessTransport",
    "WorkerDied",
    "QueryRouter",
    "SiteNode",
    "ThreadedTransport",
    "Transport",
]
