"""Typed message envelopes for the site runtime (§4, Fig. 3).

Everything that crosses a site boundary is an :class:`Envelope`: an
addressed, kind-tagged byte payload. The payload codecs below cover the
four message families of the paper's federation:

* ``ons-lookup`` / ``ons-update`` — Object Naming Service traffic
  (tiny, control-plane; encoded by :mod:`repro.distributed.ons`);
* ``migrate-request`` — a site that just observed fresh objects asks
  their previous site for state (a tag list);
* ``inference-state`` — collapsed co-location weights (§4.1), shipped
  either per object or as a centroid-compressed batch (§4.2);
* ``query-state`` — per-object pattern-automaton state (Appendix B),
  grouped by query and centroid-compressed the same way;
* ``ack`` — at-least-once delivery acknowledgements (fault tolerance);
* ``history-request`` / ``history-response`` — the serving layer's
  historical (time-travel) queries and their answers, scatter-gathered
  by the :class:`~repro.serving.frontend.QueryFrontend`. Payload codecs
  live in :mod:`repro.serving.wire`; the kinds are declared here so the
  ledger accounts serving traffic separately from the paper's Table 5
  data kinds;
* ``replica-fetch`` / ``replica-segments`` — archive read-replica
  catch-up: a replica sends its replication cursor, the primary answers
  with the sealed segments past it (codecs in
  :mod:`repro.archive.replication`). Separate kinds keep replication
  bandwidth visible in the ledger next to serving traffic;
* ``edge-batch`` / ``edge-ack`` — the ingestion plane: per-reader edge
  nodes push store-and-forward batches of raw readings to the
  :class:`~repro.edge.gateway.IngestGateway` with at-least-once
  delivery (sequence numbers ride :attr:`Envelope.seq`; the batch codec
  lives in :mod:`repro.edge.wire`). ``edge-ack`` is a fault-overhead
  kind like ``ack``, so chaos accounting treats gateway acknowledgements
  as reliability overhead, not data.

Batched payloads reuse :func:`repro.distributed.sharing.centroid_compress`
so one bundle per ``(src, dst)`` pair replaces a message per object.

Every decoder below raises :class:`ValueError` on malformed input —
truncated varints, short float fields, out-of-range tag kinds, corrupt
diff opcodes — never a bare decoder error (``EOFError``,
``struct.error``, ``IndexError``): a corrupt or adversarial payload
must not leak codec internals into the runtime.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, NamedTuple, TypeVar

from repro._util.encoding import ByteReader, ByteWriter
from repro.distributed.network import ACK, EDGE_ACK, RETRANSMIT
from repro.distributed.sharing import SharedStateBundle, centroid_compress
from repro.sim.tags import EPC, read_epc, write_epc

__all__ = [
    "Envelope",
    "MigrationEvent",
    "MIGRATE_REQUEST",
    "INFERENCE_STATE",
    "QUERY_STATE",
    "ONS_LOOKUP",
    "ONS_UPDATE",
    "HISTORY_REQUEST",
    "HISTORY_RESPONSE",
    "REPLICA_FETCH",
    "REPLICA_SEGMENTS",
    "EDGE_BATCH",
    "EDGE_ACK",
    "ACK",
    "RETRANSMIT",
    "encode_tag_list",
    "decode_tag_list",
    "encode_state_bundle",
    "decode_state_bundle",
    "encode_query_bundle",
    "decode_query_bundle",
    "encode_single_query_state",
    "decode_single_query_state",
    "encode_ack",
    "decode_ack",
]

#: message kinds (the transport ledger aggregates bytes per kind).
MIGRATE_REQUEST = "migrate-request"
INFERENCE_STATE = "inference-state"
QUERY_STATE = "query-state"
ONS_LOOKUP = "ons-lookup"
ONS_UPDATE = "ons-update"
HISTORY_REQUEST = "history-request"
HISTORY_RESPONSE = "history-response"
REPLICA_FETCH = "replica-fetch"
REPLICA_SEGMENTS = "replica-segments"
EDGE_BATCH = "edge-batch"


@dataclass(frozen=True)
class Envelope:
    """One addressed message between sites."""

    src: int
    dst: int
    kind: str
    payload: bytes
    #: stream time at which the message was produced (interval boundary).
    time: int = 0
    #: per-``(src, dst)`` link sequence number stamped by the sending
    #: node (1-based; 0 = unsequenced control traffic). The receiving
    #: node dedups on it, so at-least-once delivery applies each
    #: envelope's effects exactly once. An ``ack`` envelope carries the
    #: acknowledged data sequence number here.
    seq: int = 0

    def __len__(self) -> int:
        return len(self.payload)


T = TypeVar("T")


def _decoded(label: str, decode: Callable[[], T]) -> T:
    """Run ``decode``, converting raw codec errors to :class:`ValueError`."""
    try:
        return decode()
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed {label}: {exc}") from exc


class MigrationEvent(NamedTuple):
    """One object's state hand-off between sites.

    Records state *actually shipped*: objects whose collapsed state is
    empty (nothing to transfer) produce no event — the cluster's
    ``migration_listener`` is the hook that sees every *requested*
    hand-off. ``bytes_sent`` is the object's own serialized state size;
    with batching the actual wire cost is lower (the bundle amortizes
    and diff-compresses it) and lives in the transport ledger.
    """

    tag: EPC
    src: int
    dst: int
    time: int
    bytes_sent: int


# -- tag lists (migrate-request) -----------------------------------------


def encode_tag_list(tags: list[EPC]) -> bytes:
    writer = ByteWriter()
    writer.varint(len(tags))
    for tag in tags:
        write_epc(writer, tag)
    return writer.getvalue()


def decode_tag_list(data: bytes) -> list[EPC]:
    def _decode() -> list[EPC]:
        reader = ByteReader(data)
        return [read_epc(reader) for _ in range(reader.varint())]

    return _decoded("tag list", _decode)


# -- batched state bundles (inference-state / query-state) ----------------


def encode_state_bundle(states: dict[EPC, bytes]) -> bytes:
    """Centroid-compress per-object byte states into one wire bundle."""
    return centroid_compress(states).to_bytes()


def decode_state_bundle(data: bytes) -> dict[EPC, bytes]:
    """Losslessly recover every object's state from a bundle."""
    return _decoded(
        "state bundle", lambda: SharedStateBundle.from_bytes(data).reconstruct()
    )


def encode_query_bundle(per_query: dict[str, dict[EPC, bytes]]) -> bytes:
    """Bundle automaton states for several queries at once.

    Layout: ``n_queries | (name, blob(state-bundle))*`` with each query's
    states centroid-compressed independently (states of *different*
    queries share little; states of the same query's co-migrating
    objects share almost everything, §4.2).
    """
    writer = ByteWriter()
    writer.varint(len(per_query))
    for name in sorted(per_query):
        writer.text(name)
        writer.blob(encode_state_bundle(per_query[name]))
    return writer.getvalue()


def decode_query_bundle(data: bytes) -> dict[str, dict[EPC, bytes]]:
    def _decode() -> dict[str, dict[EPC, bytes]]:
        reader = ByteReader(data)
        out: dict[str, dict[EPC, bytes]] = {}
        for _ in range(reader.varint()):
            name = reader.text()
            out[name] = decode_state_bundle(reader.blob())
        return out

    return _decoded("query bundle", _decode)


# -- per-object query state (the unbatched baseline) ----------------------


def encode_single_query_state(name: str, tag: EPC, state: bytes) -> bytes:
    writer = ByteWriter()
    writer.text(name)
    write_epc(writer, tag)
    writer.blob(state)
    return writer.getvalue()


def decode_single_query_state(data: bytes) -> tuple[str, EPC, bytes]:
    def _decode() -> tuple[str, EPC, bytes]:
        reader = ByteReader(data)
        name = reader.text()
        tag = read_epc(reader)
        return name, tag, reader.blob()

    return _decoded("single query state", _decode)


# -- delivery acknowledgements (at-least-once layer) -----------------------


def encode_ack(seq: int) -> bytes:
    """Acknowledge one per-link data sequence number."""
    if seq < 1:
        raise ValueError("only sequenced envelopes (seq >= 1) are acked")
    return ByteWriter().varint(seq).getvalue()


def decode_ack(data: bytes) -> int:
    def _decode() -> int:
        seq = ByteReader(data).varint()
        if seq < 1:
            raise ValueError(f"ack names invalid sequence number {seq}")
        return seq

    return _decoded("ack", _decode)
