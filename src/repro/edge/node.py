"""Per-reader edge nodes: parse, dedup, buffer, push at-least-once.

An :class:`EdgeNode` sits next to one physical reader. It parses the
vendor feed's raw lines (counting, never crashing on, garbage), dedups
within a sliding epoch window, groups fresh readings into immutable
bounded batches, spools every batch to disk *before* its first
transmission, and pushes to the gateway with sequence numbers, acks,
and retransmits under capped exponential backoff with seeded jitter.
A crash-restart (:meth:`crash`) loses only volatile niceties — the
dedup window, backoff timers — and replays the persisted queue; the
gateway's idempotent apply makes the resulting duplicates harmless.

Edge nodes register on the ingestion plane's transport as synthetic
sites (``edge_site_id``), below every id the federation itself uses, so
the existing :class:`~repro.runtime.faults.FaultyTransport` injects
drop/duplicate/delay/reorder faults into edge links exactly as it does
between federation sites.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro._util.rng import spawn_rng
from repro.edge.spool import BatchSpool
from repro.obs import get_telemetry
from repro.edge.wire import EDGE_ACK, EDGE_BATCH, EdgeBatch, encode_edge_batch
from repro.runtime.envelope import Envelope, decode_ack
from repro.runtime.transport import Transport
from repro.sim.tags import EPC
from repro.sim.trace import Reading

__all__ = ["EdgeNode", "EdgeStats", "GATEWAY_SITE", "edge_site_id"]

#: synthetic transport id of the ingest gateway (the ingestion plane has
#: its own transport + ledger; ids here never meet federation ids, but
#: staying below the replica range keeps debugging output unambiguous).
GATEWAY_SITE = -40


def edge_site_id(edge_id: int) -> int:
    """Synthetic transport id for edge node ``edge_id`` (0-based)."""
    return -50 - edge_id


@dataclass
class EdgeStats:
    """Counters for one edge node."""

    lines: int = 0
    parse_errors: int = 0
    duplicates_dropped: int = 0
    batches_formed: int = 0
    sends: int = 0
    retransmits: int = 0
    acked: int = 0
    restarts: int = 0
    #: high-water marks of the store-and-forward queue.
    max_pending_readings: int = 0
    max_unacked_batches: int = 0
    spool: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "lines": self.lines,
            "parse_errors": self.parse_errors,
            "duplicates_dropped": self.duplicates_dropped,
            "batches_formed": self.batches_formed,
            "sends": self.sends,
            "retransmits": self.retransmits,
            "acked": self.acked,
            "restarts": self.restarts,
            "max_pending_readings": self.max_pending_readings,
            "max_unacked_batches": self.max_unacked_batches,
        }


class EdgeNode:
    """Store-and-forward ingestion for one reader of one site."""

    def __init__(
        self,
        edge_id: int,
        site: int,
        reader: int,
        spool_dir: str,
        *,
        gateway: int = GATEWAY_SITE,
        max_batch: int = 512,
        dedup_window: int = 64,
        max_resident_batches: int = 64,
        backoff_base: int = 1,
        backoff_cap: int = 16,
        seed: int = 0,
    ) -> None:
        self.edge_id = edge_id
        self.site_id = edge_site_id(edge_id)
        self.site = site
        self.reader = reader
        self.gateway = gateway
        self.max_batch = max_batch
        self.dedup_window = dedup_window
        self.max_resident_batches = max_resident_batches
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = spawn_rng(seed, "edge", edge_id)
        self.spool = BatchSpool(spool_dir)
        self.stats = EdgeStats()
        self._transport: Transport | None = None
        self._reset_volatile()
        self._restore_from_spool()

    def _reset_volatile(self) -> None:
        self._pending: list[Reading] = []
        #: sliding-window dedup of raw readings by (time, tag, reader).
        self._recent: set[tuple[int, EPC, int]] = set()
        self._max_time = -1
        self._upto = -1
        self._last_batched_upto = -1
        #: seq -> encoded payload (or None when spilled out of RAM).
        self._unacked: "OrderedDict[int, bytes | None]" = OrderedDict()
        #: seq -> (next eligible pump round, attempt count).
        self._backoff: dict[int, tuple[int, int]] = {}
        self._round = 0

    def _restore_from_spool(self) -> None:
        recovered = self.spool.recover()
        self._next_seq = max(self.spool.next_seq(), max(recovered, default=0) + 1)
        for seq in sorted(recovered):
            self._unacked[seq] = recovered[seq]
            self._backoff[seq] = (0, 0)
        self._bound_resident()

    def bind(self, transport: Transport) -> None:
        transport.register(self.site_id, self.handle)
        self._transport = transport

    # -- feed side -----------------------------------------------------------

    def ingest_line(self, line: str) -> None:
        """Parse one raw vendor line; garbage is counted, never fatal."""
        self.stats.lines += 1
        parts = line.split(",")
        try:
            if parts[0] == "KA" and len(parts) == 2:
                self._upto = max(self._upto, int(parts[1]))
                return
            if parts[0] != "RD" or len(parts) != 4:
                raise ValueError(f"unrecognized feed line {line!r}")
            reading = Reading(int(parts[1]), EPC.parse(parts[2]), int(parts[3]))
        except (ValueError, IndexError):
            self.stats.parse_errors += 1
            return
        key = (reading.time, reading.tag, reading.reader)
        if key in self._recent:
            self.stats.duplicates_dropped += 1
            return
        self._recent.add(key)
        self._pending.append(reading)
        if reading.time > self._max_time:
            self._max_time = reading.time
            self._prune_recent()
        self._upto = max(self._upto, reading.time)
        self.stats.max_pending_readings = max(
            self.stats.max_pending_readings, len(self._pending)
        )

    def _prune_recent(self) -> None:
        floor = self._max_time - self.dedup_window
        if len(self._recent) > 4 * self.max_batch:
            self._recent = {k for k in self._recent if k[0] >= floor}

    # -- gateway side ---------------------------------------------------------

    def handle(self, env: Envelope) -> None:
        if env.kind != EDGE_ACK:
            return
        try:
            seq = decode_ack(env.payload)
        except ValueError:
            return
        if seq in self._unacked:
            del self._unacked[seq]
            self._backoff.pop(seq, None)
            self.spool.remove(seq)
            self.stats.acked += 1

    # -- the pump -------------------------------------------------------------

    def pump(self) -> None:
        """One scheduling round: form batches, send whatever is due."""
        self._round += 1
        self._form_batches()
        transport = self._transport
        if transport is None:
            return
        for seq in list(self._unacked):
            due, attempts = self._backoff.get(seq, (0, 0))
            if self._round < due:
                continue
            payload = self._unacked[seq]
            if payload is None:
                payload = self.spool.load(seq)
            tel = get_telemetry()
            with tel.span(
                "edge", "batch.send",
                edge=self.edge_id, site=self.site, seq=seq,
                attempt=attempts, payload_bytes=len(payload),
            ):
                transport.send(
                    Envelope(self.site_id, self.gateway, EDGE_BATCH, payload, seq=seq)
                )
            self.stats.sends += 1
            if attempts:
                self.stats.retransmits += 1
            if seq not in self._unacked:
                continue  # acked synchronously during the send
            delay = min(self.backoff_base << attempts, self.backoff_cap)
            jitter = int(self._rng.integers(0, delay + 1))
            self._backoff[seq] = (self._round + delay + jitter, attempts + 1)

    def _form_batches(self) -> None:
        while self._pending or self._upto > self._last_batched_upto:
            chunk, self._pending = (
                tuple(self._pending[: self.max_batch]),
                self._pending[self.max_batch :],
            )
            # Only the final chunk carries the new watermark: earlier
            # chunks' readings may still be trailed by same-epoch ones.
            upto = self._upto if not self._pending else self._last_batched_upto
            seq = self._next_seq
            self._next_seq += 1
            self.spool.set_next_seq(self._next_seq)
            batch = EdgeBatch(self.edge_id, self.site, seq, max(upto, 0), chunk)
            payload = encode_edge_batch(batch)
            self.spool.put(seq, payload)  # durable before first send
            self._unacked[seq] = payload
            self._backoff[seq] = (self._round, 0)
            self._last_batched_upto = max(self._last_batched_upto, upto)
            self.stats.batches_formed += 1
            if not self._pending:
                self._last_batched_upto = self._upto
        self.stats.max_unacked_batches = max(
            self.stats.max_unacked_batches, len(self._unacked)
        )
        self._bound_resident()

    def _bound_resident(self) -> None:
        """Keep at most ``max_resident_batches`` payloads in RAM; older
        unacked batches fall back to their spool file (read on resend)."""
        excess = len(self._unacked) - self.max_resident_batches
        if excess > 0:
            for seq in list(self._unacked)[:excess]:
                self._unacked[seq] = None

    # -- crash/restart ---------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state and replay the persisted queue."""
        get_telemetry().record_state(
            "edge", "node.crash", edge=self.edge_id, site=self.site
        )
        self.stats.restarts += 1
        self._reset_volatile()
        self._restore_from_spool()

    @property
    def drained(self) -> bool:
        return not self._pending and not self._unacked
