"""The ingestion pipeline: vendor feeds → edge nodes → gateway → traces.

This is the phased architecture the inference contract dictates: the
paper's streaming service consumes "an (already materialized) reading
stream" — presence spans peek at a tag's last sighting across the whole
trace — so ingestion runs fully to the horizon *first*, and the
federation then runs unmodified over the gateway-assembled traces. The
pipeline's convergence guarantee (at-least-once delivery + idempotent
set assembly + watermark-held seals) is exactly what makes the two
stages composable: under any tolerated edge fault the assembled traces
are bit-identical to the clean ones, so every downstream federation
result is too.

:func:`run_ingest` drives the pump loop: each round advances the wall
clock, feeds emit their newly covered lines (unless offline), edges
parse/batch/push, the transport flushes one delay round, and the
gateway seals every window its watermark allows. A seeded
:class:`EdgePlan` injects the flaky-edge chaos modes — offline windows
with burst replay, duplicated bursts, junk lines, reordering (feed- and
link-level), edge crash+restart, gateway crash+recover.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.distributed.network import Network
from repro.edge.gateway import GATEWAY_SITE, IngestGateway
from repro.obs import get_telemetry
from repro.edge.node import EdgeNode
from repro.runtime.faults import FaultPlan, FaultyTransport
from repro.runtime.transport import InProcessTransport, Transport
from repro.sim.trace import Trace
from repro.sim.vendor import FeedNoise, VendorFeed

__all__ = ["EdgePlan", "IngestReport", "run_ingest"]


@dataclass(frozen=True)
class EdgePlan:
    """A seeded flaky-edge fault schedule for one ingestion run.

    ``offline`` maps edge index → ``(t0, t1)`` wall-epoch windows during
    which that reader's feed goes silent, then burst-replays.
    ``link_faults`` wraps the ingestion transport in the standard
    :class:`~repro.runtime.faults.FaultyTransport` (drop / duplicate /
    delay / reorder on every edge↔gateway link). ``edge_restarts`` and
    ``gateway_restarts`` name wall epochs at which the corresponding
    process crashes and recovers from its persisted queue / WAL.
    """

    seed: int = 0
    noise: FeedNoise = FeedNoise()
    offline: dict = field(default_factory=dict)
    link_faults: FaultPlan | None = None
    edge_restarts: dict = field(default_factory=dict)
    gateway_restarts: tuple = ()


@dataclass
class IngestReport:
    """What one ingestion run did, for tests and benches."""

    readings: int
    pump_rounds: int
    edge_stats: list
    gateway_stats: dict
    edge_gauges: dict
    #: pump rounds from the end of the longest offline window until the
    #: gateway watermark caught back up (None without an offline window).
    recovery_rounds: int | None = None


def run_ingest(
    traces: list[Trace],
    interval: int,
    workdir: str,
    *,
    plan: EdgePlan | None = None,
    pump_epochs: int = 25,
    max_lag: int | None = None,
    late_policy: str = "drop",
    rerun_window: int = 2,
    reorder_window: int = 64,
    max_batch: int = 512,
    drain_limit: int = 4096,
) -> tuple[list[Trace], IngestReport]:
    """Ingest ``traces`` through the edge plane; return the rebuilt
    traces plus a report. ``traces`` play the role of the physical
    world: each (site, reader) slice becomes one vendor feed with one
    edge node, faulted per ``plan``.
    """
    plan = plan if plan is not None else EdgePlan()
    horizon = max(trace.horizon for trace in traces)
    ledger = Network()
    transport: Transport
    if plan.link_faults is not None:
        transport = FaultyTransport(plan.link_faults, InProcessTransport(ledger))
    else:
        transport = InProcessTransport(ledger)
    gateway = IngestGateway(
        len(traces),
        interval,
        os.path.join(workdir, "gateway"),
        reorder_window=reorder_window,
        max_lag=max_lag,
        late_policy=late_policy,
        rerun_window=rerun_window,
        ledger=ledger,
    )
    gateway.bind(transport)

    edges: list[EdgeNode] = []
    feeds: list[VendorFeed] = []
    for trace in traces:
        for reader in VendorFeed.split_trace(trace):
            edge_id = len(edges)
            window = plan.offline.get(edge_id)
            feeds.append(
                VendorFeed(
                    trace,
                    reader,
                    seed=plan.seed,
                    noise=plan.noise,
                    offline=(window,) if window is not None else (),
                )
            )
            edge = EdgeNode(
                edge_id,
                trace.site,
                reader,
                os.path.join(workdir, f"edge-{edge_id}"),
                max_batch=max_batch,
                seed=plan.seed,
            )
            edge.bind(transport)
            gateway.expect_edge(edge_id)
            edges.append(edge)

    edge_restarts = dict(plan.edge_restarts)
    gateway_restarts = sorted(plan.gateway_restarts)
    offline_end = max((t1 for _, t1 in plan.offline.values()), default=None)
    recovery_rounds: int | None = None
    recovery_start: int | None = None

    tel = get_telemetry()
    wall = 0
    rounds = 0
    while True:
        rounds += 1
        if rounds > drain_limit:
            raise RuntimeError(
                f"ingestion did not drain within {drain_limit} pump rounds "
                f"(watermark {gateway.watermark()}, horizon {horizon})"
            )
        wall = min(wall + pump_epochs, horizon)
        with tel.span("edge", "pump_round", round=rounds, wall=wall):
            for feed, edge in zip(feeds, edges):
                for line in feed.emit_until(wall):
                    edge.ingest_line(line)
            for edge in edges:
                edge.pump()
            transport.flush()
            gateway.advance(wall)
        # Crash schedules fire after the round's pump: an edge's parsed
        # readings are always in a spooled batch by then, so a restart
        # loses no data — only volatile timers and dedup state.
        while gateway_restarts and gateway_restarts[0] <= wall:
            gateway_restarts.pop(0)
            gateway.restart()
        for edge_id, at in list(edge_restarts.items()):
            if at <= wall:
                del edge_restarts[edge_id]
                edges[edge_id].crash()
        if offline_end is not None and recovery_start is None and wall >= offline_end:
            recovery_start = rounds
        if (
            recovery_start is not None
            and recovery_rounds is None
            and gateway.watermark() >= min(wall, offline_end)
        ):
            recovery_rounds = rounds - recovery_start
        if wall >= horizon and all(edge.drained for edge in edges):
            if getattr(transport, "pending_count", lambda: 0)() == 0:
                break
    gateway.finalize(horizon)
    rebuilt = gateway.build_traces(
        [t.layout for t in traces], [t.model for t in traces], horizon
    )
    report = IngestReport(
        readings=gateway.total_readings,
        pump_rounds=rounds,
        edge_stats=[e.stats.as_dict() for e in edges],
        gateway_stats=gateway.stats.as_dict(),
        edge_gauges=ledger.edge_gauges(),
        recovery_rounds=recovery_rounds,
    )
    gateway.close()
    return rebuilt, report
