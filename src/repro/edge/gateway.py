"""The ingest gateway: where dirty edge streams become clean windows.

The :class:`IngestGateway` is the single funnel between per-reader
:class:`~repro.edge.node.EdgeNode`\\ s and the federation. Its job is to
make at-least-once, out-of-order, duplicated delivery look exactly like
the clean trace:

* **ordering + dedup** — per-edge expected sequence numbers with a
  bounded reorder buffer; a batch below the expected number (or already
  buffered) is a duplicate: counted, re-acked, not re-applied. Within a
  batch, readings land in per-site *sets*, so replayed payloads are
  idempotent.
* **durability** — every accepted batch is appended to a crc-framed
  write-ahead log *before* its ack goes out. Acked therefore implies
  durable: a gateway crash+restart replays the WAL (idempotently,
  through the same apply path, including the recorded seal points) and
  the edges' retransmits cover anything that died between wire and WAL.
* **epoch boundaries** — readings stage until their inference window is
  *sealed*. A window seals when every edge's progress watermark has
  passed it (an offline reader freezes the watermark, holding the seal
  for its burst replay), or — after ``max_lag`` wall epochs — by force,
  so one dead reader degrades freshness, never liveness.
* **late arrivals** — a reading for an already-sealed window is counted
  and surfaced as a ledger gauge, then either dropped
  (``late_policy="drop"``) or merged by a bounded re-run of that
  window's assembly (``"rerun"``, at most ``rerun_window`` boundaries
  back). Graceful degradation; never a crash.

:meth:`build_traces` hands the federation complete per-site
:class:`~repro.sim.trace.Trace` objects via ``Trace.from_columns`` —
bit-identical to the simulator's when the reading sets converge, which
is the chaos harness's oracle.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.network import Network
from repro.edge.node import GATEWAY_SITE
from repro.obs import get_telemetry
from repro.edge.wire import EDGE_ACK, EDGE_BATCH, EdgeBatch, decode_edge_batch
from repro.runtime.envelope import Envelope, encode_ack
from repro.runtime.transport import Transport
from repro.sim.trace import Reading, Trace

__all__ = ["GatewayStats", "IngestGateway", "GATEWAY_SITE"]

_FRAME = struct.Struct("<I")
_REC_BATCH = 0
_REC_SEAL = 1


@dataclass
class GatewayStats:
    """Counters for one gateway."""

    batches_applied: int = 0
    duplicate_batches: int = 0
    reordered_batches: int = 0
    reorder_overflow: int = 0
    malformed_batches: int = 0
    duplicate_readings: int = 0
    late_readings: int = 0
    late_dropped: int = 0
    window_reruns: int = 0
    forced_seals: int = 0
    wal_records: int = 0
    wal_skipped: int = 0
    restarts: int = 0
    #: high-water mark of readings staged awaiting their seal.
    max_staged_readings: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class _EdgeLink:
    """Per-edge delivery state."""

    expected: int = 1
    upto: int = -1
    buffer: dict[int, EdgeBatch] = field(default_factory=dict)


class IngestGateway:
    """Deduplicating, reordering, crash-durable ingest funnel."""

    def __init__(
        self,
        n_sites: int,
        interval: int,
        wal_dir: str,
        *,
        site_id: int = GATEWAY_SITE,
        reorder_window: int = 64,
        max_lag: int | None = None,
        late_policy: str = "drop",
        rerun_window: int = 2,
        ledger: Network | None = None,
    ) -> None:
        if late_policy not in ("drop", "rerun"):
            raise ValueError(f"unknown late policy {late_policy!r}")
        self.n_sites = n_sites
        self.interval = interval
        self.site_id = site_id
        self.reorder_window = reorder_window
        self.max_lag = max_lag
        self.late_policy = late_policy
        self.rerun_window = rerun_window
        self.ledger = ledger if ledger is not None else Network()
        self.wal_dir = wal_dir
        os.makedirs(wal_dir, exist_ok=True)
        self._wal_path = os.path.join(wal_dir, "wal.log")
        self._wal = open(self._wal_path, "ab")
        self.stats = GatewayStats()
        self._transport: Transport | None = None
        self._replaying = False
        self._reset_volatile()

    def _reset_volatile(self) -> None:
        self._edges: dict[int, _EdgeLink] = {}
        #: site -> readings staged for not-yet-sealed windows.
        self._staged: list[set[Reading]] = [set() for _ in range(self.n_sites)]
        #: site -> {window boundary -> sealed reading set}.
        self._sealed: list[dict[int, set[Reading]]] = [
            {} for _ in range(self.n_sites)
        ]
        self.sealed_boundary = 0

    def bind(self, transport: Transport) -> None:
        transport.register(self.site_id, self.handle)
        self._transport = transport

    def expect_edge(self, edge_id: int) -> _EdgeLink:
        """Pre-register an edge so its silence holds the watermark even
        before (or without) a first delivered batch."""
        link = self._edges.get(edge_id)
        if link is None:
            link = self._edges[edge_id] = _EdgeLink()
        return link

    # -- delivery ------------------------------------------------------------

    def handle(self, env: Envelope) -> None:
        if env.kind != EDGE_BATCH:
            return
        try:
            batch = decode_edge_batch(env.payload)
        except ValueError:
            self.stats.malformed_batches += 1
            return  # no ack: the edge will retransmit an intact copy
        link = self.expect_edge(batch.edge_id)
        if batch.seq < link.expected or batch.seq in link.buffer:
            self.stats.duplicate_batches += 1
            self.ledger.note_edge_duplicate()
            self._ack(env.src, batch.seq)
            return
        if batch.seq > link.expected:
            if len(link.buffer) >= self.reorder_window:
                self.stats.reorder_overflow += 1
                return  # unacked: retransmitted once the window drains
            self.stats.reordered_batches += 1
            link.buffer[batch.seq] = batch
            self._append_wal(_REC_BATCH, env.payload)
            self._ack(env.src, batch.seq)
            return
        self._append_wal(_REC_BATCH, env.payload)
        self._ack(env.src, batch.seq)
        self._apply(link, batch)
        while link.expected in link.buffer:
            self._apply(link, link.buffer.pop(link.expected))

    def _ack(self, dst: int, seq: int) -> None:
        if self._replaying or self._transport is None:
            return
        self._transport.send(
            Envelope(self.site_id, dst, EDGE_ACK, encode_ack(seq), seq=seq)
        )

    def _apply(self, link: _EdgeLink, batch: EdgeBatch) -> None:
        link.expected = batch.seq + 1
        link.upto = max(link.upto, batch.upto)
        self.stats.batches_applied += 1
        tel = get_telemetry()
        if tel.enabled and not self._replaying:
            tel.registry.counter("gateway_batches", edge=batch.edge_id).inc()
            tel.registry.counter("gateway_readings", edge=batch.edge_id).inc(
                len(batch.readings)
            )
        if not 0 <= batch.site < self.n_sites:
            self.stats.malformed_batches += 1
            return
        staged = self._staged[batch.site]
        for reading in batch.readings:
            if reading.time < self.sealed_boundary:
                self._late(batch.site, reading)
            elif reading in staged:
                self.stats.duplicate_readings += 1
            else:
                staged.add(reading)
        self.stats.max_staged_readings = max(
            self.stats.max_staged_readings,
            sum(len(s) for s in self._staged),
        )

    # -- late arrivals ---------------------------------------------------------

    def _late(self, site: int, reading: Reading) -> None:
        """A reading for an already-sealed window: degrade, don't crash."""
        self.stats.late_readings += 1
        boundary = self._window_of(reading.time)
        recoverable = (
            self.late_policy == "rerun"
            and boundary >= self.sealed_boundary - self.rerun_window * self.interval
        )
        if not recoverable:
            self.stats.late_dropped += 1
            if not self._replaying:
                self.ledger.note_edge_late(1, dropped=1)
            return
        if not self._replaying:
            self.ledger.note_edge_late(1)
        window = self._sealed[site].setdefault(boundary, set())
        if reading in window:
            self.stats.duplicate_readings += 1
            return
        # Bounded re-run: amend the sealed window's assembly. The
        # federation consumes windows at build time, so the amendment is
        # the re-run — deliberately cheap and bounded by rerun_window.
        window.add(reading)
        self.stats.window_reruns += 1
        if not self._replaying:
            self.ledger.note_edge_rerun()

    def _window_of(self, time: int) -> int:
        """The seal boundary of the window containing ``time``
        (windows are ``[b - interval, b)``)."""
        return (time // self.interval + 1) * self.interval

    # -- epoch sealing ---------------------------------------------------------

    def watermark(self) -> int:
        """Feed progress the whole edge fleet has confirmed."""
        if not self._edges:
            return -1
        return min(link.upto for link in self._edges.values())

    def advance(self, wall: int) -> None:
        """Seal every due window the watermark (or ``max_lag``) allows."""
        while True:
            boundary = self.sealed_boundary + self.interval
            if boundary > wall:
                return
            if self.watermark() >= boundary - 1:
                self._seal(boundary)
            elif self.max_lag is not None and wall - boundary >= self.max_lag:
                self.stats.forced_seals += 1
                self._seal(boundary)
            else:
                return

    def _seal(self, boundary: int) -> None:
        tel = get_telemetry()
        with tel.span("edge", "gateway.seal", boundary=boundary) as span:
            self._append_wal(_REC_SEAL, struct.pack("<q", boundary))
            sealed_readings = 0
            for site in range(self.n_sites):
                staged = self._staged[site]
                window = {r for r in staged if r.time < boundary}
                self._sealed[site][boundary] = window
                staged.difference_update(window)
                sealed_readings += len(window)
            span.set(readings=sealed_readings, replaying=self._replaying)
            self.sealed_boundary = boundary

    # -- the write-ahead log ----------------------------------------------------

    def _append_wal(self, rec_type: int, payload: bytes) -> None:
        if self._replaying:
            return
        record = bytes([rec_type]) + payload
        framed = _FRAME.pack(len(record)) + record + _FRAME.pack(zlib.crc32(record))
        self._wal.write(framed)
        self._wal.flush()
        self.stats.wal_records += 1

    def _read_wal(self) -> list[tuple[int, bytes]]:
        """Every intact record; stops at the first torn/corrupt tail."""
        try:
            with open(self._wal_path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return []
        records, offset = [], 0
        while offset + _FRAME.size <= len(data):
            (length,) = _FRAME.unpack_from(data, offset)
            end = offset + _FRAME.size + length + _FRAME.size
            if length < 1 or end > len(data):
                self.stats.wal_skipped += 1
                break
            record = data[offset + _FRAME.size : end - _FRAME.size]
            (crc,) = _FRAME.unpack_from(data, end - _FRAME.size)
            if zlib.crc32(record) != crc:
                self.stats.wal_skipped += 1
                break
            records.append((record[0], record[1:]))
            offset = end
        return records

    # -- crash/restart -----------------------------------------------------------

    def restart(self) -> None:
        """Crash and recover: rebuild all volatile state from the WAL.

        Replay runs accepted batches and seal points through the normal
        apply path in their original order, so duplicate classification,
        late-arrival policy, and window contents are reproduced exactly;
        acks, WAL appends, and ledger gauges are suppressed while
        replaying (they already happened)."""
        get_telemetry().record_state(
            "edge", "gateway.restart", sealed_boundary=self.sealed_boundary
        )
        self.stats.restarts += 1
        known_edges = set(self._edges)
        self._wal.close()
        self._reset_volatile()
        for edge_id in known_edges:
            self.expect_edge(edge_id)
        records = self._read_wal()
        self._replaying = True
        try:
            for rec_type, payload in records:
                if rec_type == _REC_BATCH:
                    self.handle(
                        Envelope(0, self.site_id, EDGE_BATCH, payload, seq=1)
                    )
                elif rec_type == _REC_SEAL:
                    (boundary,) = struct.unpack("<q", payload)
                    while self.sealed_boundary < boundary:
                        self._seal(self.sealed_boundary + self.interval)
        finally:
            self._replaying = False
        self._wal = open(self._wal_path, "ab")

    def close(self) -> None:
        self._wal.close()

    # -- hand-off to the federation ------------------------------------------------

    def finalize(self, horizon: int) -> None:
        """Seal every window through ``horizon`` (end of stream)."""
        self.advance(((horizon + self.interval - 1) // self.interval) * self.interval)

    def build_traces(self, layouts, models, horizon: int) -> list[Trace]:
        """Complete per-site traces from every sealed window."""
        traces = []
        for site in range(self.n_sites):
            rows: list[Reading] = []
            for boundary in sorted(self._sealed[site]):
                rows.extend(self._sealed[site][boundary])
            rows.extend(self._staged[site])  # unsealed tail, if any
            tag_table = sorted({r.tag for r in rows})
            index = {tag: i for i, tag in enumerate(tag_table)}
            times = np.fromiter((r.time for r in rows), dtype=np.int64, count=len(rows))
            tag_ids = np.fromiter(
                (index[r.tag] for r in rows), dtype=np.int64, count=len(rows)
            )
            readers = np.fromiter(
                (r.reader for r in rows), dtype=np.int64, count=len(rows)
            )
            traces.append(
                Trace.from_columns(
                    site, layouts[site], models[site],
                    times, tag_ids, readers, tag_table, horizon,
                )
            )
        return traces

    @property
    def total_readings(self) -> int:
        return sum(len(s) for s in self._staged) + sum(
            len(w) for site in self._sealed for w in site.values()
        )
