"""Edge ingestion: lossy reader feeds → clean federation traces.

The layer between (simulated-)vendor reader feeds and the federation:
per-reader :class:`~repro.edge.node.EdgeNode` store-and-forward queues
with spill-to-disk persistence, an at-least-once batch protocol over
``edge-batch``/``edge-ack`` envelopes, and the deduplicating,
reordering, crash-durable :class:`~repro.edge.gateway.IngestGateway`
that seals readings into epoch windows and hands the federation
complete per-site traces. See :mod:`repro.edge.pipeline` for the
end-to-end driver and the flaky-edge chaos modes.
"""

from repro.edge.gateway import GATEWAY_SITE, GatewayStats, IngestGateway
from repro.edge.node import EdgeNode, EdgeStats, edge_site_id
from repro.edge.pipeline import EdgePlan, IngestReport, run_ingest
from repro.edge.spool import BatchSpool, SpoolCorruption
from repro.edge.wire import EDGE_ACK, EDGE_BATCH, EdgeBatch, decode_edge_batch, encode_edge_batch

__all__ = [
    "GATEWAY_SITE",
    "GatewayStats",
    "IngestGateway",
    "EdgeNode",
    "EdgeStats",
    "edge_site_id",
    "EdgePlan",
    "IngestReport",
    "run_ingest",
    "BatchSpool",
    "SpoolCorruption",
    "EDGE_ACK",
    "EDGE_BATCH",
    "EdgeBatch",
    "decode_edge_batch",
    "encode_edge_batch",
]
