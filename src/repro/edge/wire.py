"""Wire codec for the edge ingestion plane.

An :class:`EdgeBatch` is the unit of at-least-once delivery between a
per-reader :class:`~repro.edge.node.EdgeNode` and the
:class:`~repro.edge.gateway.IngestGateway`: an immutable group of raw
``(time, tag, reader)`` readings plus the edge's progress watermark
(``upto`` — the feed has reported everything through that epoch, so the
gateway may seal inference windows at or below it). The per-link
sequence number also rides the carrying
:class:`~repro.runtime.envelope.Envelope`'s ``seq`` field, so fault
injection and ledger accounting classify retransmitted batches exactly
like the federation's own sequenced traffic.

The same discipline as every other codec in the repo: decoders raise
:class:`ValueError` on malformed input — truncated varints, trailing
garbage, out-of-range tag kinds — never a bare decoder error.
"""

from __future__ import annotations

from typing import NamedTuple

from repro._util.encoding import ByteReader, ByteWriter
from repro.runtime.envelope import EDGE_ACK, EDGE_BATCH, _decoded
from repro.sim.tags import read_epc, write_epc
from repro.sim.trace import Reading

__all__ = [
    "EDGE_BATCH",
    "EDGE_ACK",
    "EdgeBatch",
    "encode_edge_batch",
    "decode_edge_batch",
]


class EdgeBatch(NamedTuple):
    """One immutable store-and-forward batch from an edge node.

    ``site`` is the federation site the edge's reader belongs to;
    ``upto`` is the feed-progress watermark: every reading of this
    reader with ``time <= upto`` has been handed over (in this batch or
    an earlier one). A batch may be empty — a pure watermark heartbeat.
    """

    edge_id: int
    site: int
    seq: int
    upto: int
    readings: tuple[Reading, ...]


def encode_edge_batch(batch: EdgeBatch) -> bytes:
    writer = ByteWriter()
    writer.varint(batch.edge_id)
    writer.varint(batch.site)
    writer.varint(batch.seq)
    writer.varint(batch.upto)
    writer.varint(len(batch.readings))
    for reading in batch.readings:
        writer.varint(reading.time)
        write_epc(writer, reading.tag)
        writer.varint(reading.reader)
    return writer.getvalue()


def decode_edge_batch(data: bytes) -> EdgeBatch:
    def _decode() -> EdgeBatch:
        reader = ByteReader(data)
        edge_id = reader.varint()
        site = reader.varint()
        seq = reader.varint()
        if seq < 1:
            raise ValueError(f"edge batch carries invalid sequence number {seq}")
        upto = reader.varint()
        readings = tuple(
            Reading(reader.varint(), read_epc(reader), reader.varint())
            for _ in range(reader.varint())
        )
        if not reader.exhausted():
            raise ValueError("edge batch has trailing bytes")
        return EdgeBatch(edge_id, site, seq, upto, readings)

    return _decoded("edge batch", _decode)
