"""Bounded store-and-forward persistence for edge nodes.

Every batch an :class:`~repro.edge.node.EdgeNode` forms is written here
*before* its first transmission, so a crashed edge restarts with its
unacknowledged queue intact (the at-least-once contract: a batch may be
delivered twice after a replay, never zero times). Files follow the
little-endian idiom of :mod:`repro.archive.tiers` — a raw byte block
per batch — plus a crc32 footer, because spool files must survive the
exact failure mode they exist for: a crash mid-write leaves a truncated
tail, which recovery skips (and counts) instead of crashing on.

A tiny ``meta`` record persists the next sequence number. Without it a
restarted edge would re-mint sequence numbers already acknowledged and
the gateway's dedup window would silently discard fresh data.
"""

from __future__ import annotations

import os
import struct
import zlib

__all__ = ["BatchSpool", "SpoolCorruption"]

_CRC = struct.Struct("<I")


class SpoolCorruption(ValueError):
    """A spool file failed its length or checksum validation."""


def _frame(payload: bytes) -> bytes:
    return payload + _CRC.pack(zlib.crc32(payload))


def _unframe(data: bytes, label: str) -> bytes:
    if len(data) < _CRC.size:
        raise SpoolCorruption(f"{label}: truncated ({len(data)} bytes)")
    payload, footer = data[: -_CRC.size], data[-_CRC.size :]
    if zlib.crc32(payload) != _CRC.unpack(footer)[0]:
        raise SpoolCorruption(f"{label}: checksum mismatch")
    return payload


class BatchSpool:
    """Crash-durable queue of encoded batches, keyed by sequence number."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: files recovery had to skip because they failed validation.
        self.corruptions = 0

    def _path(self, seq: int) -> str:
        return os.path.join(self.root, f"batch-{seq:08d}.col")

    def put(self, seq: int, payload: bytes) -> None:
        with open(self._path(seq), "wb") as fh:
            fh.write(_frame(payload))

    def load(self, seq: int) -> bytes:
        with open(self._path(seq), "rb") as fh:
            return _unframe(fh.read(), f"spooled batch {seq}")

    def remove(self, seq: int) -> None:
        try:
            os.remove(self._path(seq))
        except FileNotFoundError:
            pass

    def pending(self) -> list[int]:
        seqs = []
        for name in os.listdir(self.root):
            if name.startswith("batch-") and name.endswith(".col"):
                seqs.append(int(name[len("batch-") : -len(".col")]))
        return sorted(seqs)

    # -- the durable sequence counter ---------------------------------------

    def set_next_seq(self, next_seq: int) -> None:
        with open(os.path.join(self.root, "meta"), "wb") as fh:
            fh.write(_frame(struct.pack("<q", next_seq)))

    def next_seq(self) -> int:
        """The persisted counter, or 1 on a fresh (or corrupt) spool."""
        try:
            with open(os.path.join(self.root, "meta"), "rb") as fh:
                payload = _unframe(fh.read(), "spool meta")
        except FileNotFoundError:
            return 1
        except SpoolCorruption:
            self.corruptions += 1
            # Fall back to past the highest intact batch: conservative —
            # possibly skipping numbers, never reusing acknowledged ones
            # below an unacked batch still on disk.
            pending = self.pending()
            return (pending[-1] + 1) if pending else 1
        return struct.unpack("<q", payload)[0]

    def recover(self) -> dict[int, bytes]:
        """All intact spooled batches; corrupt files are skipped + counted."""
        out: dict[int, bytes] = {}
        for seq in self.pending():
            try:
                out[seq] = self.load(seq)
            except SpoolCorruption:
                self.corruptions += 1
        return out
