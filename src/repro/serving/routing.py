"""Serving-tier routing: consistent hashing, frontend pools, tenants.

Three small pieces that turn the single-frontend serving path into a
horizontally scalable tier:

* :class:`HashRing` — deterministic consistent hashing (blake2b, so
  placement is stable across processes and runs — ``hash()`` is salted
  per interpreter and useless here). Used both to pick which archive
  endpoint (primary or replica) serves a given tag and to partition
  tags across frontends.
* :class:`TenantPolicy` — per-tenant admission limits layered on the
  frontend's global ``max_in_flight``: an optional in-flight ``quota``
  and a ``priority`` (negative = background traffic, shed once the
  frontend is at half capacity so interactive tenants keep headroom).
* :class:`FrontendPool` — N :class:`~repro.serving.frontend.QueryFrontend`\\ s
  behind one facade, each registered as its own synthetic site on the
  shared transport, with per-tag consistent-hash routing between them
  (so each tag's cache entries concentrate on one frontend instead of
  being duplicated N times).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["HashRing", "TenantPolicy", "FrontendPool", "PooledSession"]


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    return int.from_bytes(hashlib.blake2b(token.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing over a fixed set of endpoints.

    Each endpoint owns ``vnodes`` points on a 64-bit ring; a key routes
    to the first endpoint point at or after its own hash. Placement is
    deterministic and nearly uniform, and removing one endpoint only
    remaps the keys it owned.
    """

    def __init__(self, endpoints: Sequence[int], vnodes: int = 64) -> None:
        endpoints = list(endpoints)
        if not endpoints:
            raise ValueError("hash ring needs at least one endpoint")
        if len(set(endpoints)) != len(endpoints):
            raise ValueError("hash ring endpoints must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.endpoints = tuple(endpoints)
        points = [
            (_point(f"{endpoint}#{v}"), endpoint)
            for endpoint in endpoints
            for v in range(vnodes)
        ]
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, key: str) -> int:
        """The endpoint owning ``key``."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, count: int = 1) -> tuple[int, ...]:
        """The first ``count`` distinct endpoints at or after ``key``.

        Walking the ring past the owner yields each key's stable
        fallback order — the basis for two-choice load balancing (pick
        the less-loaded of ``owners(key, 2)``) and for failover.
        """
        if count < 1:
            raise ValueError("count must be positive")
        index = bisect.bisect_right(self._hashes, _point(key))
        out: list[int] = []
        for step in range(len(self._hashes)):
            owner = self._owners[(index + step) % len(self._hashes)]
            if owner not in out:
                out.append(owner)
                if len(out) == count:
                    break
        return tuple(out)


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant.

    ``quota`` caps the tenant's own in-flight queries (None = only the
    frontend's global limit applies). ``priority < 0`` marks background
    traffic: it is admitted only while the frontend is under half of
    ``max_in_flight``, so bursts of bulk audits cannot starve
    interactive tenants.
    """

    quota: int | None = None
    priority: int = 0


class FrontendPool:
    """N query frontends behind one facade, partitioned by tag.

    Every frontend registers its own synthetic site id on the shared
    transport (``base_site``, descending), sees every site's appends,
    and owns the cache for the tags the pool's ring assigns it.
    """

    def __init__(
        self,
        size: int = 2,
        max_in_flight: int = 64,
        cache_capacity: int = 1024,
        base_site: int | None = None,
    ) -> None:
        from repro.serving.frontend import FRONTEND_SITE, QueryFrontend

        if size < 1:
            raise ValueError("pool needs at least one frontend")
        base = FRONTEND_SITE if base_site is None else base_site
        self.frontends = [
            QueryFrontend(max_in_flight, cache_capacity, site_id=base - i)
            for i in range(size)
        ]
        self._by_site = {frontend.site_id: frontend for frontend in self.frontends}
        self._ring = HashRing([frontend.site_id for frontend in self.frontends])
        self._sessions = 0

    # -- wiring -----------------------------------------------------------

    def bind(
        self,
        transport,
        sites: Sequence[int],
        replicas: Mapping[int, Sequence[int]] | None = None,
        read_preference: str = "any",
    ) -> None:
        for frontend in self.frontends:
            frontend.bind(transport, sites, replicas, read_preference)

    def note_append(self, site: int, boundary: int) -> None:
        for frontend in self.frontends:
            frontend.note_append(site, boundary)

    def set_tenant_policy(self, tenant: str, policy: TenantPolicy) -> None:
        for frontend in self.frontends:
            frontend.set_tenant_policy(tenant, policy)

    # -- routing ----------------------------------------------------------

    def frontend_for(self, key) -> "QueryFrontend":  # noqa: F821 - lazy import
        """The frontend owning ``key`` (a tag or query name)."""
        return self._by_site[self._ring.route(str(key))]

    def _frontend_of(self, request) -> "QueryFrontend":  # noqa: F821
        return self.frontend_for(request.tag if request.tag is not None else request.name)

    # -- execution --------------------------------------------------------

    def execute(self, request):
        return self._frontend_of(request).execute(request)

    def execute_many(self, requests, tenant: str | None = None) -> list:
        """Partition a batch across the pool, preserving request order."""
        requests = list(requests)
        groups: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self._frontend_of(request).site_id, []).append(index)
        results = [None] * len(requests)
        for site_id, indices in groups.items():
            batch = [requests[i] for i in indices]
            for i, result in zip(indices, self._by_site[site_id].execute_many(batch, tenant)):
                results[i] = result
        return results

    def session(self, name: str | None = None, tenant: str | None = None) -> "PooledSession":
        self._sessions += 1
        label = name if name is not None else f"pool-session-{self._sessions}"
        return PooledSession(self, label, tenant)

    # -- accounting -------------------------------------------------------

    def stats(self):
        """Pool-wide counters (sum over frontends)."""
        from repro.serving.frontend import ServingStats

        total = ServingStats()
        for frontend in self.frontends:
            stats = frontend.stats
            total.queries += stats.queries
            total.cache_hits += stats.cache_hits
            total.remote_requests += stats.remote_requests
            total.retransmits += stats.retransmits
            total.rejected += stats.rejected
            total.dropped += stats.dropped
        return total


class PooledSession:
    """A client session over a :class:`FrontendPool`.

    Mirrors :class:`~repro.serving.frontend.ServingSession`'s query
    API, routing each call to the tag's owning frontend; one underlying
    session per touched frontend carries the per-tenant stats.
    """

    def __init__(self, pool: FrontendPool, name: str, tenant: str | None = None) -> None:
        self.pool = pool
        self.name = name
        self.tenant = tenant
        self._sessions: dict[int, object] = {}

    def _session_for(self, key):
        frontend = self.pool.frontend_for(key)
        session = self._sessions.get(frontend.site_id)
        if session is None:
            session = frontend.session(
                f"{self.name}@{frontend.site_id}", tenant=self.tenant
            )
            self._sessions[frontend.site_id] = session
        return session

    def location(self, tag, time: int, k: int = 1):
        return self._session_for(tag).location(tag, time, k)

    def containment(self, tag, time: int, k: int = 1):
        return self._session_for(tag).containment(tag, time, k)

    def trajectory(self, tag, lo: int, hi: int = -1):
        return self._session_for(tag).trajectory(tag, lo, hi)

    def provenance(self, tag, time: int):
        return self._session_for(tag).provenance(tag, time)

    def dwell(self, tag, lo: int, hi: int = -1):
        return self._session_for(tag).dwell(tag, lo, hi)

    def alerts(self, name: str = "", lo: int = 0, hi: int = -1):
        return self._session_for(name).alerts(name, lo, hi)

    def stats(self):
        """Session-wide counters (sum over per-frontend sessions)."""
        from repro.serving.frontend import ServingStats

        total = ServingStats()
        for session in self._sessions.values():
            total.queries += session.stats.queries
            total.cache_hits += session.stats.cache_hits
            total.rejected += session.stats.rejected
        return total
