"""Query serving: federated historical (time-travel) queries.

* :mod:`repro.serving.history` — :class:`HistoryService`: per-site
  execution of point-in-time location/containment, trajectory,
  provenance, dwell, and alert-scan queries over the site's
  :class:`~repro.archive.store.SiteArchive`;
* :mod:`repro.serving.wire` — the ``history-request``/``history-response``
  payload codecs (ValueError-hardened like every wire format here);
* :mod:`repro.serving.frontend` — :class:`QueryFrontend`: client-facing
  scatter-gather over the transport with an epoch-tagged result cache,
  admission control, and :class:`ServingSession` handles.
"""

from repro.serving.frontend import (
    FRONTEND_SITE,
    Backpressure,
    QueryFrontend,
    QueryResult,
    ServingSession,
)
from repro.serving.history import HistoryAnswer, HistoryService
from repro.serving.wire import (
    HISTORY_KINDS,
    HistoryRequest,
    HistoryResponse,
    decode_history_request,
    decode_history_response,
    encode_history_request,
    encode_history_response,
)

__all__ = [
    "FRONTEND_SITE",
    "HISTORY_KINDS",
    "Backpressure",
    "HistoryAnswer",
    "HistoryRequest",
    "HistoryResponse",
    "HistoryService",
    "QueryFrontend",
    "QueryResult",
    "ServingSession",
    "decode_history_request",
    "decode_history_response",
    "encode_history_request",
    "encode_history_response",
]
