"""Query serving: federated historical (time-travel) queries.

* :mod:`repro.serving.history` — :class:`HistoryService`: per-site
  execution of point-in-time location/containment, trajectory,
  provenance, dwell, and alert-scan queries over the site's
  :class:`~repro.archive.store.SiteArchive`;
* :mod:`repro.serving.wire` — the ``history-request``/``history-response``
  payload codecs (ValueError-hardened like every wire format here);
* :mod:`repro.serving.frontend` — :class:`QueryFrontend`: client-facing
  scatter-gather over the transport with an epoch-tagged result cache,
  admission control, batched execution, and :class:`ServingSession`
  handles;
* :mod:`repro.serving.replica` — :class:`ArchiveReplica`: read-only
  archive copies (bit-identical via segment replication) answering in
  their primary's name, plus :class:`ArchivePublisher` for serving
  bare archives;
* :mod:`repro.serving.routing` — consistent-hash endpoint/frontend
  routing (:class:`HashRing`), multi-frontend pools
  (:class:`FrontendPool`), and per-tenant admission policies
  (:class:`TenantPolicy`).
"""

from repro.serving.frontend import (
    FRONTEND_SITE,
    Backpressure,
    QueryFrontend,
    QueryResult,
    ServingSession,
    ServingStats,
)
from repro.serving.history import HistoryAnswer, HistoryService
from repro.serving.replica import (
    REPLICA_SITE_BASE,
    ArchivePublisher,
    ArchiveReplica,
    ReplicaStats,
    replica_site_id,
)
from repro.serving.routing import FrontendPool, HashRing, PooledSession, TenantPolicy
from repro.serving.wire import (
    HISTORY_KINDS,
    HistoryRequest,
    HistoryResponse,
    decode_history_request,
    decode_history_response,
    encode_history_request,
    encode_history_response,
)

__all__ = [
    "FRONTEND_SITE",
    "HISTORY_KINDS",
    "REPLICA_SITE_BASE",
    "ArchivePublisher",
    "ArchiveReplica",
    "Backpressure",
    "FrontendPool",
    "HashRing",
    "HistoryAnswer",
    "HistoryRequest",
    "HistoryResponse",
    "HistoryService",
    "PooledSession",
    "QueryFrontend",
    "QueryResult",
    "ReplicaStats",
    "ServingSession",
    "ServingStats",
    "TenantPolicy",
    "replica_site_id",
]
