"""Wire codecs for the historical-query protocol.

Two new envelope kinds carry serving traffic (see
:mod:`repro.runtime.envelope` for the constants):

* ``history-request`` — a :class:`HistoryRequest`: one historical query
  addressed to a site, tagged with the frontend's request id;
* ``history-response`` — a :class:`HistoryResponse`: the site's answer
  rows plus ``as_of`` (the site's last archived boundary — the epoch
  tag the frontend's result cache keys on) and ``last_update`` (when
  the answering interval took effect — the freshness the frontend's
  scatter-gather merge ranks sites by).

Requests are deliberately *idempotent reads*: they carry no sequence
number, and the frontend retransmits a request until its response
arrives (deduplicating responses on the request id). That gives
at-least-once semantics without entangling serving traffic with the
cluster's barrier-driven ack/outbox machinery, and keeps the new
ledger kinds fully separate from the paper's Table 5 data kinds.

Every decoder raises :class:`ValueError` on malformed input — unknown
query kinds, truncated varints, short float fields — never a bare
decoder error.
"""

from __future__ import annotations

import struct
from typing import Callable, NamedTuple, TypeVar

from repro._util.encoding import ByteReader, ByteWriter
from repro.sim.tags import EPC, read_opt_epc, write_opt_epc

__all__ = [
    "HISTORY_KINDS",
    "HistoryRequest",
    "HistoryResponse",
    "encode_history_request",
    "decode_history_request",
    "encode_history_response",
    "decode_history_response",
]

#: the historical-query kinds the protocol speaks.
HISTORY_KINDS = (
    "location",
    "containment",
    "trajectory",
    "provenance",
    "dwell",
    "alerts",
)

T = TypeVar("T")


def _decoded(label: str, decode: Callable[[], T]) -> T:
    try:
        return decode()
    except ValueError:
        raise
    except (EOFError, struct.error, IndexError, OverflowError) as exc:
        raise ValueError(f"malformed {label}: {exc}") from exc


class HistoryRequest(NamedTuple):
    """One historical query.

    ``t0``/``t1`` are the query's time arguments (point queries use
    ``t0``; range queries use ``[t0, t1)`` with ``t1 == -1`` meaning
    unbounded), ``k`` the top-k width for posterior queries, and
    ``name`` the alert-scan query-name filter (empty = all queries).
    """

    request_id: int
    kind: str
    tag: EPC | None
    t0: int
    t1: int = -1
    k: int = 1
    name: str = ""


class HistoryResponse(NamedTuple):
    """One site's answer to a :class:`HistoryRequest`."""

    request_id: int
    site: int
    #: the site's last archived boundary when it answered (cache tag).
    as_of: int
    kind: str
    #: when the answering interval took effect (-1 = no local answer);
    #: the frontend picks the freshest site for point queries.
    last_update: int
    #: kind-specific rows, see :mod:`repro.serving.history`.
    rows: tuple


def encode_history_request(request: HistoryRequest) -> bytes:
    if request.kind not in HISTORY_KINDS:
        raise ValueError(f"unknown history query kind {request.kind!r}")
    if request.k < 1:
        raise ValueError("top-k width must be at least 1")
    writer = ByteWriter()
    writer.varint(request.request_id)
    writer.varint(HISTORY_KINDS.index(request.kind))
    write_opt_epc(writer, request.tag)
    writer.svarint(request.t0)
    writer.svarint(request.t1)
    writer.varint(request.k)
    writer.text(request.name)
    return writer.getvalue()


def decode_history_request(data: bytes) -> HistoryRequest:
    def _decode() -> HistoryRequest:
        reader = ByteReader(data)
        request_id = reader.varint()
        kind_index = reader.varint()
        if kind_index >= len(HISTORY_KINDS):
            raise ValueError(f"unknown history query kind index {kind_index}")
        tag = read_opt_epc(reader)
        t0 = reader.svarint()
        t1 = reader.svarint()
        k = reader.varint()
        if k < 1:
            raise ValueError("top-k width must be at least 1")
        return HistoryRequest(
            request_id, HISTORY_KINDS[kind_index], tag, t0, t1, k, reader.text()
        )

    return _decoded("history request", _decode)


# -- per-kind row codecs ----------------------------------------------------


def _write_rows(writer: ByteWriter, kind: str, rows: tuple) -> None:
    writer.varint(len(rows))
    for row in rows:
        if kind == "location":
            writer.svarint(row[0]).float64(row[1])
        elif kind in ("containment", "provenance"):
            write_opt_epc(writer, row[0])
            writer.float64(row[1])
        elif kind == "trajectory":
            writer.varint(row[0]).svarint(row[1]).svarint(row[2])
        elif kind == "dwell":
            writer.svarint(row[0]).varint(row[1])
        else:  # alerts
            writer.text(row[0]).text(row[1]).varint(row[2]).varint(row[3])
            writer.varint(len(row[4]))
            for value in row[4]:
                writer.float64(value)


def _read_rows(reader: ByteReader, kind: str) -> tuple:
    rows = []
    for _ in range(reader.varint()):
        if kind == "location":
            rows.append((reader.svarint(), reader.float64()))
        elif kind in ("containment", "provenance"):
            rows.append((read_opt_epc(reader), reader.float64()))
        elif kind == "trajectory":
            rows.append((reader.varint(), reader.svarint(), reader.svarint()))
        elif kind == "dwell":
            rows.append((reader.svarint(), reader.varint()))
        else:  # alerts
            name = reader.text()
            key = reader.text()
            start = reader.varint()
            end = reader.varint()
            values = tuple(reader.float64() for _ in range(reader.varint()))
            rows.append((name, key, start, end, values))
    return tuple(rows)


def encode_history_response(response: HistoryResponse) -> bytes:
    if response.kind not in HISTORY_KINDS:
        raise ValueError(f"unknown history query kind {response.kind!r}")
    writer = ByteWriter()
    writer.varint(response.request_id)
    writer.svarint(response.site)
    writer.varint(response.as_of)
    writer.varint(HISTORY_KINDS.index(response.kind))
    writer.svarint(response.last_update)
    _write_rows(writer, response.kind, response.rows)
    return writer.getvalue()


def decode_history_response(data: bytes) -> HistoryResponse:
    def _decode() -> HistoryResponse:
        reader = ByteReader(data)
        request_id = reader.varint()
        site = reader.svarint()
        as_of = reader.varint()
        kind_index = reader.varint()
        if kind_index >= len(HISTORY_KINDS):
            raise ValueError(f"unknown history query kind index {kind_index}")
        kind = HISTORY_KINDS[kind_index]
        last_update = reader.svarint()
        return HistoryResponse(
            request_id, site, as_of, kind, last_update, _read_rows(reader, kind)
        )

    return _decoded("history response", _decode)
