"""The query-serving frontend: federated time-travel queries.

A :class:`QueryFrontend` registers on the cluster's transport as a
synthetic site (``FRONTEND_SITE``, alongside the ONS at ``-2`` and the
centralized server at ``-1``) and executes historical queries by
**scatter-gather**: one ``history-request`` envelope per site, answers
merged per query kind. All serving traffic flows through the ordinary
:class:`~repro.runtime.transport.Transport` send path, so the ledger
accounts it per link under its own kinds — the paper's Table 5 data
kinds are untouched.

**At-least-once.** Requests are idempotent reads, so instead of
entangling serving traffic with the cluster's sequenced ack/outbox
machinery the frontend simply retransmits a request until the site's
response arrives, deduplicating responses on the request id. One
transport flush is a delivery barrier, so on a reliable transport the
first round always completes; a lossy transport costs extra rounds
(counted in :attr:`ServingStats.retransmits`).

**Replica routing.** When :meth:`bind` is given read replicas
(:mod:`repro.serving.replica`), each site's answers may come from the
primary or any of its replicas — chosen per query tag by a
deterministic consistent-hash ring (:class:`~repro.serving.routing.HashRing`)
with **two-choice balancing**: the tag's two ring owners are the only
candidates (so its reads concentrate on at most two endpoints and the
archive pages stay warm there) and the less-loaded of the pair serves
each request (so a skewed tag mix cannot pile onto one replica). Replicas answer in the primary's name (``response.site``
is the primary), which keeps the merge, the epoch vector, and the
at-least-once bookkeeping identical to the primary-only path; if an
endpoint stays silent the gather fails over to the primary after a
couple of rounds.

**Caching.** Results are cached under the query's parameters, tagged
with the *epoch vector* — every site's last archived boundary — at fill
time. The cluster notifies the frontend after each boundary's appends
(:meth:`note_append`), which advances the vector and thereby
invalidates every entry formed against the older one; responses carry
``as_of`` so even an unattached frontend converges. A response from a
*lagging* replica lowers the entry's tag to the replica's ``as_of``,
so an answer missing freshly archived rows can never be served once
the frontend knows newer boundaries exist. A warm cache serves
repeated audit queries without touching the network.

**Admission control.** At most ``max_in_flight`` queries may be
admitted and unanswered at once; beyond that execution raises
:class:`Backpressure` — the client's signal to drain before submitting
more. Per-tenant :class:`~repro.serving.routing.TenantPolicy` limits
(quotas, background priorities) layer on top. Clients interact through
:class:`ServingSession` handles (:meth:`QueryFrontend.session`), which
carry per-session statistics for multi-tenant accounting;
:meth:`execute_many` admits and scatters a whole batch before the
first flush, which is what lets replica endpoints work in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, NamedTuple, Sequence

from repro.obs import get_telemetry
from repro.runtime.envelope import HISTORY_REQUEST, HISTORY_RESPONSE, Envelope
from repro.runtime.transport import Transport
from repro.serving.routing import HashRing, TenantPolicy
from repro.serving.wire import (
    HistoryRequest,
    HistoryResponse,
    decode_history_response,
    encode_history_request,
)
from repro.sim.tags import EPC

__all__ = ["FRONTEND_SITE", "Backpressure", "QueryResult", "QueryFrontend", "ServingSession"]

#: synthetic ledger site id of the serving frontend.
FRONTEND_SITE = -3


class Backpressure(RuntimeError):
    """Raised when admission control rejects a query (queue full)."""


class QueryResult(NamedTuple):
    """One federated answer.

    For point kinds (``location``/``containment``/``provenance``) the
    rows come from the freshest site (``site`` names it; ``None`` = no
    site had an answer). For range kinds (``trajectory``/``dwell``/
    ``alerts``) the rows pool every site's answer, each row prefixed
    with its site id, in canonical order.
    """

    kind: str
    site: int | None
    rows: tuple


@dataclass
class ServingStats:
    """Counters for one frontend (or one session)."""

    queries: int = 0
    cache_hits: int = 0
    remote_requests: int = 0
    retransmits: int = 0
    rejected: int = 0
    #: misrouted or malformed envelopes dropped by :meth:`QueryFrontend.handle`.
    dropped: int = 0

    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


#: kinds answered by the single freshest site.
_POINT_KINDS = ("location", "containment", "provenance")

#: gather rounds before a silent replica endpoint fails over to its primary.
_FAILOVER_ROUNDS = 2


class QueryFrontend:
    """Scatter-gather execution of historical queries across sites."""

    #: retransmit rounds before a missing response is a hard error.
    MAX_ROUNDS = 64
    #: cap (in gather rounds) on the exponential retransmit backoff, so
    #: a dead site costs O(log rounds) retransmits instead of one per
    #: round — a hot retransmit loop under MAX_ROUNDS of silence.
    BACKOFF_CAP = 16

    def __init__(
        self,
        max_in_flight: int = 64,
        cache_capacity: int = 1024,
        site_id: int = FRONTEND_SITE,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self.site_id = site_id
        self.max_in_flight = max_in_flight
        self.cache_capacity = cache_capacity
        self.stats = ServingStats()
        self._transport: Transport | None = None
        self._sites: list[int] = []
        #: per-site endpoint ring (primary + replicas); absent = primary only.
        self._rings: dict[int, HashRing] = {}
        #: requests sent per endpoint — the load signal for two-choice
        #: routing. Heuristic: read without the lock, never decremented.
        self._endpoint_sent: dict[int, int] = {}
        self._lock = threading.Lock()
        #: per-site last archived boundary (the cache's epoch vector).
        self._epochs: dict[int, int] = {}
        #: request_id -> {site: HistoryResponse} for in-flight queries.
        self._responses: dict[int, dict[int, HistoryResponse]] = {}
        self._next_request_id = 1
        self._in_flight = 0
        self._tenants: dict[str, TenantPolicy] = {}
        self._tenant_in_flight: dict[str, int] = {}
        #: cache: key -> (epoch vector at fill time, merged result).
        self._cache: OrderedDict[tuple, tuple[tuple, QueryResult]] = OrderedDict()
        self._sessions = 0

    # -- wiring -----------------------------------------------------------

    def bind(
        self,
        transport: Transport,
        sites: Sequence[int],
        replicas: Mapping[int, Sequence[int]] | None = None,
        read_preference: str = "any",
    ) -> None:
        """Attach to the federation's transport and site list.

        ``replicas`` maps a primary site to the synthetic site ids of
        its read replicas. ``read_preference`` picks the endpoints the
        per-tag ring routes over: ``"any"`` spreads reads across the
        primary and its replicas, ``"replica"`` keeps query load off
        primaries entirely (sites without replicas still serve their
        own reads).
        """
        if read_preference not in ("any", "replica"):
            raise ValueError(f"unknown read preference {read_preference!r}")
        self._transport = transport
        self._sites = list(sites)
        self._rings = {}
        for site, endpoints in (replicas or {}).items():
            endpoints = list(endpoints)
            if not endpoints:
                continue
            pool = endpoints if read_preference == "replica" else [site] + endpoints
            self._rings[site] = HashRing(pool)
        transport.register(self.site_id, self.handle)

    def note_append(self, site: int, boundary: int) -> None:
        """New rows landed in ``site``'s archive up to ``boundary``.

        Advancing the epoch vector invalidates every cached result that
        was formed against the older vector (checked lazily on lookup).
        """
        with self._lock:
            if boundary > self._epochs.get(site, -1):
                self._epochs[site] = boundary

    def handle(self, env: Envelope) -> None:
        """Receive one ``history-response`` envelope.

        Anything else — a misrouted request, an unknown kind, a
        malformed payload — is dropped and counted, never raised: with
        several frontends and replicas on one transport a stray
        envelope must not kill an unrelated in-flight gather.
        """
        if env.kind != HISTORY_RESPONSE:
            with self._lock:
                self.stats.dropped += 1
            return
        try:
            response = decode_history_response(env.payload)
        except ValueError:
            with self._lock:
                self.stats.dropped += 1
            return
        with self._lock:
            if response.as_of > self._epochs.get(response.site, -1):
                self._epochs[response.site] = response.as_of
            pending = self._responses.get(response.request_id)
            if pending is not None and response.site not in pending:
                pending[response.site] = response

    def session(self, name: str | None = None, tenant: str | None = None) -> "ServingSession":
        """Open a client session handle (optionally bound to a tenant)."""
        with self._lock:
            self._sessions += 1
            label = name if name is not None else f"session-{self._sessions}"
        return ServingSession(self, label, tenant=tenant)

    def set_tenant_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Install (or replace) one tenant's admission limits."""
        with self._lock:
            self._tenants[tenant] = policy

    # -- execution --------------------------------------------------------

    def _require_transport(self) -> Transport:
        if self._transport is None:
            raise RuntimeError("frontend is not bound to a transport")
        return self._transport

    @staticmethod
    def _cache_key(request: HistoryRequest) -> tuple:
        return (request.kind, request.tag, request.t0, request.t1, request.k, request.name)

    def _epoch_vector(self) -> tuple:
        return tuple(sorted(self._epochs.items()))

    def _endpoint_for(self, site: int, request: HistoryRequest) -> int:
        """The archive endpoint (primary or replica) serving this query.

        Two-choice balanced: the query's tag hashes to its two ring
        owners and the one that has served fewer requests wins — per-tag
        reads stay concentrated on at most two endpoints (archive pages
        stay warm) while a skewed tag population cannot pile its whole
        load onto one replica.
        """
        ring = self._rings.get(site)
        if ring is None:
            return site
        key = request.tag if request.tag is not None else request.name
        choices = ring.owners(f"{site}|{key}", 2)
        sent = self._endpoint_sent
        endpoint = min(choices, key=lambda choice: (sent.get(choice, 0), choice))
        sent[endpoint] = sent.get(endpoint, 0) + 1
        return endpoint

    def _admit_locked(self, tenant: str | None, count: int) -> None:
        """Reserve ``count`` in-flight slots or raise :class:`Backpressure`.

        Caller holds the lock and has already counted the queries.
        """
        policy = self._tenants.get(tenant) if tenant is not None else None
        limit = self.max_in_flight
        if policy is not None and policy.priority < 0:
            # Background tenants only get the bottom half of the queue.
            limit = max(1, self.max_in_flight // 2)
        if self._in_flight + count > limit:
            self.stats.rejected += count
            raise Backpressure(
                f"{self._in_flight} queries in flight (limit {limit}"
                f"{' for background tenants' if limit != self.max_in_flight else ''}"
                "); drain before submitting more"
            )
        if policy is not None and policy.quota is not None:
            held = self._tenant_in_flight.get(tenant, 0)
            if held + count > policy.quota:
                self.stats.rejected += count
                raise Backpressure(
                    f"tenant {tenant!r} holds {held} queries (quota {policy.quota})"
                )
        self._in_flight += count
        if tenant is not None:
            self._tenant_in_flight[tenant] = self._tenant_in_flight.get(tenant, 0) + count

    def _release_locked(self, tenant: str | None, count: int) -> None:
        self._in_flight -= count
        if tenant is not None:
            held = self._tenant_in_flight.get(tenant, 0) - count
            if held > 0:
                self._tenant_in_flight[tenant] = held
            else:
                self._tenant_in_flight.pop(tenant, None)

    def _fill_cache_locked(
        self,
        key: tuple,
        admitted_epochs: tuple,
        responses: dict[int, HistoryResponse],
        result: QueryResult,
    ) -> None:
        """Insert a merged result, tagged so staleness is never masked.

        The tag starts from the epoch vector at admission (an append
        landing mid-gather leaves the entry born stale) and is lowered
        to any *older* ``as_of`` a response carried (a lagging replica
        cannot produce an entry that pretends to be fresh).
        """
        admitted = dict(admitted_epochs)
        for site, response in responses.items():
            if response.as_of < admitted.get(site, response.as_of):
                admitted[site] = response.as_of
        self._cache[key] = (tuple(sorted(admitted.items())), result)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def execute(self, request: HistoryRequest, tenant: str | None = None) -> QueryResult:
        """Admit, serve-from-cache or scatter-gather, merge, cache."""
        return self._execute(request, tenant)[0]

    def _execute(
        self, request: HistoryRequest, tenant: str | None = None
    ) -> tuple[QueryResult, bool]:
        """:meth:`execute` plus whether the cache served it (for
        per-session hit accounting, decided under the frontend lock)."""
        key = self._cache_key(request)
        with self._lock:
            self.stats.queries += 1
            entry = self._cache.get(key)
            if entry is not None and entry[0] == self._epoch_vector():
                self._cache.move_to_end(key)
                self.stats.cache_hits += 1
                return entry[1], True
            self._admit_locked(tenant, 1)
            request_id = self._next_request_id
            self._next_request_id += 1
            self._responses[request_id] = {}
            # Tag the eventual entry with the epoch vector as of
            # admission: an append that lands while the gather is in
            # flight advances the live vector past this one, so the
            # entry is born stale instead of masking the new rows.
            admitted_epochs = self._epoch_vector()
        try:
            responses = self._gather(request_id, request)
            result = self._merge(request.kind, responses)
            with self._lock:
                self._fill_cache_locked(key, admitted_epochs, responses, result)
            return result, False
        finally:
            with self._lock:
                self._release_locked(tenant, 1)
                self._responses.pop(request_id, None)

    def execute_many(
        self, requests: Sequence[HistoryRequest], tenant: str | None = None
    ) -> list[QueryResult]:
        """Execute a batch: admit all, scatter all, then flush.

        Cache hits are served first; the remaining misses are admitted
        **atomically** (the whole batch fits under the in-flight limits
        or :class:`Backpressure` is raised and nothing is sent) and
        their requests all go out before the first transport flush —
        on a parallel transport every archive endpoint works its share
        of the batch concurrently, which is where replica scaling comes
        from. Results come back in request order.
        """
        requests = list(requests)
        results: list[QueryResult | None] = [None] * len(requests)
        misses: list[tuple[int, tuple, int]] = []  # (index, key, request_id)
        with self._lock:
            self.stats.queries += len(requests)
            live = self._epoch_vector()
            miss_indices = []
            for index, request in enumerate(requests):
                key = self._cache_key(request)
                entry = self._cache.get(key)
                if entry is not None and entry[0] == live:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    results[index] = entry[1]
                else:
                    miss_indices.append((index, key))
            if not miss_indices:
                return results
            self._admit_locked(tenant, len(miss_indices))
            admitted_epochs = live
            for index, key in miss_indices:
                request_id = self._next_request_id
                self._next_request_id += 1
                self._responses[request_id] = {}
                misses.append((index, key, request_id))
        try:
            gathered = self._gather_many(
                [(request_id, requests[index]) for index, _, request_id in misses]
            )
            with self._lock:
                for (index, key, request_id) in misses:
                    responses = gathered[request_id]
                    result = self._merge(requests[index].kind, responses)
                    results[index] = result
                    self._fill_cache_locked(key, admitted_epochs, responses, result)
            return results
        finally:
            with self._lock:
                self._release_locked(tenant, len(misses))
                for _, _, request_id in misses:
                    self._responses.pop(request_id, None)

    # -- scatter-gather ----------------------------------------------------

    def _scatter_one(
        self, request_id: int, request: HistoryRequest
    ) -> tuple[bytes, dict[int, int]]:
        """Send one request to every site's chosen endpoint."""
        transport = self._require_transport()
        payload = encode_history_request(request._replace(request_id=request_id))
        targets = {site: self._endpoint_for(site, request) for site in self._sites}
        for endpoint in targets.values():
            transport.send(
                Envelope(self.site_id, endpoint, HISTORY_REQUEST, payload, request.t0)
            )
        return payload, targets

    def _gather(
        self, request_id: int, request: HistoryRequest
    ) -> dict[int, HistoryResponse]:
        gathered = self._gather_many([(request_id, request)])
        return gathered[request_id]

    def _gather_many(
        self, batch: Sequence[tuple[int, HistoryRequest]]
    ) -> dict[int, dict[int, HistoryResponse]]:
        """Scatter a batch, then flush/retransmit until all answered.

        Responses are keyed by *primary* site id whichever endpoint
        answered. A replica endpoint silent for ``_FAILOVER_ROUNDS``
        has its retransmits redirected to the primary, so a dead
        replica degrades to primary reads instead of stalling.

        Retransmits back off exponentially per (request, site) —
        rounds 0, 1, 3, 7, ... capped at :attr:`BACKOFF_CAP` apart —
        so a site that stays dead through the round limit draws
        O(log MAX_ROUNDS) retransmits, not one per round.
        """
        tel = get_telemetry()
        with tel.span("serving", "gather", requests=len(batch)) as gather_span:
            return self._gather_rounds(batch, gather_span)

    def _gather_rounds(
        self,
        batch: Sequence[tuple[int, HistoryRequest]],
        gather_span,
    ) -> dict[int, dict[int, HistoryResponse]]:
        transport = self._require_transport()
        pending: dict[int, tuple[bytes, dict[int, int], HistoryRequest]] = {}
        with self._lock:
            self.stats.remote_requests += len(batch) * len(self._sites)
        for request_id, request in batch:
            payload, targets = self._scatter_one(request_id, request)
            pending[request_id] = (payload, targets, request)
        #: (request_id, site) -> (next retransmit round, current delay).
        backoff: dict[tuple[int, int], tuple[int, int]] = {}
        out: dict[int, dict[int, HistoryResponse]] = {}
        for round_index in range(self.MAX_ROUNDS):
            transport.flush()
            retransmit: list[tuple[int, bytes, int, int]] = []
            with self._lock:
                for request_id in list(pending):
                    payload, targets, request = pending[request_id]
                    arrived = self._responses[request_id]
                    missing = [site for site in targets if site not in arrived]
                    if not missing:
                        out[request_id] = dict(arrived)
                        del pending[request_id]
                        gather_span.set(rounds=round_index + 1)
                        continue
                    for site in missing:
                        next_round, delay = backoff.get((request_id, site), (0, 1))
                        if round_index < next_round:
                            continue
                        backoff[(request_id, site)] = (
                            round_index + delay,
                            min(2 * delay, self.BACKOFF_CAP),
                        )
                        if round_index >= _FAILOVER_ROUNDS:
                            targets[site] = site
                        self.stats.retransmits += 1
                        retransmit.append((request_id, payload, site, targets[site]))
            if not pending:
                return out
            if retransmit:
                ledger = getattr(transport, "ledger", None)
                if ledger is not None:
                    ledger.note_frontend_retransmits(len(retransmit))
            for request_id, payload, site, endpoint in retransmit:
                _, _, request = pending[request_id]
                transport.send(
                    Envelope(self.site_id, endpoint, HISTORY_REQUEST, payload, request.t0)
                )
        unanswered = sorted(pending)
        raise RuntimeError(
            f"requests {unanswered} still missing responses after "
            f"{self.MAX_ROUNDS} rounds"
        )

    @staticmethod
    def _merge(kind: str, responses: dict[int, HistoryResponse]) -> QueryResult:
        if kind in _POINT_KINDS:
            best: HistoryResponse | None = None
            for site in sorted(responses):
                response = responses[site]
                if not response.rows:
                    continue
                if best is None or response.last_update > best.last_update:
                    best = response
            if best is None:
                return QueryResult(kind, None, ())
            return QueryResult(kind, best.site, best.rows)
        pooled = [
            (site,) + row
            for site in sorted(responses)
            for row in responses[site].rows
        ]
        if kind == "trajectory":
            pooled.sort(key=lambda row: (row[1], row[0], row[2], row[3]))
        else:
            pooled.sort()
        return QueryResult(kind, None, tuple(pooled))


@dataclass
class ServingSession:
    """One client's handle onto the frontend.

    Point methods execute immediately; :meth:`submit`/:meth:`gather`
    batch queries (each still individually admission-controlled, so a
    burst beyond ``max_in_flight`` raises :class:`Backpressure`). A
    ``tenant`` ties the session to its admission policy.
    """

    frontend: QueryFrontend
    name: str
    tenant: str | None = None
    stats: ServingStats = field(default_factory=ServingStats)
    _pending: list[HistoryRequest] = field(default_factory=list)

    def _run(self, request: HistoryRequest) -> QueryResult:
        self.stats.queries += 1
        try:
            result, hit = self.frontend._execute(request, self.tenant)
        except Backpressure:
            self.stats.rejected += 1
            raise
        if hit:
            self.stats.cache_hits += 1
        return result

    # -- the historical-query API ----------------------------------------

    def location(self, tag: EPC, time: int, k: int = 1) -> QueryResult:
        return self._run(HistoryRequest(0, "location", tag, time, k=k))

    def containment(self, tag: EPC, time: int, k: int = 1) -> QueryResult:
        return self._run(HistoryRequest(0, "containment", tag, time, k=k))

    def trajectory(self, tag: EPC, lo: int, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "trajectory", tag, lo, hi))

    def provenance(self, tag: EPC, time: int) -> QueryResult:
        return self._run(HistoryRequest(0, "provenance", tag, time))

    def dwell(self, tag: EPC, lo: int, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "dwell", tag, lo, hi))

    def alerts(self, name: str = "", lo: int = 0, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "alerts", None, lo, hi, name=name))

    # -- batched submission ----------------------------------------------

    def submit(self, request: HistoryRequest) -> int:
        """Queue a query; returns its ticket index for :meth:`gather`.

        A rejected submission is still a query: both the session's and
        the frontend's ``queries`` counters advance along with
        ``rejected``, so rejection rates agree at every level.
        """
        if len(self._pending) >= self.frontend.max_in_flight:
            self.stats.queries += 1
            self.stats.rejected += 1
            with self.frontend._lock:
                self.frontend.stats.queries += 1
                self.frontend.stats.rejected += 1
            raise Backpressure(
                f"session {self.name!r} already holds "
                f"{len(self._pending)} pending queries"
            )
        self._pending.append(request)
        return len(self._pending) - 1

    def gather(self) -> list[QueryResult]:
        """Execute every pending query, in submission order."""
        pending, self._pending = self._pending, []
        return [self._run(request) for request in pending]
