"""The query-serving frontend: federated time-travel queries.

A :class:`QueryFrontend` registers on the cluster's transport as a
synthetic site (``FRONTEND_SITE``, alongside the ONS at ``-2`` and the
centralized server at ``-1``) and executes historical queries by
**scatter-gather**: one ``history-request`` envelope per site, answers
merged per query kind. All serving traffic flows through the ordinary
:class:`~repro.runtime.transport.Transport` send path, so the ledger
accounts it per link under its own kinds — the paper's Table 5 data
kinds are untouched.

**At-least-once.** Requests are idempotent reads, so instead of
entangling serving traffic with the cluster's sequenced ack/outbox
machinery the frontend simply retransmits a request until the site's
response arrives, deduplicating responses on the request id. One
transport flush is a delivery barrier, so on a reliable transport the
first round always completes; a lossy transport costs extra rounds
(counted in :attr:`ServingStats.retransmits`).

**Caching.** Results are cached under the query's parameters, tagged
with the *epoch vector* — every site's last archived boundary — at fill
time. The cluster notifies the frontend after each boundary's appends
(:meth:`note_append`), which advances the vector and thereby
invalidates every entry formed against the older one; responses carry
``as_of`` so even an unattached frontend converges. A warm cache
serves repeated audit queries without touching the network.

**Admission control.** At most ``max_in_flight`` queries may be
admitted and unanswered at once; beyond that :meth:`ServingSession.submit`
raises :class:`Backpressure` — the client's signal to drain before
submitting more. Clients interact through :class:`ServingSession`
handles (:meth:`QueryFrontend.session`), which carry per-session
statistics for multi-tenant accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

from repro.runtime.envelope import HISTORY_REQUEST, HISTORY_RESPONSE, Envelope
from repro.runtime.transport import Transport
from repro.serving.wire import (
    HistoryRequest,
    HistoryResponse,
    decode_history_response,
    encode_history_request,
)
from repro.sim.tags import EPC

__all__ = ["FRONTEND_SITE", "Backpressure", "QueryResult", "QueryFrontend", "ServingSession"]

#: synthetic ledger site id of the serving frontend.
FRONTEND_SITE = -3


class Backpressure(RuntimeError):
    """Raised when admission control rejects a query (queue full)."""


class QueryResult(NamedTuple):
    """One federated answer.

    For point kinds (``location``/``containment``/``provenance``) the
    rows come from the freshest site (``site`` names it; ``None`` = no
    site had an answer). For range kinds (``trajectory``/``dwell``/
    ``alerts``) the rows pool every site's answer, each row prefixed
    with its site id, in canonical order.
    """

    kind: str
    site: int | None
    rows: tuple


@dataclass
class ServingStats:
    """Counters for one frontend (or one session)."""

    queries: int = 0
    cache_hits: int = 0
    remote_requests: int = 0
    retransmits: int = 0
    rejected: int = 0

    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


#: kinds answered by the single freshest site.
_POINT_KINDS = ("location", "containment", "provenance")


class QueryFrontend:
    """Scatter-gather execution of historical queries across sites."""

    #: retransmit rounds before a missing response is a hard error.
    MAX_ROUNDS = 64

    def __init__(
        self,
        max_in_flight: int = 64,
        cache_capacity: int = 1024,
        site_id: int = FRONTEND_SITE,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self.site_id = site_id
        self.max_in_flight = max_in_flight
        self.cache_capacity = cache_capacity
        self.stats = ServingStats()
        self._transport: Transport | None = None
        self._sites: list[int] = []
        self._lock = threading.Lock()
        #: per-site last archived boundary (the cache's epoch vector).
        self._epochs: dict[int, int] = {}
        #: request_id -> {site: HistoryResponse} for in-flight queries.
        self._responses: dict[int, dict[int, HistoryResponse]] = {}
        self._next_request_id = 1
        self._in_flight = 0
        #: cache: key -> (epoch vector at fill time, merged result).
        self._cache: OrderedDict[tuple, tuple[tuple, QueryResult]] = OrderedDict()
        self._sessions = 0

    # -- wiring -----------------------------------------------------------

    def bind(self, transport: Transport, sites: Sequence[int]) -> None:
        """Attach to the federation's transport and site list."""
        self._transport = transport
        self._sites = list(sites)
        transport.register(self.site_id, self.handle)

    def note_append(self, site: int, boundary: int) -> None:
        """New rows landed in ``site``'s archive up to ``boundary``.

        Advancing the epoch vector invalidates every cached result that
        was formed against the older vector (checked lazily on lookup).
        """
        with self._lock:
            if boundary > self._epochs.get(site, -1):
                self._epochs[site] = boundary

    def handle(self, env: Envelope) -> None:
        """Receive one ``history-response`` envelope."""
        if env.kind != HISTORY_RESPONSE:
            raise ValueError(f"frontend cannot handle envelope kind {env.kind!r}")
        response = decode_history_response(env.payload)
        with self._lock:
            if response.as_of > self._epochs.get(response.site, -1):
                self._epochs[response.site] = response.as_of
            pending = self._responses.get(response.request_id)
            if pending is not None and response.site not in pending:
                pending[response.site] = response

    def session(self, name: str | None = None) -> "ServingSession":
        """Open a client session handle."""
        with self._lock:
            self._sessions += 1
            label = name if name is not None else f"session-{self._sessions}"
        return ServingSession(self, label)

    # -- execution --------------------------------------------------------

    def _require_transport(self) -> Transport:
        if self._transport is None:
            raise RuntimeError("frontend is not bound to a transport")
        return self._transport

    @staticmethod
    def _cache_key(request: HistoryRequest) -> tuple:
        return (request.kind, request.tag, request.t0, request.t1, request.k, request.name)

    def _epoch_vector(self) -> tuple:
        return tuple(sorted(self._epochs.items()))

    def execute(self, request: HistoryRequest) -> QueryResult:
        """Admit, serve-from-cache or scatter-gather, merge, cache."""
        return self._execute(request)[0]

    def _execute(self, request: HistoryRequest) -> tuple[QueryResult, bool]:
        """:meth:`execute` plus whether the cache served it (for
        per-session hit accounting, decided under the frontend lock)."""
        key = self._cache_key(request)
        with self._lock:
            self.stats.queries += 1
            entry = self._cache.get(key)
            if entry is not None and entry[0] == self._epoch_vector():
                self._cache.move_to_end(key)
                self.stats.cache_hits += 1
                return entry[1], True
            if self._in_flight >= self.max_in_flight:
                self.stats.rejected += 1
                raise Backpressure(
                    f"{self._in_flight} queries in flight (limit "
                    f"{self.max_in_flight}); drain before submitting more"
                )
            self._in_flight += 1
            request_id = self._next_request_id
            self._next_request_id += 1
            self._responses[request_id] = {}
            # Tag the eventual entry with the epoch vector as of
            # admission: an append that lands while the gather is in
            # flight advances the live vector past this one, so the
            # entry is born stale instead of masking the new rows.
            admitted_epochs = self._epoch_vector()
        try:
            responses = self._gather(request_id, request)
            result = self._merge(request.kind, responses)
            with self._lock:
                self._cache[key] = (admitted_epochs, result)
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
            return result, False
        finally:
            with self._lock:
                self._in_flight -= 1
                self._responses.pop(request_id, None)

    def _gather(
        self, request_id: int, request: HistoryRequest
    ) -> dict[int, HistoryResponse]:
        transport = self._require_transport()
        payload = encode_history_request(request._replace(request_id=request_id))
        targets = list(self._sites)
        with self._lock:
            self.stats.remote_requests += len(targets)
        for site in targets:
            transport.send(
                Envelope(self.site_id, site, HISTORY_REQUEST, payload, request.t0)
            )
        for round_index in range(self.MAX_ROUNDS):
            transport.flush()
            with self._lock:
                arrived = self._responses[request_id]
                missing = [site for site in targets if site not in arrived]
                if not missing:
                    return dict(arrived)
                self.stats.retransmits += len(missing)
            for site in missing:
                transport.send(
                    Envelope(self.site_id, site, HISTORY_REQUEST, payload, request.t0)
                )
        raise RuntimeError(
            f"no response from sites {missing} after {self.MAX_ROUNDS} rounds"
        )

    @staticmethod
    def _merge(kind: str, responses: dict[int, HistoryResponse]) -> QueryResult:
        if kind in _POINT_KINDS:
            best: HistoryResponse | None = None
            for site in sorted(responses):
                response = responses[site]
                if not response.rows:
                    continue
                if best is None or response.last_update > best.last_update:
                    best = response
            if best is None:
                return QueryResult(kind, None, ())
            return QueryResult(kind, best.site, best.rows)
        pooled = [
            (site,) + row
            for site in sorted(responses)
            for row in responses[site].rows
        ]
        if kind == "trajectory":
            pooled.sort(key=lambda row: (row[1], row[0], row[2], row[3]))
        else:
            pooled.sort()
        return QueryResult(kind, None, tuple(pooled))


@dataclass
class ServingSession:
    """One client's handle onto the frontend.

    Point methods execute immediately; :meth:`submit`/:meth:`gather`
    batch queries (each still individually admission-controlled, so a
    burst beyond ``max_in_flight`` raises :class:`Backpressure`).
    """

    frontend: QueryFrontend
    name: str
    stats: ServingStats = field(default_factory=ServingStats)
    _pending: list[HistoryRequest] = field(default_factory=list)

    def _run(self, request: HistoryRequest) -> QueryResult:
        self.stats.queries += 1
        try:
            result, hit = self.frontend._execute(request)
        except Backpressure:
            self.stats.rejected += 1
            raise
        if hit:
            self.stats.cache_hits += 1
        return result

    # -- the historical-query API ----------------------------------------

    def location(self, tag: EPC, time: int, k: int = 1) -> QueryResult:
        return self._run(HistoryRequest(0, "location", tag, time, k=k))

    def containment(self, tag: EPC, time: int, k: int = 1) -> QueryResult:
        return self._run(HistoryRequest(0, "containment", tag, time, k=k))

    def trajectory(self, tag: EPC, lo: int, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "trajectory", tag, lo, hi))

    def provenance(self, tag: EPC, time: int) -> QueryResult:
        return self._run(HistoryRequest(0, "provenance", tag, time))

    def dwell(self, tag: EPC, lo: int, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "dwell", tag, lo, hi))

    def alerts(self, name: str = "", lo: int = 0, hi: int = -1) -> QueryResult:
        return self._run(HistoryRequest(0, "alerts", None, lo, hi, name=name))

    # -- batched submission ----------------------------------------------

    def submit(self, request: HistoryRequest) -> int:
        """Queue a query; returns its ticket index for :meth:`gather`."""
        if len(self._pending) >= self.frontend.max_in_flight:
            self.stats.rejected += 1
            self.frontend.stats.rejected += 1
            raise Backpressure(
                f"session {self.name!r} already holds "
                f"{len(self._pending)} pending queries"
            )
        self._pending.append(request)
        return len(self._pending) - 1

    def gather(self) -> list[QueryResult]:
        """Execute every pending query, in submission order."""
        pending, self._pending = self._pending, []
        return [self._run(request) for request in pending]
