"""Per-site historical query execution over a :class:`SiteArchive`.

A :class:`HistoryService` answers the time-travel queries the paper's
back-end stores exist for: "where was tag X at time t", containment
provenance, dwell aggregation, and alert audits. Answers are derived
purely from the archive, so a query at a boundary epoch returns exactly
the inference snapshot the site emitted at that boundary — the
consistency contract the archive tests enforce.

All methods accept times in stream epochs and return a
:class:`HistoryAnswer` whose ``rows`` match the wire row formats in
:mod:`repro.serving.wire`:

* ``location`` — ``(place, posterior)`` rows. ``k == 1`` is the argmax
  decoded place from the event stream; ``k > 1`` marginalizes over the
  top-k containment candidates (an object's location posterior follows
  its container's — §2's containment-carries-location model), summing
  probability per candidate place.
* ``containment`` — ``(container, posterior)`` rows: the snapshot
  estimate for ``k == 1``, the top-k posterior candidates otherwise.
* ``trajectory`` — ``(start, end, place)`` intervals overlapping the
  range, ``end == -1`` for the still-open interval.
* ``provenance`` — the containment chain at ``t`` walked upward
  (item → case → pallet), one ``(container, posterior)`` row per hop.
* ``dwell`` — ``(place, epochs)`` totals over the range; the open
  interval is clipped just past the archive's last boundary (the
  boundary epoch itself is archived knowledge; anything later is not).
* ``alerts`` — ``(query, key, start, end, values)`` rows overlapping
  the range, optionally filtered by query name, in canonical order.

Every range query shares one contract: the range is the half-open
``[lo, hi)`` and ``hi == -1`` means "through everything archived",
i.e. ``hi = last_boundary + 1`` so intervals starting exactly at the
last boundary still contribute. ``trajectory``, ``dwell``, and
``alerts`` all clip identically — the regression tests pin this, after
the three drifted apart (dwell clipped one epoch short, alerts
filtered inclusively).

:meth:`HistoryService.snapshot` pins the service to a consistent
archive view: appends that land after the snapshot do not change its
answers.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.archive.store import NO_CONTAINER, SiteArchive
from repro.serving.wire import HistoryRequest
from repro.sim.tags import EPC

__all__ = ["HistoryAnswer", "HistoryService"]

#: containment provenance chains stop after this many hops (the EPC
#: packaging hierarchy is 3 deep; anything longer is a cycle).
MAX_PROVENANCE_DEPTH = 8


class HistoryAnswer(NamedTuple):
    """One site-local answer: kind-specific rows plus freshness."""

    kind: str
    rows: tuple
    #: epoch at which the answering interval took effect (-1 = none).
    last_update: int


class HistoryService:
    """Executes historical queries against one site's archive."""

    def __init__(self, archive: SiteArchive) -> None:
        self.archive = archive

    def _freshness(self, tag_id: int, interval_start: int) -> int:
        """How current this site's knowledge of the tag is.

        The max of the answering interval's start and the tag's latest
        archived event: two sites' intervals can tie on start (both
        resealed at the same boundary), but only the site that still
        *observes* the tag keeps appending events — the scatter-gather
        merge must prefer it.
        """
        return max(interval_start, self.archive.last_event.get(tag_id, -1))

    def snapshot(self) -> "HistoryService":
        """A service pinned to the archive's current contents."""
        return HistoryService(self.archive.snapshot_reader())

    # -- request dispatch (used by the site node) -------------------------

    def answer(self, request: HistoryRequest) -> HistoryAnswer:
        """Execute one decoded :class:`HistoryRequest`."""
        kind = request.kind
        if kind == "location":
            return self.point_location(request.tag, request.t0, request.k)
        if kind == "containment":
            return self.point_containment(request.tag, request.t0, request.k)
        if kind == "trajectory":
            return self.trajectory(request.tag, request.t0, request.t1)
        if kind == "provenance":
            return self.provenance(request.tag, request.t0)
        if kind == "dwell":
            return self.dwell(request.tag, request.t0, request.t1)
        if kind == "alerts":
            return self.alerts(request.name or None, request.t0, request.t1)
        raise ValueError(f"unknown history query kind {kind!r}")

    # -- point queries ----------------------------------------------------

    def point_location(self, tag: EPC, time: int, k: int = 1) -> HistoryAnswer:
        """Tag's place at ``time``: argmax (k=1) or the posterior mix."""
        archive = self.archive
        tag_id = archive.tag_id_of(tag)
        if tag_id is None:
            return HistoryAnswer("location", (), -1)
        covering = archive.location.covering(tag_id, time)
        own = covering[0] if covering else None
        if k == 1:
            if own is None:
                return HistoryAnswer("location", (), -1)
            return HistoryAnswer(
                "location", ((own[2], 1.0),), self._freshness(tag_id, own[1])
            )
        belief = archive.belief.covering(tag_id, time)
        if not belief:
            if own is None:
                return HistoryAnswer("location", (), -1)
            return HistoryAnswer(
                "location", ((own[2], 1.0),), self._freshness(tag_id, own[1])
            )
        by_place: dict[int, float] = {}
        freshest = own[1] if own is not None else -1
        for _, start, candidate, posterior in belief:
            freshest = max(freshest, start)
            candidate_rows = archive.location.covering(candidate, time)
            place = candidate_rows[0][2] if candidate_rows else (
                own[2] if own is not None else -1
            )
            by_place[place] = by_place.get(place, 0.0) + posterior
        rows = tuple(
            sorted(by_place.items(), key=lambda item: (-item[1], item[0]))[:k]
        )
        return HistoryAnswer("location", rows, self._freshness(tag_id, freshest))

    def point_containment(self, tag: EPC, time: int, k: int = 1) -> HistoryAnswer:
        """Tag's container at ``time``: snapshot (k=1) or top-k belief."""
        archive = self.archive
        tag_id = archive.tag_id_of(tag)
        if tag_id is None:
            return HistoryAnswer("containment", (), -1)
        covering = archive.containment.covering(tag_id, time)
        if k > 1:
            belief = archive.belief.covering(tag_id, time)
            if belief:
                rows = tuple(
                    (archive.tag_of(candidate), posterior)
                    for _, _, candidate, posterior in belief[:k]
                )
                return HistoryAnswer(
                    "containment", rows, self._freshness(tag_id, belief[0][1])
                )
        if not covering:
            return HistoryAnswer("containment", (), -1)
        _, start, value, posterior = covering[0]
        container = None if value == NO_CONTAINER else archive.tag_of(value)
        return HistoryAnswer(
            "containment", ((container, posterior),), self._freshness(tag_id, start)
        )

    def provenance(self, tag: EPC, time: int) -> HistoryAnswer:
        """The containment chain at ``time``, walked upward."""
        archive = self.archive
        chain: list[tuple[EPC | None, float]] = []
        seen = {tag}
        current = tag
        last_update = -1
        for _ in range(MAX_PROVENANCE_DEPTH):
            tag_id = archive.tag_id_of(current)
            if tag_id is None:
                break
            covering = archive.containment.covering(tag_id, time)
            if not covering:
                break
            _, start, value, posterior = covering[0]
            last_update = max(last_update, start)
            if value == NO_CONTAINER:
                chain.append((None, posterior))
                break
            container = archive.tag_of(value)
            chain.append((container, posterior))
            if container in seen:  # corrupt estimate formed a cycle
                break
            seen.add(container)
            current = container
        root_id = archive.tag_id_of(tag)
        if root_id is not None and chain:
            last_update = self._freshness(root_id, last_update)
        return HistoryAnswer("provenance", tuple(chain), last_update)

    # -- range queries ----------------------------------------------------

    def trajectory(self, tag: EPC, lo: int, hi: int) -> HistoryAnswer:
        """Location intervals overlapping ``[lo, hi)`` (``hi=-1``: open)."""
        archive = self.archive
        tag_id = archive.tag_id_of(tag)
        end = hi if hi >= 0 else archive.last_boundary + 1
        if tag_id is None:
            return HistoryAnswer("trajectory", (), -1)
        rows = tuple(
            (start, seg_end, value)
            for start, seg_end, value, _ in archive.location.in_range(tag_id, lo, end)
        )
        last_update = max((row[0] for row in rows), default=-1)
        return HistoryAnswer("trajectory", rows, last_update)

    def dwell(self, tag: EPC, lo: int, hi: int) -> HistoryAnswer:
        """Epochs spent per place over ``[lo, hi)`` (``hi=-1``: open).

        Open ranges and the still-open interval both clip at
        ``last_boundary + 1`` — the same bound :meth:`trajectory` uses,
        so an interval starting exactly at the last boundary dwells for
        one epoch instead of vanishing.
        """
        archive = self.archive
        tag_id = archive.tag_id_of(tag)
        end = hi if hi >= 0 else archive.last_boundary + 1
        if tag_id is None:
            return HistoryAnswer("dwell", (), -1)
        totals: dict[int, int] = {}
        last_update = -1
        for start, seg_end, place, _ in archive.location.in_range(tag_id, lo, end):
            clipped_end = archive.last_boundary + 1 if seg_end < 0 else seg_end
            span = min(clipped_end, end) - max(start, lo)
            if span <= 0:
                continue
            totals[place] = totals.get(place, 0) + span
            last_update = max(last_update, start)
        rows = tuple(sorted(totals.items()))
        return HistoryAnswer("dwell", rows, last_update)

    def alerts(
        self, name: str | None = None, lo: int = 0, hi: int = -1
    ) -> HistoryAnswer:
        """Alert rows overlapping ``[lo, hi)``, optionally by query name.

        An alert covers the epochs ``[start, end]`` it was raised for
        (zero-length for instantaneous route deviations); it matches
        the query range iff it touches an epoch in ``[lo, hi)`` — the
        same half-open contract as :meth:`trajectory`/:meth:`dwell`,
        so an alert starting exactly at ``hi`` is excluded.
        """
        archive = self.archive
        end = hi if hi >= 0 else archive.last_boundary + 1
        rows = []
        for name_id, key_id, start, alert_end, values in archive.alerts.rows():
            query = archive.key_of(name_id)
            if name is not None and query != name:
                continue
            if alert_end < lo or start >= end:
                continue
            rows.append((query, archive.key_of(key_id), start, alert_end, values))
        rows.sort()
        last_update = max((row[2] for row in rows), default=-1)
        return HistoryAnswer("alerts", tuple(rows), last_update)
