"""Read-only archive replicas: the serving tier's scale-out unit.

An :class:`ArchiveReplica` holds a bit-identical copy of one primary
site's :class:`~repro.archive.store.SiteArchive`, maintained by
cursor-based segment replication (:mod:`repro.archive.replication`),
and answers ``history-request`` envelopes **in the primary's name** —
responses carry the primary's site id, so the frontend's merge, epoch
vector, and retransmit bookkeeping are oblivious to which endpoint
actually served the read.

Catch-up is pull-based and idempotent: the replica sends a
``replica-fetch`` carrying its cursor (and a fresh fetch id), the
primary answers with a ``replica-segments`` delta, and the replica
applies it. On a lossy transport a lost or stale delta just costs
another round — :meth:`ArchiveReplica.catch_up` refetches with the
*current* cursor until a fetch issued by this round lands. Deltas that
no longer match the replica's state (e.g. a retransmitted duplicate
after the original applied) are dropped and counted, never raised.

Replicas can live in the parent process (bind on any transport) or be
hosted on :class:`~repro.runtime.process.ProcessTransport` workers via
:meth:`ArchiveReplica.ops` — the parent then drives catch-up with
``site_cast(replica_id, "request_catchup")`` + ``flush()`` and can
audit byte-identity with ``site_call(replica_id, "archive_bytes")``.

:class:`ArchivePublisher` is the primary-side counterpart for archives
that are *not* wrapped in a live :class:`~repro.runtime.node.SiteNode`
(an offline store, a bench harness, a re-opened historical archive):
it serves both history queries and replica fetches for a bare archive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archive.codec import encode_archive
from repro.archive.replication import (
    apply_archive_delta,
    cursor_of,
    decode_replica_fetch,
    encode_archive_delta,
    encode_replica_fetch,
)
from repro.archive.store import SiteArchive
from repro.obs import get_telemetry
from repro.runtime.envelope import (
    HISTORY_REQUEST,
    HISTORY_RESPONSE,
    REPLICA_FETCH,
    REPLICA_SEGMENTS,
    Envelope,
)
from repro.serving.history import HistoryService
from repro.serving.wire import (
    HistoryResponse,
    decode_history_request,
    encode_history_response,
)

__all__ = [
    "ArchiveReplica",
    "ArchivePublisher",
    "REPLICA_SITE_BASE",
    "ReplicaStats",
    "replica_site_id",
]

#: synthetic site ids for replicas count down from here (frontends sit
#: at -3 and below; leaving a wide gap keeps the ranges disjoint).
REPLICA_SITE_BASE = -100


def replica_site_id(primary: int, index: int, n_sites: int) -> int:
    """A deterministic synthetic site id for replica ``index`` of ``primary``.

    Packs (replica index, primary) into the id space below
    :data:`REPLICA_SITE_BASE` so any number of replica sets over
    ``n_sites`` primaries stay collision-free.
    """
    if not 0 <= primary < n_sites:
        raise ValueError(f"primary {primary} outside [0, {n_sites})")
    return REPLICA_SITE_BASE - (index * n_sites + primary)


@dataclass
class ReplicaStats:
    """Replication and serving counters for one replica."""

    fetches: int = 0
    deltas_applied: int = 0
    full_resyncs: int = 0
    stale_deltas: int = 0
    bytes_applied: int = 0
    answered: int = 0
    dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "fetches": self.fetches,
            "deltas_applied": self.deltas_applied,
            "full_resyncs": self.full_resyncs,
            "stale_deltas": self.stale_deltas,
            "bytes_applied": self.bytes_applied,
            "answered": self.answered,
            "dropped": self.dropped,
        }


def _serve_history(service: HistoryService, archive: SiteArchive,
                   reply_as: int, src: int, transport, env: Envelope) -> None:
    """Answer one history request; the response speaks for ``reply_as``."""
    request = decode_history_request(env.payload)
    answer = service.answer(request)
    response = HistoryResponse(
        request_id=request.request_id,
        site=reply_as,
        as_of=archive.last_boundary,
        kind=answer.kind,
        last_update=answer.last_update,
        rows=answer.rows,
    )
    transport.send(
        Envelope(src, env.src, HISTORY_RESPONSE, encode_history_response(response), env.time)
    )


class ArchiveReplica:
    """A read replica of one primary site's archive."""

    def __init__(
        self,
        primary: int,
        site_id: int,
        tier=None,
        hot_segments: int = 2,
    ) -> None:
        if site_id > REPLICA_SITE_BASE:
            raise ValueError(
                f"replica site ids live at {REPLICA_SITE_BASE} and below, got {site_id}"
            )
        self.primary = primary
        self.site_id = site_id
        self.archive = SiteArchive(primary)
        self.history = HistoryService(self.archive)
        self._tier = tier
        self._hot_segments = hot_segments
        if tier is not None:
            self.archive.attach_tier(tier, hot_segments)
        self.stats = ReplicaStats()
        self._transport = None
        self._fetch_id = 0
        self._applied_fetch = 0

    # -- wiring -----------------------------------------------------------

    def bind(self, transport) -> None:
        """Register on the transport (parent process or pre-fork)."""
        self._transport = transport
        transport.register(self.site_id, self.handle)

    def rebind(self, transport) -> None:
        """Repoint sends at a new transport (the worker shim on fork)."""
        self._transport = transport

    def ops(self) -> dict:
        """Named ops for hosting this replica on a process worker."""
        return {
            "attach": self.rebind,
            "request_catchup": self.request_catchup,
            "caught_up": lambda: self.caught_up,
            "last_boundary": lambda: self.archive.last_boundary,
            "archive_bytes": lambda: encode_archive(self.archive),
            "stats": self.stats.as_dict,
        }

    def _require_transport(self):
        if self._transport is None:
            raise RuntimeError(f"replica {self.site_id} is not bound to a transport")
        return self._transport

    # -- the envelope plane ------------------------------------------------

    def handle(self, env: Envelope) -> None:
        """History requests are answered, deltas applied, rest dropped."""
        if env.kind == HISTORY_REQUEST:
            _serve_history(
                self.history, self.archive, self.primary,
                self.site_id, self._require_transport(), env,
            )
            self.stats.answered += 1
        elif env.kind == REPLICA_SEGMENTS:
            self._apply_delta(env)
        else:
            self.stats.dropped += 1

    def _apply_delta(self, env: Envelope) -> None:
        try:
            archive, fetch_id, full = apply_archive_delta(self.archive, env.payload)
        except ValueError:
            # Duplicate or out-of-date delta (its base no longer matches
            # our cursor). The next fetch carries the current cursor.
            self.stats.stale_deltas += 1
            return
        if full:
            if self._tier is not None:
                archive.attach_tier(self._tier, self._hot_segments)
            self.archive = archive
            self.history = HistoryService(archive)
            self.stats.full_resyncs += 1
        self.stats.deltas_applied += 1
        self.stats.bytes_applied += len(env.payload)
        if fetch_id > self._applied_fetch:
            self._applied_fetch = fetch_id

    # -- catch-up ----------------------------------------------------------

    def request_catchup(self) -> int:
        """Send one fetch for everything past our cursor; returns its id."""
        self._fetch_id += 1
        payload = encode_replica_fetch(self._fetch_id, cursor_of(self.archive))
        self._require_transport().send(
            Envelope(
                self.site_id, self.primary, REPLICA_FETCH,
                payload, self.archive.last_boundary,
            )
        )
        self.stats.fetches += 1
        return self._fetch_id

    @property
    def caught_up(self) -> bool:
        """Has the newest fetch we issued been answered and applied?"""
        return self._applied_fetch >= self._fetch_id

    def catch_up(self, max_rounds: int = 64) -> int:
        """Fetch + flush until converged; returns rounds used.

        Each round refetches with the replica's *current* cursor and a
        fresh fetch id, so lost fetches, lost deltas, and stale deltas
        all just cost extra rounds on a lossy transport.
        """
        transport = self._require_transport()
        tel = get_telemetry()
        with tel.span(
            "archive", "replica.catch_up",
            site=self.site_id, primary=self.primary,
        ) as span:
            for round_index in range(max_rounds):
                self.request_catchup()
                transport.flush()
                if self.caught_up:
                    span.set(rounds=round_index + 1)
                    return round_index + 1
        raise RuntimeError(
            f"replica {self.site_id} not caught up with primary "
            f"{self.primary} after {max_rounds} rounds"
        )


class ArchivePublisher:
    """Primary-side serving of a bare archive (no live inference node).

    Registers under the archive's own site id and answers both
    ``history-request`` and ``replica-fetch`` envelopes, which makes a
    finished (or re-opened) archive a first-class member of a serving
    federation. Unknown kinds are dropped and counted.
    """

    def __init__(self, archive: SiteArchive) -> None:
        self.archive = archive
        self.site = archive.site
        self.history = HistoryService(archive)
        self._transport = None
        self.dropped = 0

    def bind(self, transport) -> None:
        self._transport = transport
        transport.register(self.site, self.handle)

    def handle(self, env: Envelope) -> None:
        if self._transport is None:
            raise RuntimeError(f"publisher {self.site} is not bound to a transport")
        if env.kind == HISTORY_REQUEST:
            _serve_history(
                self.history, self.archive, self.site,
                self.site, self._transport, env,
            )
        elif env.kind == REPLICA_FETCH:
            fetch_id, cursor = decode_replica_fetch(env.payload)
            delta = encode_archive_delta(self.archive, cursor, fetch_id)
            self._transport.send(
                Envelope(self.site, env.src, REPLICA_SEGMENTS, delta, env.time)
            )
        else:
            self.dropped += 1
