"""Figure 5(a) — error vs read rate for All / W1200 / CR truncation.

Scale: 1 warehouse, ~500 items, 1800 s traces (paper: 32 000 items,
longer traces). Expected shape: location error tiny for all methods;
containment error falls as RR rises; the window method is worst because
belt evidence ages out of its window; CR ≈ All (or slightly better).
"""

from _common import emit_table, pct

from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.accuracy import service_containment_error, service_location_error
from repro.sim.supplychain import SupplyChainParams, simulate

READ_RATES = [0.6, 0.7, 0.8, 0.9, 0.99]
METHODS = {
    "All": dict(truncation="all"),
    "W1200": dict(truncation="window", window_size=1200),
    "CR": dict(truncation="cr"),
}


def run_cell(trace, method_kwargs):
    service = StreamingInference(
        trace,
        ServiceConfig(
            run_interval=300, recent_history=600, emit_events=False, **method_kwargs
        ),
    )
    service.run_until(trace.horizon)
    return service


def run_sweep():
    rows = []
    for rr in READ_RATES:
        result = simulate(
            SupplyChainParams(
                horizon=1800,
                items_per_case=10,
                injection_period=240,
                main_read_rate=rr,
                overlap_rate=0.5,
                seed=41,
            )
        )
        row = [rr]
        loc_cr = None
        for name, kwargs in METHODS.items():
            service = run_cell(result.trace, kwargs)
            row.append(pct(service_containment_error(result.truth, service)))
            if name == "CR":
                loc_cr = service_location_error(result.truth, service)
        row.append(pct(loc_cr))
        rows.append(row)
    return rows


def test_fig5a_read_rate(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 5(a) error vs read rate",
        ["RR", "Containment(All)", "Containment(W1200)", "Containment(CR)", "Location(CR)"],
        rows,
    )
    # Shape: containment error at the lowest RR exceeds the highest RR's
    # for every method, and location error stays below 5%.
    as_float = lambda s: float(s.rstrip("%"))
    assert as_float(rows[0][3]) >= as_float(rows[-1][3])
    for row in rows:
        assert as_float(row[4]) < 5.0
