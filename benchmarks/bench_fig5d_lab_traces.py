"""Figure 5(d) — RFINFER vs SMURF* on the lab traces T1…T8.

The physical lab is replaced by trace generation with the measured
profiles of Appendix C.2 (see DESIGN.md's substitution table).
Expected shape: RFINFER containment error ≤ ~6% on stable traces
(T1–T4) and ≤ ~13% with containment changes (T5–T8); SMURF* is several
times worse throughout; location errors follow the same ordering.
"""

from _common import emit_table, pct

from repro.baselines.smurf_star import SmurfStar
from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import RFInfer
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.sim.lab import LAB_PROFILES, generate_lab_trace

EVAL_EPOCH = 690  # just before the cases exit


def run_all_traces():
    rows = []
    for name in sorted(LAB_PROFILES):
        lab = generate_lab_trace(name, seed=3)
        smurf = SmurfStar(lab.trace).run()
        smurf_cont = containment_error_rate(
            lab.truth, smurf.containment, EVAL_EPOCH, lab.truth.items()
        )
        smurf_loc = smurf.location_error(lab.truth, 0, 0, EVAL_EPOCH)
        window = TraceWindow.from_range(lab.trace, 0, lab.trace.horizon)
        rf = RFInfer(window).run()
        rf_cont = containment_error_rate(lab.truth, rf.containment, EVAL_EPOCH)
        rf_loc = location_error_rate(lab.truth, rf, 0)
        rows.append(
            [name, pct(smurf_cont), pct(smurf_loc), pct(rf_cont), pct(rf_loc)]
        )
    return rows


def test_fig5d_lab_traces(benchmark):
    rows = benchmark.pedantic(run_all_traces, rounds=1, iterations=1)
    emit_table(
        "Figure 5(d) lab traces",
        ["trace", "SMURF* cont", "SMURF* loc", "RFINFER cont", "RFINFER loc"],
        rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    for row in rows:
        # RFINFER no worse than SMURF* on containment, everywhere.
        assert as_float(row[3]) <= as_float(row[1]) + 1e-9
    # Stable traces stay under ~6%, change traces under ~15%.
    for row in rows[:4]:
        assert as_float(row[3]) <= 8.0
    for row in rows[4:]:
        assert as_float(row[3]) <= 15.0
