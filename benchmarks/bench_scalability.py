"""§5.3 scalability — items per warehouse vs inference cost, the
mobile-reader deployment, and the process-parallel worker dimension.

The paper scales to 150 k items/warehouse with static shelf readers and
1.21 M with a mobile reader while "keeping up with stream speed"
(inference time per run < run interval). On a pure-Python substrate the
absolute ceiling is lower; the bench reports per-run inference time as
item count grows and checks the mobile-reader variant processes fewer
readings per item (the mechanism behind the paper's 8× headroom gain).

The second sweep scales *out* instead of *up*: one 8-site federation,
sharded across 1/2/4 OS worker processes (``ProcessTransport``). The
reported time per interval is the **critical path** — the busiest
worker's CPU seconds — i.e. the wall-clock rate on a machine with
enough free cores, measurable even on a single-core CI runner. Results
are bit-identical to the in-process run at every worker count.
"""

import time

from _common import emit_table

from repro.core.service import ServiceConfig, StreamingInference
from repro.runtime import Cluster, ProcessTransport
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams

ITEM_COUNTS = [(6, 5), (12, 5), (20, 6)]  # (items/case, cases/pallet)

#: the paper's mobile reader sweeps an aisle of 90 shelves, visiting
#: each shelf 1/90th of the time vs a static reader's every-10-s scans.
#: We use a 16-shelf aisle: per-shelf coverage drops from 10% (static,
#: period 10) to 1/160, the same mechanism at reduced scale.
N_SHELVES = 16


def run_sweep():
    rows = []
    for items_per_case, cases in ITEM_COUNTS:
        for mobile in (False, True):
            result = simulate(
                SupplyChainParams(
                    horizon=1500,
                    items_per_case=items_per_case,
                    cases_per_pallet=cases,
                    injection_period=200,
                    main_read_rate=0.8,
                    n_shelves=N_SHELVES,
                    mobile_shelf_scan=mobile,
                    seed=52,
                )
            )
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300,
                    recent_history=600,
                    truncation="cr",
                    emit_events=False,
                ),
            )
            service.run_until(1500)
            n_items = len(result.truth.items())
            per_run = service.total_inference_seconds / max(len(service.runs), 1)
            rows.append(
                [
                    n_items,
                    "mobile" if mobile else "static",
                    len(result.trace),
                    f"{per_run:.2f}s",
                    "yes" if per_run < 300 else "no",
                ]
            )
    return rows


def run_process_sweep():
    """One 8-site federation, sharded over 1/2/4 OS workers.

    Speedup is measured on the critical path (busiest worker's CPU
    seconds per interval), the honest metric on any core count; every
    sharded run must match the in-process run bit-for-bit.
    """
    result = simulate(
        SupplyChainParams(
            n_warehouses=8,
            horizon=1500,
            items_per_case=20,
            cases_per_pallet=2,
            injection_period=150,
            main_read_rate=0.6,
            warehouse=WarehouseParams(shelf_dwell_mean=30, shelf_dwell_jitter=8),
            seed=52,
        )
    )
    config = ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )
    n_items = len(result.truth.items())
    n_intervals = 1500 // config.run_interval
    cpu0 = time.process_time()
    single = Cluster(result.traces, config)
    single.run(1500)
    single_cpu = time.process_time() - cpu0
    rows = [[n_items, "in-process", f"{single_cpu / n_intervals:.3f}s", "1.00x"]]
    speedups = [1.0]
    for workers in (2, 4):
        with ProcessTransport(n_workers=workers, rebalance=False) as transport:
            sharded = Cluster(result.traces, config, transport=transport)
            sharded.run(1500)
            stats = transport.worker_stats()
            if sharded.containment_error(result.truth) != single.containment_error(
                result.truth
            ):
                raise RuntimeError("sharded run diverged from single-process run")
        critical = max(s["busy_cpu_seconds"] for s in stats)
        speedups.append(single_cpu / critical)
        rows.append(
            [
                n_items,
                f"{workers} workers",
                f"{critical / n_intervals:.3f}s",
                f"{single_cpu / critical:.2f}x",
            ]
        )
    return rows, speedups


def test_scalability(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Sec 5.3 scalability (items vs per-run inference time)",
        ["items", "shelf readers", "readings", "time/run", "keeps up (<300s)"],
        rows,
    )
    # Shape: every configuration keeps up at this scale, and the mobile
    # deployment generates fewer shelf readings than the static one.
    for static_row, mobile_row in zip(rows[0::2], rows[1::2]):
        assert static_row[4] == "yes" and mobile_row[4] == "yes"
        assert mobile_row[2] < static_row[2]


def test_scalability_processes(benchmark):
    rows, speedups = benchmark.pedantic(run_process_sweep, rounds=1, iterations=1)
    emit_table(
        "Sec 5.3 scale-out (8 sites sharded over OS workers, critical path)",
        ["items", "execution", "time/interval", "speedup"],
        rows,
    )
    # Shape: sharding shortens the critical path monotonically, and
    # 4 workers beat the single process by a clear margin.
    assert speedups[1] > 1.0 and speedups[2] > speedups[1]
    assert speedups[2] > 1.5
