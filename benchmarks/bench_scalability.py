"""§5.3 scalability — items per warehouse vs inference cost, and the
mobile-reader deployment.

The paper scales to 150 k items/warehouse with static shelf readers and
1.21 M with a mobile reader while "keeping up with stream speed"
(inference time per run < run interval). On a pure-Python substrate the
absolute ceiling is lower; the bench reports per-run inference time as
item count grows and checks the mobile-reader variant processes fewer
readings per item (the mechanism behind the paper's 8× headroom gain).
"""

from _common import emit_table

from repro.core.service import ServiceConfig, StreamingInference
from repro.sim.supplychain import SupplyChainParams, simulate

ITEM_COUNTS = [(6, 5), (12, 5), (20, 6)]  # (items/case, cases/pallet)

#: the paper's mobile reader sweeps an aisle of 90 shelves, visiting
#: each shelf 1/90th of the time vs a static reader's every-10-s scans.
#: We use a 16-shelf aisle: per-shelf coverage drops from 10% (static,
#: period 10) to 1/160, the same mechanism at reduced scale.
N_SHELVES = 16


def run_sweep():
    rows = []
    for items_per_case, cases in ITEM_COUNTS:
        for mobile in (False, True):
            result = simulate(
                SupplyChainParams(
                    horizon=1500,
                    items_per_case=items_per_case,
                    cases_per_pallet=cases,
                    injection_period=200,
                    main_read_rate=0.8,
                    n_shelves=N_SHELVES,
                    mobile_shelf_scan=mobile,
                    seed=52,
                )
            )
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300,
                    recent_history=600,
                    truncation="cr",
                    emit_events=False,
                ),
            )
            service.run_until(1500)
            n_items = len(result.truth.items())
            per_run = service.total_inference_seconds / max(len(service.runs), 1)
            rows.append(
                [
                    n_items,
                    "mobile" if mobile else "static",
                    len(result.trace),
                    f"{per_run:.2f}s",
                    "yes" if per_run < 300 else "no",
                ]
            )
    return rows


def test_scalability(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Sec 5.3 scalability (items vs per-run inference time)",
        ["items", "shelf readers", "readings", "time/run", "keeps up (<300s)"],
        rows,
    )
    # Shape: every configuration keeps up at this scale, and the mobile
    # deployment generates fewer shelf readings than the static one.
    for static_row, mobile_row in zip(rows[0::2], rows[1::2]):
        assert static_row[4] == "yes" and mobile_row[4] == "yes"
        assert mobile_row[2] < static_row[2]
