"""Telemetry overhead bench — the observability plane's CI gate.

Runs the smoke federated configuration from ``bench_throughput`` (8
supply-chain sites sharded over 2 :class:`ProcessTransport` workers)
twice over the same traces: once with telemetry uninstalled (the
default, disabled singleton) and once under an installed
:class:`~repro.obs.Telemetry` session that records cross-plane spans,
metrics, and worker flight-recorder deltas. The gate is the wall-clock
ratio ``traced / untraced`` — the observability invariant says tracing
must cost **≤ 5%** on the federated hot path.

Wall-clock ratios on shared CI runners are noisy, so each measurement
is best-of-2: two (untraced, traced) pairs are timed and the smaller
ratio gates. Both runs must also produce identical containment errors
— the telemetry-on/off bit-identity contract, smoke-checked here and
exhaustively checked across the chaos seed matrix in
``tests/test_obs_determinism.py``.

The untraced point doubles as a regression probe: its label matches the
committed ``BENCH_throughput.json`` federated smoke point, so the run
also gates normalized wall latency against the baseline (fixed 25%
budget, same as the throughput gate). The traced run's telemetry JSONL
lands next to the bench JSON for ``python -m repro.obs.summary``.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke \\
        --output BENCH_trace_overhead.ci.json \\
        --baseline BENCH_throughput.json --max-overhead 0.05
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    machine_info,
    normalized_latency_failures,
)
from bench_throughput import FED_CONFIGS, HORIZON  # noqa: E402

from repro.core.service import ServiceConfig  # noqa: E402
from repro.obs import Telemetry, get_telemetry, install, uninstall, write_jsonl  # noqa: E402
from repro.runtime import Cluster, ProcessTransport  # noqa: E402
from repro.sim.supplychain import SupplyChainParams, simulate  # noqa: E402
from repro.sim.warehouse import WarehouseParams  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_trace_overhead.json")
TRACE_DUMP = os.path.join(os.path.dirname(__file__), "results", "trace_overhead.telemetry.jsonl")

#: timed (untraced, traced) pairs; the smaller ratio gates.
ATTEMPTS = 2


def _simulate():
    fed = FED_CONFIGS[0]  # the smoke point: 8 sites, 2 workers
    result = simulate(
        SupplyChainParams(
            n_warehouses=fed["sites"],
            horizon=HORIZON,
            items_per_case=fed["items"],
            cases_per_pallet=fed["cases"],
            injection_period=fed["injection"],
            main_read_rate=fed["read_rate"],
            transit_time=fed["transit"],
            warehouse=WarehouseParams(**fed["warehouse"]),
            seed=52,
        )
    )
    return fed, result


def _run_once(result, config: ServiceConfig, workers: int, traced: bool) -> dict:
    """One sharded federation run; returns wall seconds + result digest."""
    telemetry_counts = None
    if traced:
        tel = install(Telemetry(capacity=65536))
    try:
        with ProcessTransport(n_workers=workers, rebalance=False) as transport:
            cluster = Cluster(result.traces, config, transport=transport)
            t0 = time.perf_counter()
            cluster.run(HORIZON)
            wall = time.perf_counter() - t0
            error = cluster.containment_error(result.truth)
        if traced:
            snapshot = tel.registry.snapshot()
            telemetry_counts = {
                "recorder_entries": len(tel.recorder),
                "total_recorded": tel.recorder.total_recorded,
                "metric_series": sum(len(v) for v in snapshot.values()),
            }
            os.makedirs(os.path.dirname(TRACE_DUMP), exist_ok=True)
            write_jsonl(TRACE_DUMP, tel, reason="bench-trace-overhead")
    finally:
        if traced:
            uninstall()
    return {"wall_seconds": wall, "containment_error": error,
            "telemetry": telemetry_counts}


def build_payload(smoke: bool) -> dict:
    if get_telemetry().enabled:
        raise RuntimeError(
            "telemetry already installed — the untraced leg would be traced; "
            "run this bench without --trace"
        )
    calibration = calibration_seconds()
    fed, result = _simulate()
    workers = fed["workers"]
    n_tags = len(result.truth.tags())
    config = ServiceConfig(
        run_interval=300, recent_history=300, truncation="cr", emit_events=False
    )
    attempts = []
    for _ in range(ATTEMPTS):
        untraced = _run_once(result, config, workers, traced=False)
        traced = _run_once(result, config, workers, traced=True)
        if traced["containment_error"] != untraced["containment_error"]:
            raise RuntimeError(
                "traced run diverged from untraced run: "
                f"{traced['containment_error']} != {untraced['containment_error']}"
            )
        attempts.append(
            {
                "untraced_wall_seconds": round(untraced["wall_seconds"], 6),
                "traced_wall_seconds": round(traced["wall_seconds"], 6),
                "ratio": round(traced["wall_seconds"] / untraced["wall_seconds"], 4),
                "telemetry": traced["telemetry"],
            }
        )
    best = min(attempts, key=lambda a: a["ratio"])
    n_intervals = HORIZON // config.run_interval
    untraced_wall = min(a["untraced_wall_seconds"] for a in attempts)
    return {
        "schema_version": 1,
        "bench": "trace_overhead",
        "smoke": smoke,
        "calibration_seconds": calibration,
        # Label matches the committed throughput baseline's federated
        # smoke point so the baseline latency gate reuses it verbatim.
        "points": [
            {
                "label": f"{n_tags}-tags-federated-{workers}w",
                "n_tags": n_tags,
                "n_workers": workers,
                "latency_p50_seconds": untraced_wall / n_intervals,
            }
        ],
        "overhead": {
            "attempts": attempts,
            "ratio": best["ratio"],
            "telemetry_jsonl": TRACE_DUMP,
        },
        "machine": machine_info(),
    }


def check_gate(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Overhead ratio ≤ 1+budget, plus the untraced-vs-baseline latency gate."""
    failures: list[str] = []
    ratio = payload["overhead"]["ratio"]
    if ratio > 1.0 + budget:
        attempts = [a["ratio"] for a in payload["overhead"]["attempts"]]
        failures.append(
            f"traced/untraced wall ratio {ratio:.3f}x exceeds "
            f"{1.0 + budget:.2f}x budget (attempts: {attempts})"
        )
    failures.extend(
        normalized_latency_failures(
            payload, load_baseline(baseline_path), 0.25, "latency_p50_seconds"
        )
    )
    return failures


def emit(payload: dict) -> None:
    rows = [
        [
            i + 1,
            f"{a['untraced_wall_seconds']:.3f}s",
            f"{a['traced_wall_seconds']:.3f}s",
            f"{a['ratio']:.3f}x",
            a["telemetry"]["recorder_entries"],
            a["telemetry"]["metric_series"],
        ]
        for i, a in enumerate(payload["overhead"]["attempts"])
    ]
    emit_table(
        "Telemetry overhead (traced vs untraced federation)",
        ["attempt", "untraced", "traced", "ratio", "span entries", "metric series"],
        rows,
    )


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_gate,
        default_output=DEFAULT_OUTPUT,
        budget_flag="--max-overhead",
        budget_default=0.05,
        budget_help="allowed traced/untraced wall growth (0.05 = +5%%)",
        gate_ok="overhead gate: within budget",
    )


def test_trace_overhead():
    payload = build_payload(smoke=True)
    emit(payload)
    # Shape, not speed: the gate proper runs through the CLI where the
    # budget is explicit; pytest only asserts the bench is coherent and
    # that tracing is not catastrophically expensive on any runner.
    assert payload["overhead"]["ratio"] < 2.0
    tel = payload["overhead"]["attempts"][0]["telemetry"]
    assert tel["recorder_entries"] > 0
    assert tel["metric_series"] > 0
    assert os.path.exists(payload["overhead"]["telemetry_jsonl"])


if __name__ == "__main__":
    raise SystemExit(main())
