"""Figure 5(b) — total inference time vs trace length.

Expected shape: using the entire history ("All") grows superlinearly
with the trace length; the fixed window stays in the middle; CR is the
cheapest and roughly flat (its working set is the critical regions plus
the recent history, independent of the trace length).
"""

from _common import emit_table

from repro.core.service import ServiceConfig, StreamingInference
from repro.sim.supplychain import SupplyChainParams, simulate

LENGTHS = [600, 1200, 1800, 2400]
METHODS = {
    "All": dict(truncation="all"),
    "W1200": dict(truncation="window", window_size=1200),
    "CR": dict(truncation="cr"),
}


def run_sweep():
    result = simulate(
        SupplyChainParams(
            horizon=max(LENGTHS),
            items_per_case=10,
            injection_period=240,
            main_read_rate=0.8,
            seed=42,
        )
    )
    rows = []
    for length in LENGTHS:
        row = [length]
        for name, kwargs in METHODS.items():
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300,
                    recent_history=600,
                    emit_events=False,
                    **kwargs,
                ),
            )
            service.run_until(length)
            row.append(f"{service.total_inference_seconds:.2f}s")
        rows.append(row)
    return rows


def test_fig5b_trace_length(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 5(b) inference time vs trace length",
        ["length", "Inference(All)", "Inference(W1200)", "Inference(CR)"],
        rows,
    )
    seconds = lambda s: float(s.rstrip("s"))
    # Shape: All's cost grows faster with trace length than CR's. (At
    # this reduced scale CR's fixed bookkeeping — per-object masks and
    # evidence arrays — can exceed All's absolute cost; the paper-scale
    # divergence is in the growth rates, which we assert.)
    growth_all = seconds(rows[-1][1]) / max(seconds(rows[0][1]), 1e-9)
    growth_cr = seconds(rows[-1][3]) / max(seconds(rows[0][3]), 1e-9)
    assert growth_all > growth_cr
