"""Appendix C.4 sensitivity — overlap rate and container capacity.

Expected shape (paper): neither location nor containment inference is
sensitive to the shelf overlap rate (flat ≈2.3% containment, ≈0.08%
location at RR = 0.7), and accuracy is independent of container
capacity because the per-object weight computation does not depend on
the other items in the container.
"""

from _common import emit_table, pct

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import RFInfer
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.sim.supplychain import SupplyChainParams, simulate

OVERLAPS = [0.2, 0.4, 0.6, 0.8]
CAPACITIES = [5, 20, 50]


def one_run(overlap: float, capacity: int, seed: int):
    result = simulate(
        SupplyChainParams(
            horizon=1500,
            items_per_case=capacity,
            cases_per_pallet=4,
            injection_period=250,
            main_read_rate=0.7,
            overlap_rate=overlap,
            seed=seed,
        )
    )
    window = TraceWindow.from_range(result.trace, 0, 1500)
    out = RFInfer(window).run()
    cont = containment_error_rate(result.truth, out.containment, 1499)
    loc = location_error_rate(result.truth, out, 0)
    return cont, loc


def run_sweeps():
    overlap_rows = []
    for overlap in OVERLAPS:
        cont, loc = one_run(overlap, capacity=20, seed=53)
        overlap_rows.append([overlap, pct(cont), pct(loc)])
    capacity_rows = []
    for capacity in CAPACITIES:
        cont, loc = one_run(overlap=0.5, capacity=capacity, seed=54)
        capacity_rows.append([capacity, pct(cont), pct(loc)])
    return overlap_rows, capacity_rows


def test_sensitivity(benchmark):
    overlap_rows, capacity_rows = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    emit_table(
        "App C.4 overlap-rate sensitivity (RR=0.7)",
        ["OR", "Containment", "Location"],
        overlap_rows,
    )
    emit_table(
        "App C.4 container-capacity sensitivity (RR=0.7, OR=0.5)",
        ["capacity", "Containment", "Location"],
        capacity_rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    # Shape: flat within a few points across the overlap grid, and
    # location error stays tiny everywhere.
    cont_vals = [as_float(r[1]) for r in overlap_rows]
    assert max(cont_vals) - min(cont_vals) <= 6.0
    # Containment accuracy independent of container capacity (App. C.4).
    cap_vals = [as_float(r[1]) for r in capacity_rows]
    assert max(cap_vals) - min(cap_vals) <= 6.0
    for row in overlap_rows + capacity_rows:
        assert as_float(row[2]) <= 4.0
