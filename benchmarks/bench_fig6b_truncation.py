"""Figure 6(b) — containment error vs trace length for All / CR / W1200.

Expected shape: window-based truncation degrades on longer traces (the
discriminating belt readings age out of its window); full history and
CR stay flat, with CR matching or beating full history thanks to noise
removal.
"""

from _common import emit_table, pct

from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.accuracy import service_containment_error
from repro.sim.supplychain import SupplyChainParams, simulate

LENGTHS = [600, 1200, 1800, 2400]
METHODS = {
    "All": dict(truncation="all"),
    "CR": dict(truncation="cr"),
    "W1200": dict(truncation="window", window_size=1200),
}


def run_sweep():
    result = simulate(
        SupplyChainParams(
            horizon=max(LENGTHS),
            items_per_case=10,
            injection_period=240,
            main_read_rate=0.7,
            seed=47,
        )
    )
    rows = []
    for length in LENGTHS:
        row = [length]
        for name, kwargs in METHODS.items():
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300, recent_history=600, emit_events=False, **kwargs
                ),
            )
            service.run_until(length)
            row.append(pct(service_containment_error(result.truth, service)))
        rows.append(row)
    return rows


def test_fig6b_truncation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 6(b) containment error vs trace length",
        ["length", "Containment(All)", "Containment(CR)", "Containment(W1200)"],
        rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    # Shape: on the longest trace the CR method is at least as accurate
    # as the naive window method.
    last = rows[-1]
    assert as_float(last[2]) <= as_float(last[3]) + 1e-9
