"""§5.4 table — Q1/Q2 answer quality and query-state size w/ and w/o
centroid sharing, plus compiled-vs-legacy migrated-state accounting.

A cold-chain deployment runs inference, feeds the inferred event stream
to Q1 (hybrid: containment + location + temperature) and Q2 (location
only), and scores alerts against the ground-truth stream. At the
storage area's hand-off point the per-object automaton states are
serialized raw and with centroid-based sharing (grouped by container,
as §4.2 prescribes).

Since the declarative-plan refactor, each query also runs through its
*legacy* hand-written implementation, and the per-query migrated-state
bytes (the sum of every monitored object's ``export_state`` payload)
are reported for both paths. They must be **equal** — compiled plans
promise byte-identical migration state — and the bench asserts it.

Expected shape: F-measures rise with the read rate and Q2 ≥ Q1 (Q2
avoids the noisier containment estimate); sharing shrinks state several
fold.

Standalone usage (the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_table_query_state.py --smoke \\
        --output BENCH_query_state.ci.json \\
        --baseline BENCH_query_state.json --max-drift 0.10

Regenerate the committed baseline after an intentional change::

    PYTHONPATH=src python benchmarks/bench_table_query_state.py --smoke \\
        --output BENCH_query_state.json
"""

import os
import sys
from collections import defaultdict

from _common import bench_cli, emit_table, load_baseline

from repro.core.events import ObjectEvent, events_from_truth
from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.sharing import centroid_compress
from repro.metrics.fmeasure import match_alerts
from repro.queries.legacy import (
    LegacyFreezerExposureQuery,
    LegacyTemperatureExposureQuery,
)
from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.sim.sensors import SensorReading
from repro.streams.engine import StreamScheduler
from repro.streams.state import encode_pattern_state
from repro.workloads.scenarios import cold_chain_scenario

READ_RATES = [0.6, 0.7, 0.8, 0.9]
TOLERANCE = 310  # one inference interval of answer latency


def run_query(query, events, scenario):
    scheduler = StreamScheduler()
    scheduler.route(ObjectEvent, query.on_event)
    scheduler.route(SensorReading, query.on_sensor)
    scheduler.run(events, scenario.sensor_stream(0))
    return query


def state_sizes(query, service, scenario):
    """Raw vs centroid-shared automaton state, grouped by container.

    §4.2 migrates the query state of *every* monitored object leaving a
    storage area (most automata are in identical quiescent states —
    that similarity is exactly what centroid sharing exploits), grouped
    by the objects' shared container.
    """
    groups = defaultdict(dict)
    for tag in sorted(scenario.catalog.frozen_items):
        state = query.pattern.state_of(tag)
        container = service.containment_at(tag)
        groups[container][tag] = encode_pattern_state(state)
    raw = sum(len(s) for g in groups.values() for s in g.values())
    shared = sum(
        centroid_compress(states).byte_size() for states in groups.values() if states
    )
    return raw, shared


def migrated_bytes(query, scenario):
    """Total per-object migration payload (QueryState ``export_state``)."""
    total = 0
    for tag in sorted(scenario.catalog.frozen_items):
        data = query.export_state(tag)
        if data is not None:
            total += len(data)
    return total


def run_cell(rr: float):
    # Few room cases so exposures cluster: exposed items sharing a case
    # also share the temperature history their states collect — the
    # commonality centroid sharing exploits (§4.2).
    scenario = cold_chain_scenario(
        seed=51,
        read_rate=rr,
        n_freezer_cases=8,
        n_room_cases=3,
        items_per_case=8,
        n_exposures=6,
        horizon=1200,
    )
    service = StreamingInference(
        scenario.trace,
        ServiceConfig(
            run_interval=300,
            recent_history=600,
            truncation="cr",
            emit_events=True,
            event_period=5,
        ),
    )
    service.run_until(scenario.horizon)
    truth_events = events_from_truth(scenario.truth, scenario.horizon, period=5)
    inferred_events = sorted(service.events, key=lambda e: e.time)

    out = {}
    for name, factory, legacy_factory in (
        (
            "Q1",
            lambda: FreezerExposureQuery(scenario.catalog, exposure_duration=300),
            lambda: LegacyFreezerExposureQuery(
                scenario.catalog, exposure_duration=300
            ),
        ),
        (
            "Q2",
            lambda: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
            lambda: LegacyTemperatureExposureQuery(
                scenario.catalog, exposure_duration=400
            ),
        ),
    ):
        truth_q = run_query(factory(), truth_events, scenario)
        inferred_q = run_query(factory(), inferred_events, scenario)
        legacy_q = run_query(legacy_factory(), inferred_events, scenario)
        fm = match_alerts(
            inferred_q.alert_pairs(), truth_q.alert_pairs(), tolerance=TOLERANCE
        )
        # Migrated bytes first: state_sizes probes via state_of, which
        # materializes quiescent partitions and would inflate exports.
        compiled_migrated = migrated_bytes(inferred_q, scenario)
        legacy_migrated = migrated_bytes(legacy_q, scenario)
        raw, shared = state_sizes(inferred_q, service, scenario)
        # The refactor's core promise, enforced on every bench run.
        assert compiled_migrated == legacy_migrated, (
            f"{name}: compiled plan migrates {compiled_migrated} B, "
            f"legacy path {legacy_migrated} B — byte equivalence broken"
        )
        assert inferred_q.alerts == legacy_q.alerts
        out[name] = {
            "read_rate": rr,
            "f1": fm.f1,
            "raw": raw,
            "shared": shared,
            "migrated_compiled": compiled_migrated,
            "migrated_legacy": legacy_migrated,
        }
    return out


def run_sweep(rates=READ_RATES):
    table = {"Q1": [], "Q2": []}
    for rr in rates:
        cell = run_cell(rr)
        for name in ("Q1", "Q2"):
            table[name].append(cell[name])
    return table


def emit(table, rates):
    rows = []
    for name in ("Q1", "Q2"):
        cells = table[name]
        rows.append([f"{name} F-m.(%)"] + [f"{100 * c['f1']:.1f}" for c in cells])
        rows.append([f"{name} state w/o share(B)"] + [str(c["raw"]) for c in cells])
        rows.append([f"{name} state w. share(B)"] + [str(c["shared"]) for c in cells])
        rows.append(
            [f"{name} migrated compiled(B)"]
            + [str(c["migrated_compiled"]) for c in cells]
        )
        rows.append(
            [f"{name} migrated legacy(B)"]
            + [str(c["migrated_legacy"]) for c in cells]
        )
    emit_table(
        "Sec 5.4 query accuracy and state sharing",
        ["metric"] + [f"RR={rr}" for rr in rates],
        rows,
    )


# -- standalone CLI (CI smoke gate) ----------------------------------------


def build_payload(smoke: bool) -> dict:
    rates = READ_RATES[:1] if smoke else READ_RATES
    table = run_sweep(rates)
    emit(table, rates)
    return {"smoke": smoke, "read_rates": rates, "queries": table}


def check_drift(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Migrated-byte comparison against the committed baseline.

    Byte totals are deterministic given the seeded scenario, but
    inference is floating-point: platform differences can shift which
    events materialize and therefore how many pattern pushes collect
    values. The gate allows ``budget`` relative drift; equivalence
    between compiled and legacy is asserted exactly at run time.
    """
    baseline = load_baseline(baseline_path)
    base = {
        (name, cell["read_rate"]): cell
        for name, cells in baseline["queries"].items()
        for cell in cells
    }
    failures = []
    for name, cells in payload["queries"].items():
        for cell in cells:
            key = (name, cell["read_rate"])
            if key not in base:
                failures.append(
                    f"{name}@RR={cell['read_rate']}: no baseline point in "
                    f"{baseline_path}; regenerate the committed baseline"
                )
                continue
            expected = base[key]["migrated_compiled"]
            got = cell["migrated_compiled"]
            if expected == 0:
                continue
            drift = abs(got - expected) / expected
            if drift > budget:
                failures.append(
                    f"{name}@RR={cell['read_rate']}: migrated bytes {got} "
                    f"drift {drift:.1%} from baseline {expected} "
                    f"(budget {budget:.0%})"
                )
    return failures


def main(argv=None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=build_payload,
        check=check_drift,
        budget_flag="--max-drift",
        budget_default=0.10,
        budget_help="allowed relative drift in migrated bytes vs baseline",
        gate_ok="query-state gate: within budget (compiled == legacy exact)",
    )


# -- pytest-benchmark entry point ------------------------------------------


def test_query_state_table(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    rates = READ_RATES[:1] if smoke else READ_RATES
    table = benchmark.pedantic(lambda: run_sweep(rates), rounds=1, iterations=1)
    emit(table, rates)
    for name in ("Q1", "Q2"):
        cells = table[name]
        if not smoke:
            # F-measure healthy at high read rates.
            assert cells[-1]["f1"] >= 0.6
        for cell in cells:
            # Sharing shrinks every cell's state.
            assert cell["shared"] < cell["raw"]
            # Compiled and legacy migrate identical bytes.
            assert cell["migrated_compiled"] == cell["migrated_legacy"]


if __name__ == "__main__":
    sys.exit(main())
