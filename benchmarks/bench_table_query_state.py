"""§5.4 table — Q1/Q2 answer quality and query-state size w/ and w/o
centroid sharing.

A cold-chain deployment runs inference, feeds the inferred event stream
to Q1 (hybrid: containment + location + temperature) and Q2 (location
only), and scores alerts against the ground-truth stream. At the
storage area's hand-off point the per-object automaton states are
serialized raw and with centroid-based sharing (grouped by container,
as §4.2 prescribes).

Expected shape: F-measures rise with the read rate and Q2 ≥ Q1 (Q2
avoids the noisier containment estimate); sharing shrinks state several
fold.
"""

from collections import defaultdict

from _common import emit_table

from repro.core.events import ObjectEvent, events_from_truth
from repro.core.service import ServiceConfig, StreamingInference
from repro.distributed.sharing import centroid_compress
from repro.metrics.fmeasure import match_alerts
from repro.queries.q1 import FreezerExposureQuery
from repro.queries.q2 import TemperatureExposureQuery
from repro.sim.sensors import SensorReading
from repro.streams.engine import StreamScheduler
from repro.streams.state import encode_pattern_state
from repro.workloads.scenarios import cold_chain_scenario

READ_RATES = [0.6, 0.7, 0.8, 0.9]
TOLERANCE = 310  # one inference interval of answer latency


def run_query(query, events, scenario):
    scheduler = StreamScheduler()
    scheduler.route(ObjectEvent, query.on_event)
    scheduler.route(SensorReading, query.on_sensor)
    scheduler.run(events, scenario.sensor_stream(0))
    return query


def state_sizes(query, service, scenario):
    """Raw vs centroid-shared automaton state, grouped by container.

    §4.2 migrates the query state of *every* monitored object leaving a
    storage area (most automata are in identical quiescent states —
    that similarity is exactly what centroid sharing exploits), grouped
    by the objects' shared container.
    """
    groups = defaultdict(dict)
    for tag in sorted(scenario.catalog.frozen_items):
        state = query.pattern.state_of(tag)
        container = service.containment_at(tag)
        groups[container][tag] = encode_pattern_state(state)
    raw = sum(len(s) for g in groups.values() for s in g.values())
    shared = sum(
        centroid_compress(states).byte_size() for states in groups.values() if states
    )
    return raw, shared


def run_cell(rr: float):
    # Few room cases so exposures cluster: exposed items sharing a case
    # also share the temperature history their states collect — the
    # commonality centroid sharing exploits (§4.2).
    scenario = cold_chain_scenario(
        seed=51,
        read_rate=rr,
        n_freezer_cases=8,
        n_room_cases=3,
        items_per_case=8,
        n_exposures=6,
        horizon=1200,
    )
    service = StreamingInference(
        scenario.trace,
        ServiceConfig(
            run_interval=300,
            recent_history=600,
            truncation="cr",
            emit_events=True,
            event_period=5,
        ),
    )
    service.run_until(scenario.horizon)
    truth_events = events_from_truth(scenario.truth, scenario.horizon, period=5)
    inferred_events = sorted(service.events, key=lambda e: e.time)

    out = {}
    for name, factory in (
        ("Q1", lambda: FreezerExposureQuery(scenario.catalog, exposure_duration=300)),
        ("Q2", lambda: TemperatureExposureQuery(scenario.catalog, exposure_duration=400)),
    ):
        truth_q = run_query(factory(), truth_events, scenario)
        inferred_q = run_query(factory(), inferred_events, scenario)
        fm = match_alerts(
            inferred_q.alert_pairs(), truth_q.alert_pairs(), tolerance=TOLERANCE
        )
        raw, shared = state_sizes(inferred_q, service, scenario)
        out[name] = (fm.f1, raw, shared)
    return out


def run_sweep():
    table = {"Q1": [], "Q2": []}
    for rr in READ_RATES:
        cell = run_cell(rr)
        for name in ("Q1", "Q2"):
            f1, raw, shared = cell[name]
            table[name].append((rr, f1, raw, shared))
    return table


def test_query_state_table(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name in ("Q1", "Q2"):
        rows.append(
            [f"{name} F-m.(%)"] + [f"{100 * f1:.1f}" for _, f1, _, _ in table[name]]
        )
        rows.append(
            [f"{name} state w/o share(B)"] + [str(raw) for _, _, raw, _ in table[name]]
        )
        rows.append(
            [f"{name} state w. share(B)"]
            + [str(shared) for _, _, _, shared in table[name]]
        )
    emit_table(
        "Sec 5.4 query accuracy and state sharing",
        ["metric"] + [f"RR={rr}" for rr in READ_RATES],
        rows,
    )
    for name in ("Q1", "Q2"):
        cells = table[name]
        # F-measure healthy at high read rates.
        assert cells[-1][1] >= 0.6
        # Sharing shrinks every cell's state.
        for _, _, raw, shared in cells:
            assert shared < raw
