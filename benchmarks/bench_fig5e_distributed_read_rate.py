"""Figure 5(e) — distributed inference error vs read rate.

Three-warehouse chain (paper: 10 warehouses, 0.32 M items — scaled to
~500 items). Expected shape: the no-state-transfer method ("None") has
the highest error; the collapsed/CR migration tracks the centralized
method closely at every read rate.
"""

from _common import emit_table, pct

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams

READ_RATES = [0.6, 0.7, 0.8, 0.9]


def chain(rr: float):
    return simulate(
        SupplyChainParams(
            n_warehouses=3,
            horizon=2400,
            items_per_case=8,
            cases_per_pallet=4,
            injection_period=300,
            main_read_rate=rr,
            warehouse=WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=50),
            seed=44,
        )
    )


def run_sweep():
    config = ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )
    rows = []
    for rr in READ_RATES:
        result = chain(rr)
        cells = [rr]
        for strategy in ("none", "collapsed"):
            deployment = DistributedDeployment(result, config, strategy=strategy)
            deployment.run()
            cells.append(pct(deployment.containment_error()))
        central = CentralizedDeployment(result, config)
        central.run()
        cells.append(pct(central.containment_error()))
        rows.append(cells)
    return rows


def test_fig5e_distributed_read_rate(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 5(e) distributed error vs read rate",
        ["RR", "None", "CR", "Centralized"],
        rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    for row in rows:
        none_err, cr_err, central_err = map(as_float, row[1:])
        assert cr_err <= none_err + 1e-9  # CR no worse than None
        assert cr_err <= central_err + 4.0  # CR close to centralized
