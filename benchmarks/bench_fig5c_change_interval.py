"""Figure 5(c) — change-detection F-measure vs anomaly frequency.

RFINFER with change-point detection (H̄ = 500 per Table 4's
keep-up-with-stream choice) against SMURF* for RR ∈ {0.7, 0.8}.
Expected shape: RFINFER stays roughly flat across the containment-change
interval and well above SMURF*, which lacks a principled
location↔containment feedback.
"""

from _common import emit_table

from repro.baselines.smurf_star import SmurfStar
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.fmeasure import change_detection_fmeasure
from repro.sim.supplychain import SupplyChainParams, simulate

INTERVALS = [20, 40, 80, 120]
READ_RATES = [0.7, 0.8]
DELTA = 80.0
TOLERANCE = 600


def run_sweep():
    rows = []
    for interval in INTERVALS:
        row = [interval]
        for rr in READ_RATES:
            result = simulate(
                SupplyChainParams(
                    horizon=1800,
                    items_per_case=10,
                    injection_period=240,
                    main_read_rate=rr,
                    n_shelves=6,
                    anomaly_interval=interval,
                    seed=43,
                )
            )
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300,
                    recent_history=500,
                    truncation="cr",
                    change_detection=True,
                    change_threshold=DELTA,
                    emit_events=False,
                ),
            )
            service.run_until(1800)
            ours = change_detection_fmeasure(
                result.truth.changes, service.changes, tolerance=TOLERANCE
            )
            smurf = SmurfStar(result.trace).run()
            theirs = change_detection_fmeasure(
                result.truth.changes, smurf.changes, tolerance=TOLERANCE
            )
            row.append(f"{100 * ours.f1:.1f}")
            row.append(f"{100 * theirs.f1:.1f}")
        rows.append(row)
    return rows


def test_fig5c_change_interval(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 5(c) F-measure vs containment change interval",
        ["interval", "RFINFER RR=0.7", "SMURF* RR=0.7", "RFINFER RR=0.8", "SMURF* RR=0.8"],
        rows,
    )
    # Shape: RFINFER beats SMURF* in every cell.
    for row in rows:
        assert float(row[1]) > float(row[2])
        assert float(row[3]) > float(row[4])
