"""Ablations (ours) — the design choices DESIGN.md calls out.

1. Appendix A.3 optimizations: candidate pruning and group memoization
   — measure their effect on inference time and containment accuracy.
2. Smoothing over containment (the paper's core idea): compare object
   location error when objects inherit their inferred container's
   posterior vs per-object (solo) location estimation.
"""

import time


from _common import emit_table, pct

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.sim.supplychain import SupplyChainParams, simulate


def run_ablation():
    result = simulate(
        SupplyChainParams(
            horizon=1500,
            items_per_case=12,
            injection_period=200,
            main_read_rate=0.7,
            seed=55,
        )
    )
    window = TraceWindow.from_range(result.trace, 0, 1500)
    configs = {
        "full (pruning+memoize)": InferenceConfig(),
        "no pruning": InferenceConfig(candidate_pruning=False),
        "no memoization": InferenceConfig(memoize=False),
        "neither": InferenceConfig(candidate_pruning=False, memoize=False),
    }
    opt_rows = []
    outputs = {}
    for name, config in configs.items():
        started = time.perf_counter()
        out = RFInfer(window, config).run()
        elapsed = time.perf_counter() - started
        err = containment_error_rate(result.truth, out.containment, 1499)
        opt_rows.append([name, f"{elapsed:.2f}s", pct(err), out.iterations])
        outputs[name] = out

    # Smoothing-over-containment ablation: solo location estimates.
    base = outputs["full (pruning+memoize)"]
    smoothed_err = location_error_rate(result.truth, base, 0)
    solo = RFInfer(window, InferenceConfig()).run()
    solo.containment = {obj: None for obj in solo.containment}
    solo._location_cache.clear()
    solo_err = location_error_rate(result.truth, solo, 0, tags=result.truth.items())
    smooth_rows = [
        ["smoothing over containment", pct(smoothed_err)],
        ["per-object (solo) estimation", pct(solo_err)],
    ]
    return opt_rows, smooth_rows


def test_ablation(benchmark):
    opt_rows, smooth_rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit_table(
        "Ablation: A.3 optimizations",
        ["configuration", "time", "containment error", "iterations"],
        opt_rows,
    )
    emit_table(
        "Ablation: item location smoothing",
        ["method", "location error"],
        smooth_rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    seconds = lambda s: float(s.rstrip("s"))
    # The optimizations must not cost accuracy or time vs the naive
    # configuration. (At this scale pruning also *helps* accuracy: it
    # keeps EM away from poor local optima that full candidate sets
    # reach from cold initializations — consistent with App. A.3's
    # "effective ... without affecting the accuracy".)
    full_row, neither_row = opt_rows[0], opt_rows[-1]
    assert seconds(full_row[1]) <= seconds(neither_row[1])
    assert as_float(full_row[2]) <= as_float(neither_row[2]) + 0.5
    # Smoothing over containment must not be worse than solo estimates.
    assert as_float(smooth_rows[0][1]) <= as_float(smooth_rows[1][1]) + 0.5
