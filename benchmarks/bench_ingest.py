"""Edge ingestion bench — sustained rate, outage recovery, queue bounds.

A multi-site cold chain's traces play the physical world: each
(site, reader) slice becomes one vendor feed behind one
:class:`~repro.edge.node.EdgeNode`, and the whole plane funnels into
one :class:`~repro.edge.gateway.IngestGateway`. Two configurations are
measured:

* **clean ingest** (``clean-ingest``) — no faults; the point is the
  sustained parse→batch→dedup→seal rate (``readings_per_sec``) and the
  store-and-forward / staging high-water marks under ordinary load;
* **flaky recovery** (``flaky-recovery``) — the busiest reader goes
  offline for half the run then burst-replays, feeds emit
  duplicate/junk/shuffled lines, every edge↔gateway link drops,
  duplicates, delays, and reorders, one edge crashes and replays its
  spool, and the gateway crashes and recovers from its WAL. The point
  reports how many pump rounds (and roughly how many wall seconds) the
  watermark needed to catch back up after the outage ended.

Both points re-run the convergence oracle inline: the gateway-rebuilt
traces must be **bit-identical** to the clean scenario traces
(``converged``), and ``check_regression`` refuses to pass any payload
where they are not — convergence is gated unconditionally, before any
baseline comparison. ``BENCH_ingest.json`` at the repo root is the
committed baseline; CI runs ``--smoke`` and gates on >25% growth of the
hardware-normalized ingest cost per 100k readings (see
``_common.calibration_seconds``).

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py                  # full run
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke \\
        --output BENCH_ingest.ci.json \\
        --baseline BENCH_ingest.json --max-regression 0.25            # CI gate
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    normalized_latency_failures,
)

from repro.edge import EdgePlan, run_ingest  # noqa: E402
from repro.runtime.faults import FaultPlan  # noqa: E402
from repro.sim.vendor import FeedNoise, VendorFeed  # noqa: E402
from repro.workloads.scenarios import cold_chain_scenario  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_ingest.json")

INTERVAL = 300  # gateway seal window, matching the chaos harness
SEED = 7


def build_traces(smoke: bool):
    # Smoke runs the full scenario: the whole bench is a few seconds,
    # and a smaller trace would not amortize the fixed per-pump-round
    # cost, so the per-reading gate metric would not transfer.
    del smoke
    scenario = cold_chain_scenario(
        n_freezer_cases=16,
        n_room_cases=16,
        items_per_case=8,
        horizon=1200,
        n_sites=2,
        read_rate=0.95,
        overlap_rate=0.3,
        seed=SEED,
    )
    return scenario.traces


def traces_identical(rebuilt, originals) -> bool:
    """The convergence oracle, as a predicate (benches report, gates fail)."""
    if len(rebuilt) != len(originals):
        return False
    for got, want in zip(rebuilt, originals):
        if got.site != want.site or got.horizon != want.horizon:
            return False
        if got.tag_table != want.tag_table:
            return False
        if not (
            np.array_equal(got.times, want.times)
            and np.array_equal(got.tag_ids, want.tag_ids)
            and np.array_equal(got.readers, want.readers)
        ):
            return False
    return True


def busiest_edge(traces, start: int) -> int:
    """The edge id (run_ingest enumeration order) with the most readings
    at or after ``start`` — the outage target that actually hurts."""
    best, best_count, edge_id = 0, -1, 0
    for trace in traces:
        for reader in VendorFeed.split_trace(trace):
            count = int(np.sum((trace.readers == reader) & (trace.times >= start)))
            if count > best_count:
                best, best_count = edge_id, count
            edge_id += 1
    return best


def flaky_plan(traces) -> EdgePlan:
    """The everything-at-once outage schedule for the recovery point."""
    horizon = max(trace.horizon for trace in traces)
    n_edges = sum(len(VendorFeed.split_trace(trace)) for trace in traces)
    busy = busiest_edge(traces, horizon // 4)
    return EdgePlan(
        seed=SEED,
        noise=FeedNoise(duplicate=0.1, junk=0.05, shuffle=0.3),
        offline={busy: (horizon // 4, 3 * horizon // 4)},
        link_faults=FaultPlan.chaos(
            SEED, drop=0.2, duplicate=0.15, delay=0.2, max_delay=3
        ),
        edge_restarts={(busy + 1) % n_edges: horizon // 2},
        gateway_restarts=(horizon // 2,),
    )


def run_point(label: str, traces, plan: EdgePlan | None) -> dict:
    with tempfile.TemporaryDirectory() as workdir:
        started = time.perf_counter()
        rebuilt, report = run_ingest(traces, INTERVAL, workdir, plan=plan)
        elapsed = time.perf_counter() - started
    point = {
        "label": label,
        "n_readings": report.readings,
        "n_edges": len(report.edge_stats),
        "pump_rounds": report.pump_rounds,
        "elapsed_seconds": elapsed,
        "readings_per_sec": report.readings / elapsed,
        "seconds_per_100k_readings": elapsed / report.readings * 1e5,
        "max_pending_readings": max(
            stats["max_pending_readings"] for stats in report.edge_stats
        ),
        "max_unacked_batches": max(
            stats["max_unacked_batches"] for stats in report.edge_stats
        ),
        "max_staged_readings": report.gateway_stats["max_staged_readings"],
        "converged": traces_identical(rebuilt, traces),
    }
    if plan is not None:
        rounds = report.recovery_rounds
        point["edge_retransmits"] = sum(s["retransmits"] for s in report.edge_stats)
        point["duplicate_batches"] = report.gateway_stats["duplicate_batches"]
        point["restarts"] = report.gateway_stats["restarts"] + sum(
            s["restarts"] for s in report.edge_stats
        )
        point["recovery_rounds"] = rounds
        # The pump loop is uniform work per round, so wall share of the
        # post-outage rounds approximates recovery wall time.
        point["recovery_seconds"] = (
            elapsed * rounds / report.pump_rounds if rounds is not None else None
        )
    return point


# -- payload / gate ---------------------------------------------------------


def build_payload(smoke: bool) -> dict:
    calibration = calibration_seconds()
    traces = build_traces(smoke)
    points = [
        run_point("clean-ingest", traces, None),
        run_point("flaky-recovery", traces, flaky_plan(traces)),
    ]
    return {
        "schema_version": 1,
        "bench": "ingest",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "points": points,
    }


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Convergence is absolute; ingest cost gates against the baseline."""
    failures = [
        f"{point['label']}: rebuilt traces diverged from the clean traces"
        for point in payload["points"]
        if not point["converged"]
    ]
    failures.extend(
        normalized_latency_failures(
            payload, load_baseline(baseline_path), budget, "seconds_per_100k_readings"
        )
    )
    return failures


def emit(payload: dict) -> None:
    rows = [
        [
            point["label"],
            point["n_readings"],
            f"{point['readings_per_sec']:.0f}",
            str(point.get("recovery_rounds", "-")),
            (
                f"{point['recovery_seconds'] * 1e3:.0f}ms"
                if point.get("recovery_seconds") is not None
                else "-"
            ),
            point["max_pending_readings"],
            point["max_staged_readings"],
            "yes" if point["converged"] else "NO",
        ]
        for point in payload["points"]
    ]
    emit_table(
        "Edge ingestion (vendor feeds through the gateway)",
        [
            "config",
            "readings",
            "readings/s",
            "recovery rounds",
            "recovery",
            "edge queue max",
            "staged max",
            "converged",
        ],
        rows,
    )


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
        gate_ok="ingest gate: within budget, converged",
    )


# -- pytest-benchmark entry point ------------------------------------------


def test_ingest(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    payload = benchmark.pedantic(lambda: build_payload(smoke), rounds=1, iterations=1)
    emit(payload)
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_ingest.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    output = os.environ.get("BENCH_INGEST_OUT", default)
    from _common import write_json

    write_json(output, payload)
    by_label = {point["label"]: point for point in payload["points"]}
    # The convergence oracle holds under both configurations.
    assert all(point["converged"] for point in payload["points"])
    # The flaky run actually exercised the fault machinery.
    flaky = by_label["flaky-recovery"]
    assert flaky["duplicate_batches"] > 0
    assert flaky["edge_retransmits"] > 0
    assert flaky["restarts"] >= 2  # one edge crash + one gateway crash
    assert flaky["recovery_rounds"] is not None
    # Store-and-forward stayed bounded while absorbing the outage.
    assert flaky["max_pending_readings"] > by_label["clean-ingest"]["max_pending_readings"]


if __name__ == "__main__":
    raise SystemExit(main())
