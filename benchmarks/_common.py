"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures at reduced
scale (the paper ran 10 warehouses × 32 000 items × 4 h on a Xeon; these
benches run minutes-long traces with hundreds of items so the whole
suite finishes in minutes). Scale factors are stated in each bench's
docstring and in EXPERIMENTS.md; the *shapes* — who wins, by what
factor, where crossovers fall — are the reproduction targets.

Results are printed through ``sys.__stdout__`` (bypassing pytest's
capture so they land in ``bench_output.txt``) and archived under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    sys.__stdout__.write("\n" + text)
    sys.__stdout__.flush()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = name.lower().replace(" ", "_").replace("/", "-")
    with open(os.path.join(RESULTS_DIR, f"{safe}.txt"), "w") as fh:
        fh.write(text)


def pct(value: float) -> str:
    return f"{100.0 * value:.2f}%"
