"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures at reduced
scale (the paper ran 10 warehouses × 32 000 items × 4 h on a Xeon; these
benches run minutes-long traces with hundreds of items so the whole
suite finishes in minutes). Scale factors are stated in each bench's
docstring and in EXPERIMENTS.md; the *shapes* — who wins, by what
factor, where crossovers fall — are the reproduction targets.

Results are printed through ``sys.__stdout__`` (bypassing pytest's
capture so they land in ``bench_output.txt``) and archived under
``benchmarks/results/``.

The gated benches (throughput, query-state, serving) share one CLI
shape — ``--smoke``, ``--output``, ``--baseline``, and a budget flag —
and one JSON/exit-code protocol, all provided by :func:`bench_cli`.
Latency gates normalize by :func:`calibration_seconds` (a fixed numpy
workload timed in-process) so a slower CI runner does not read as a
regression and a faster one cannot hide a real one — see
:func:`normalized_latency_failures`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    sys.__stdout__.write("\n" + text)
    sys.__stdout__.flush()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = name.lower().replace(" ", "_").replace("/", "-")
    with open(os.path.join(RESULTS_DIR, f"{safe}.txt"), "w") as fh:
        fh.write(text)


def pct(value: float) -> str:
    return f"{100.0 * value:.2f}%"


def calibration_seconds() -> float:
    """A fixed numpy workload, timed — the hardware normalizer.

    Regression gates compare ``latency / calibration`` so a slower CI
    runner does not read as a regression and a faster one cannot hide
    a real one.
    """
    rng = np.random.default_rng(0)
    a = rng.random((400, 400))
    started = time.perf_counter()
    for _ in range(20):
        a = 0.5 * (a @ a) / np.linalg.norm(a)
    return time.perf_counter() - started


def machine_info(worker_stats: list[dict] | None = None) -> dict:
    """Hardware/topology context recorded in every bench JSON.

    Baselines only compare meaningfully across machines when the worker
    count and core count travel with the numbers; per-worker wall-time
    skew shows how evenly a sharded run spread its load (1.0 = perfect).
    """
    info: dict = {
        "cpu_count": os.cpu_count() or 1,
        "n_workers": len(worker_stats) if worker_stats else 1,
    }
    if worker_stats:
        walls = [s.get("busy_wall_seconds", 0.0) for s in worker_stats]
        info["worker_wall_seconds"] = [round(w, 6) for w in walls]
        info["worker_cpu_seconds"] = [
            round(s.get("busy_cpu_seconds", 0.0), 6) for s in worker_stats
        ]
        info["worker_wall_skew"] = (
            round(max(walls) / min(walls), 4) if min(walls) > 0 else None
        )
    return info


def write_json(path: str, payload: dict) -> None:
    """Write a bench payload the way every committed baseline is kept."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def normalized_latency_failures(
    payload: dict,
    baseline: dict,
    budget: float,
    metric: str,
) -> list[str]:
    """Compare hardware-normalized latencies point-by-point.

    Each payload ``point`` must carry ``label`` and ``metric``; the
    payloads carry ``calibration_seconds``. A point missing from the
    baseline fails loudly — a renamed config must not silently disable
    the gate.
    """
    base_points = {point["label"]: point for point in baseline["points"]}
    failures: list[str] = []
    for point in payload["points"]:
        base = base_points.get(point["label"])
        if base is None:
            failures.append(
                f"{point['label']}: no matching baseline point; "
                "regenerate the committed baseline"
            )
            continue
        fresh_norm = point[metric] / payload["calibration_seconds"]
        base_norm = base[metric] / baseline["calibration_seconds"]
        ratio = fresh_norm / base_norm
        if ratio > 1.0 + budget:
            failures.append(
                f"{point['label']}: normalized {metric} {ratio:.2f}x baseline "
                f"(budget {1.0 + budget:.2f}x)"
            )
    return failures


def bench_cli(
    argv: list[str] | None,
    *,
    doc: str,
    build_payload: Callable[[bool], dict],
    check: Callable[[dict, str, float], list[str]],
    default_output: str | None = None,
    budget_flag: str = "--max-regression",
    budget_default: float = 0.25,
    budget_help: str = "allowed normalized-latency growth (0.25 = +25%%)",
    gate_ok: str = "regression gate: within budget",
) -> int:
    """The shared smoke/CLI/JSON-emit protocol of the gated benches.

    Parses ``--smoke`` / ``--output`` / ``--baseline`` / the budget
    flag, builds (and lets the bench emit) the payload, writes the JSON
    artifact, and runs ``check(payload, baseline_path, budget)`` —
    printing each failure to stderr and returning a non-zero exit code
    on regression, exactly as CI expects.

    ``--trace`` runs the whole bench under an installed telemetry
    session and writes the flight-recorder/metrics JSONL next to the
    bench JSON (``<output>.telemetry.jsonl``), so a perf regression
    report comes with its own per-plane cost breakdown
    (``python -m repro.obs.summary <dump>``).
    """
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("--smoke", action="store_true", help="reduced sweep for CI")
    if default_output is None:
        parser.add_argument("--output", help="write the payload JSON here")
    else:
        parser.add_argument("--output", default=default_output)
    parser.add_argument("--baseline", help="baseline JSON to gate against")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run traced; write telemetry JSONL next to the bench JSON",
    )
    budget_dest = budget_flag.lstrip("-").replace("-", "_")
    parser.add_argument(budget_flag, type=float, default=budget_default, help=budget_help)
    args = parser.parse_args(argv)
    trace_path = None
    if args.trace:
        from repro.obs import Telemetry, install, uninstall, write_jsonl

        base = args.output or "bench"
        trace_path = os.path.splitext(base)[0] + ".telemetry.jsonl"
        tel = install(Telemetry(capacity=65536))
        try:
            payload = build_payload(args.smoke)
        finally:
            write_jsonl(trace_path, tel, reason="bench")
            uninstall()
    else:
        payload = build_payload(args.smoke)
    # Benches that ran real workers record their own richer entry; the
    # default records at least the core count and a single worker.
    payload.setdefault("machine", machine_info())
    if trace_path is not None:
        payload["telemetry_jsonl"] = trace_path
        print(f"wrote {trace_path}")
    if args.output:
        write_json(args.output, payload)
        print(f"wrote {args.output}")
    if args.baseline:
        failures = check(payload, args.baseline, getattr(args, budget_dest))
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(gate_ok)
    return 0
