"""Table 3 — change-detection F-measure across fixed δ values, plus the
offline-calibrated choice.

Expected shape: F rises then falls across the δ grid (too low → false
positives, too high → missed changes); the offline deployment
calibration lands near the optimum.
"""

from _common import emit_table

from repro.core.calibration import calibrate_threshold_from_deployment
from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.fmeasure import change_detection_fmeasure
from repro.sim.supplychain import SupplyChainParams, simulate

DELTAS = [10, 20, 40, 80, 120, 160]
READ_RATES = [0.6, 0.8]
TOLERANCE = 600


def fmeasure_at(result, delta: float) -> float:
    service = StreamingInference(
        result.trace,
        ServiceConfig(
            run_interval=300,
            recent_history=600,
            truncation="cr",
            change_detection=True,
            change_threshold=delta,
            emit_events=False,
        ),
    )
    service.run_until(result.params.horizon)
    fm = change_detection_fmeasure(
        result.truth.changes, service.changes, tolerance=TOLERANCE
    )
    return fm.f1


def run_sweep():
    rows = []
    chosen = {}
    for rr in READ_RATES:
        result = simulate(
            SupplyChainParams(
                horizon=1800,
                items_per_case=10,
                injection_period=240,
                main_read_rate=rr,
                n_shelves=6,
                anomaly_interval=60,
                seed=48,
            )
        )
        row = [f"RR={rr}"]
        for delta in DELTAS:
            row.append(f"{100 * fmeasure_at(result, delta):.0f}")
        calibrated = calibrate_threshold_from_deployment(
            main_read_rate=rr, n_shelves=6, horizon=2400, seed=7
        )
        chosen[rr] = calibrated
        row.append(f"{100 * fmeasure_at(result, calibrated):.0f} (δ={calibrated:.0f})")
        rows.append(row)
    return rows, chosen


def test_table3_threshold(benchmark):
    rows, chosen = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Table 3 F-measure vs fixed delta + offline choice",
        ["trace"] + [f"δ={d}" for d in DELTAS] + ["offline δ"],
        rows,
    )
    # Shape: for each trace, the offline-calibrated F is within reach of
    # the best fixed value on the grid (the paper reports within 2%; at
    # this scale we accept a wider band).
    for row in rows:
        grid = [float(v) for v in row[1 : 1 + len(DELTAS)]]
        offline = float(row[-1].split(" ")[0])
        assert offline >= max(grid) - 30.0
