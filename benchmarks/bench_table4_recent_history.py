"""Table 4 — F-measure and time cost vs recent-history size H̄.

Expected shape: larger H̄ improves change-detection F (more suffix
evidence) but costs more inference time; low read rates need larger H̄
to reach the same accuracy.
"""

from _common import emit_table

from repro.core.service import ServiceConfig, StreamingInference
from repro.metrics.fmeasure import change_detection_fmeasure
from repro.sim.supplychain import SupplyChainParams, simulate

HISTORIES = [300, 500, 700, 900]
READ_RATES = [0.6, 0.8]
TOLERANCE = 600
DELTA = 80.0


def run_sweep():
    rows = []
    for rr in READ_RATES:
        result = simulate(
            SupplyChainParams(
                horizon=1800,
                items_per_case=10,
                injection_period=240,
                main_read_rate=rr,
                n_shelves=6,
                anomaly_interval=60,
                seed=49,
            )
        )
        f_row = [f"RR={rr} F-m.(%)"]
        t_row = [f"RR={rr} time(s)"]
        for history in HISTORIES:
            service = StreamingInference(
                result.trace,
                ServiceConfig(
                    run_interval=300,
                    recent_history=history,
                    truncation="cr",
                    change_detection=True,
                    change_threshold=DELTA,
                    emit_events=False,
                ),
            )
            service.run_until(1800)
            fm = change_detection_fmeasure(
                result.truth.changes, service.changes, tolerance=TOLERANCE
            )
            f_row.append(f"{100 * fm.f1:.0f}")
            t_row.append(f"{service.total_inference_seconds:.2f}")
        rows.append(f_row)
        rows.append(t_row)
    return rows


def test_table4_recent_history(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Table 4 F-measure and time vs recent history size",
        ["metric"] + [f"H={h}" for h in HISTORIES],
        rows,
    )
    # Sanity at this scale: all runs complete well inside the stream
    # interval. (The paper-scale effect — time growing with H̄ — is
    # swamped here by EM iteration-count noise; windows are hundreds,
    # not tens of thousands, of epochs.)
    for t_row in rows[1::2]:
        times = [float(v) for v in t_row[1:]]
        assert all(0 < t < 300 for t in times)
    for f_row in rows[0::2]:
        values = [float(v) for v in f_row[1:]]
        assert all(0 <= v <= 100 for v in values)
