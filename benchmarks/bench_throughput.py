"""Stream-speed throughput bench — the repo's perf trajectory anchor.

Sweeps item counts through the single-site periodic inference service
(critical-region truncation, events on — the §5.1 configuration) and
records, per configuration:

* **epochs/sec** — stream epochs divided by total inference seconds;
* **per-run latency** p50/p95 and the per-phase breakdown
  (online detector / window build / stability-gate pruning / E-step /
  M-step / evidence / change detection / critical regions / events)
  from ``RunRecord.phase_seconds`` — the detector and prune phases are
  exact zeros here because this sweep runs ungated (the gated
  long-stream sweep lives in ``bench_longstream.py``);
* **peak RSS** of the process.

A second, **federated** sweep drives an 8-site supply-chain federation
twice over the same traces — single-process and sharded across OS
worker processes (:class:`~repro.runtime.process.ProcessTransport`) —
and records wall-clock epochs/s plus the **critical-path** epochs/s
(stream epochs ÷ the busiest worker's CPU seconds: the wall-clock rate
a machine with ≥ ``n_workers`` free cores sustains, and the only
honest parallel metric on a single-core CI runner). The largest
configuration streams ~21 k tags across 4 workers; both runs must
produce identical containment errors (the determinism contract). The
federated points take minutes — ``--smoke`` keeps only the small
2-worker point.

Results land in ``BENCH_throughput.json`` at the repo root; the checked
in copy is the committed baseline CI gates against. Because absolute
seconds differ across machines, every run also measures a fixed numpy
``calibration_seconds`` workload and the gate compares *normalized*
latency (p50 / calibration — for federated points, wall seconds per
inference interval) with a regression budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke \\
        --output BENCH_throughput.ci.json \\
        --baseline BENCH_throughput.json --max-regression 0.25       # CI gate

or through pytest (``python -m pytest benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    machine_info,
    normalized_latency_failures,
)

from repro.core.service import ServiceConfig, StreamingInference  # noqa: E402
from repro.runtime import Cluster, ProcessTransport  # noqa: E402
from repro.sim.supplychain import SupplyChainParams, simulate  # noqa: E402
from repro.sim.warehouse import WarehouseParams  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: (items/case, cases/pallet) — the first entry is the smoke subset.
ITEM_COUNTS = [(6, 5), (12, 5), (20, 6)]
HORIZON = 1500
PHASES = [
    "detector",
    "window",
    "prune",
    "e_step",
    "m_step",
    "evidence",
    "changes",
    "cr",
    "events",
]

#: federated scale-out sweep: supply-chain *chains* (every pallet
#: visits every site, so per-site load is near-uniform and the default
#: round-robin shard map packs workers evenly). The smoke entry shards
#: 8 sites over 2 workers; the headline entry streams ~21k tags as
#: single-case pallets through a short-dwell 4-site chain on 4 workers
#: — single-case pallets keep the co-migrating bundles large (the §4.2
#: sharing path) while the quick shelf dwell keeps goods flowing
#: through every site inside the horizon.
FED_CONFIGS = [
    dict(
        sites=8,
        cases=3,
        items=10,
        injection=300,
        workers=2,
        smoke=True,
        read_rate=0.5,
        transit=30,
        warehouse=dict(shelf_dwell_mean=30, shelf_dwell_jitter=8),
    ),
    dict(
        sites=4,
        cases=1,
        items=1400,
        injection=100,
        workers=4,
        smoke=False,
        read_rate=0.4,
        transit=10,
        warehouse=dict(
            shelf_dwell_mean=10, shelf_dwell_jitter=3, entry_dwell=5, exit_dwell=5
        ),
    ),
]


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_sweep(smoke: bool = False) -> list[dict]:
    points: list[dict] = []
    counts = ITEM_COUNTS[:1] if smoke else ITEM_COUNTS
    for items_per_case, cases in counts:
        result = simulate(
            SupplyChainParams(
                horizon=HORIZON,
                items_per_case=items_per_case,
                cases_per_pallet=cases,
                injection_period=200,
                main_read_rate=0.8,
                n_shelves=16,
                seed=52,
            )
        )
        service = StreamingInference(
            result.trace,
            ServiceConfig(
                run_interval=300,
                recent_history=600,
                truncation="cr",
                emit_events=True,
                event_period=5,
            ),
        )
        service.run_until(HORIZON)
        latencies = np.asarray(
            [r.duration_seconds for r in service.runs if r.window_rows > 0]
        )
        phase_totals = {phase: 0.0 for phase in PHASES}
        for record in service.runs:
            for phase, seconds in record.phase_seconds.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        points.append(
            {
                "label": f"{len(result.truth.items())}-items-static",
                "n_items": len(result.truth.items()),
                "n_readings": len(result.trace),
                "stream_epochs": HORIZON,
                "runs": int(latencies.size),
                "epochs_per_sec": HORIZON / max(service.total_inference_seconds, 1e-12),
                "latency_p50_seconds": float(np.percentile(latencies, 50)),
                "latency_p95_seconds": float(np.percentile(latencies, 95)),
                "total_inference_seconds": service.total_inference_seconds,
                "phase_seconds": {k: round(v, 6) for k, v in phase_totals.items()},
                "events_emitted": len(service.events),
                "base_rows_reused": service._windows.rows_reused,
                "base_rows_built": service._windows.rows_built,
            }
        )
    return points


def run_federated_sweep(smoke: bool = False) -> tuple[list[dict], dict]:
    """Single-process vs process-sharded federation, same traces.

    Returns the federated points plus the machine/topology entry of the
    largest sharded run (worker wall/CPU seconds and skew).
    """
    points: list[dict] = []
    machine = machine_info()
    for fed in FED_CONFIGS:
        if smoke and not fed["smoke"]:
            continue
        workers = fed["workers"]
        result = simulate(
            SupplyChainParams(
                n_warehouses=fed["sites"],
                horizon=HORIZON,
                items_per_case=fed["items"],
                cases_per_pallet=fed["cases"],
                injection_period=fed["injection"],
                main_read_rate=fed["read_rate"],
                transit_time=fed["transit"],
                warehouse=WarehouseParams(**fed["warehouse"]),
                seed=52,
            )
        )
        n_tags = len(result.truth.tags())
        # A non-overlapping window (interval == history) processes each
        # reading exactly once, which is what keeps the 21k-tag point
        # tractable on a CI-class machine.
        config = ServiceConfig(
            run_interval=300, recent_history=300, truncation="cr", emit_events=False
        )
        cpu0, wall0 = time.process_time(), time.perf_counter()
        single = Cluster(result.traces, config)
        single.run(HORIZON)
        single_cpu = time.process_time() - cpu0
        single_wall = time.perf_counter() - wall0
        # rebalance off: round-robin over a uniform chain is already
        # balanced, and a stable shard map keeps the critical-path
        # metric comparable across baseline regenerations.
        with ProcessTransport(n_workers=workers, rebalance=False) as transport:
            sharded = Cluster(result.traces, config, transport=transport)
            wall0 = time.perf_counter()
            sharded.run(HORIZON)
            fed_wall = time.perf_counter() - wall0
            stats = transport.worker_stats()
            if sharded.containment_error(result.truth) != single.containment_error(
                result.truth
            ):
                raise RuntimeError("sharded run diverged from single-process run")
        critical = max(s["busy_cpu_seconds"] for s in stats)
        n_intervals = HORIZON // config.run_interval
        points.append(
            {
                "label": f"{n_tags}-tags-federated-{workers}w",
                "n_tags": n_tags,
                "n_readings": sum(len(t) for t in result.traces),
                "n_sites": fed["sites"],
                "n_workers": workers,
                "stream_epochs": HORIZON,
                "single_process_cpu_seconds": round(single_cpu, 6),
                "single_process_wall_seconds": round(single_wall, 6),
                "sharded_wall_seconds": round(fed_wall, 6),
                "critical_path_cpu_seconds": round(critical, 6),
                "epochs_per_sec_single": HORIZON / max(single_cpu, 1e-12),
                "epochs_per_sec_critical_path": HORIZON / max(critical, 1e-12),
                "critical_path_speedup": single_cpu / max(critical, 1e-12),
                "worker_cpu_seconds": [
                    round(s["busy_cpu_seconds"], 6) for s in stats
                ],
                "worker_utilization": [
                    round(s["busy_cpu_seconds"] / max(fed_wall, 1e-12), 4)
                    for s in stats
                ],
                "rebalances": transport.ledger.rebalances,
                # The gated latency: wall seconds per inference interval.
                "latency_p50_seconds": fed_wall / n_intervals,
            }
        )
        machine = machine_info(stats)
    return points, machine


def build_payload(smoke: bool) -> dict:
    calibration = calibration_seconds()
    points = run_sweep(smoke)
    fed_points, machine = run_federated_sweep(smoke)
    return {
        "schema_version": 2,
        "bench": "throughput",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "peak_rss_bytes": peak_rss_bytes(),
        "points": points + fed_points,
        "machine": machine,
    }


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Normalized-latency comparison against the committed baseline.

    Returns a list of failure messages (empty = within budget).
    """
    return normalized_latency_failures(
        payload, load_baseline(baseline_path), budget, "latency_p50_seconds"
    )


def emit(payload: dict) -> None:
    static = [p for p in payload["points"] if "epochs_per_sec" in p]
    federated = [p for p in payload["points"] if "critical_path_speedup" in p]
    rows = [
        [
            point["label"],
            point["n_readings"],
            f"{point['epochs_per_sec']:.0f}",
            f"{point['latency_p50_seconds'] * 1000:.1f}ms",
            f"{point['latency_p95_seconds'] * 1000:.1f}ms",
            f"{payload['peak_rss_bytes'] / 1e6:.0f}MB",
        ]
        for point in static
    ]
    emit_table(
        "Throughput (stream epochs per inference second)",
        ["config", "readings", "epochs/s", "p50/run", "p95/run", "peak RSS"],
        rows,
    )
    if not federated:
        return
    fed_rows = [
        [
            point["label"],
            point["n_readings"],
            point["n_workers"],
            f"{point['epochs_per_sec_single']:.0f}",
            f"{point['epochs_per_sec_critical_path']:.0f}",
            f"{point['critical_path_speedup']:.2f}x",
            "/".join(f"{u:.2f}" for u in point["worker_utilization"]),
        ]
        for point in federated
    ]
    emit_table(
        "Federated scale-out (single-process vs sharded OS workers)",
        [
            "config",
            "readings",
            "workers",
            "1-proc epochs/s",
            "critical-path epochs/s",
            "speedup",
            "worker util",
        ],
        fed_rows,
    )


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
    )


def test_throughput(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    payload = benchmark.pedantic(lambda: build_payload(smoke), rounds=1, iterations=1)
    emit(payload)
    # The pytest path writes next to the other bench artifacts; only the
    # standalone CLI (or an explicit override) touches the repo-root
    # baseline, so a smoke run cannot clobber the committed trajectory.
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_throughput.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    output = os.environ.get("BENCH_THROUGHPUT_OUT", default)
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # Shape: per-run latency must stay within a hardware-normalized
    # budget (p50 divided by the fixed numpy calibration workload —
    # ~1.2x at the time of writing, so 15x headroom catches an
    # order-of-magnitude regression on any runner).
    for point in payload["points"]:
        if "epochs_per_sec" not in point:
            continue  # federated points gate through the CLI baseline
        normalized = point["latency_p50_seconds"] / payload["calibration_seconds"]
        assert normalized < 15.0, (
            f"{point['label']}: normalized p50 latency {normalized:.1f}x "
            "the calibration workload"
        )
    # The window cache must actually be reusing rows under CR truncation.
    assert payload["points"][0]["base_rows_reused"] > 0
    # Federated shape: every worker did real inference work, the sharded
    # run matched the single-process run (run_federated_sweep raises on
    # divergence), and parallelism shortened the critical path. The >2x
    # speedup claim is asserted where it is measured — the 4-worker
    # 10.5k-tag point of the full (non-smoke) sweep.
    for point in payload["points"]:
        if "critical_path_speedup" not in point:
            continue
        assert len(point["worker_cpu_seconds"]) == point["n_workers"]
        assert all(cpu > 0 for cpu in point["worker_cpu_seconds"])
        assert point["critical_path_speedup"] > 1.0, point["label"]
        if point["n_workers"] >= 4:
            assert point["critical_path_speedup"] > 2.0, point["label"]


if __name__ == "__main__":
    raise SystemExit(main())
