"""Stream-speed throughput bench — the repo's perf trajectory anchor.

Sweeps item counts through the single-site periodic inference service
(critical-region truncation, events on — the §5.1 configuration) and
records, per configuration:

* **epochs/sec** — stream epochs divided by total inference seconds;
* **per-run latency** p50/p95 and the per-phase breakdown
  (window build / E-step / M-step / evidence / change detection /
  critical regions / events) from ``RunRecord.phase_seconds``;
* **peak RSS** of the process.

Results land in ``BENCH_throughput.json`` at the repo root; the checked
in copy is the committed baseline CI gates against. Because absolute
seconds differ across machines, every run also measures a fixed numpy
``calibration_seconds`` workload and the gate compares *normalized*
latency (p50 / calibration) with a regression budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke \\
        --output BENCH_throughput.ci.json \\
        --baseline BENCH_throughput.json --max-regression 0.25       # CI gate

or through pytest (``python -m pytest benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import json
import os
import resource
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    normalized_latency_failures,
)

from repro.core.service import ServiceConfig, StreamingInference  # noqa: E402
from repro.sim.supplychain import SupplyChainParams, simulate  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: (items/case, cases/pallet) — the first entry is the smoke subset.
ITEM_COUNTS = [(6, 5), (12, 5), (20, 6)]
HORIZON = 1500
PHASES = ["window", "e_step", "m_step", "evidence", "changes", "cr", "events"]


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_sweep(smoke: bool = False) -> list[dict]:
    points: list[dict] = []
    counts = ITEM_COUNTS[:1] if smoke else ITEM_COUNTS
    for items_per_case, cases in counts:
        result = simulate(
            SupplyChainParams(
                horizon=HORIZON,
                items_per_case=items_per_case,
                cases_per_pallet=cases,
                injection_period=200,
                main_read_rate=0.8,
                n_shelves=16,
                seed=52,
            )
        )
        service = StreamingInference(
            result.trace,
            ServiceConfig(
                run_interval=300,
                recent_history=600,
                truncation="cr",
                emit_events=True,
                event_period=5,
            ),
        )
        service.run_until(HORIZON)
        latencies = np.asarray(
            [r.duration_seconds for r in service.runs if r.window_rows > 0]
        )
        phase_totals = {phase: 0.0 for phase in PHASES}
        for record in service.runs:
            for phase, seconds in record.phase_seconds.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        points.append(
            {
                "label": f"{len(result.truth.items())}-items-static",
                "n_items": len(result.truth.items()),
                "n_readings": len(result.trace),
                "stream_epochs": HORIZON,
                "runs": int(latencies.size),
                "epochs_per_sec": HORIZON / max(service.total_inference_seconds, 1e-12),
                "latency_p50_seconds": float(np.percentile(latencies, 50)),
                "latency_p95_seconds": float(np.percentile(latencies, 95)),
                "total_inference_seconds": service.total_inference_seconds,
                "phase_seconds": {k: round(v, 6) for k, v in phase_totals.items()},
                "events_emitted": len(service.events),
                "base_rows_reused": service._windows.rows_reused,
                "base_rows_built": service._windows.rows_built,
            }
        )
    return points


def build_payload(smoke: bool) -> dict:
    calibration = calibration_seconds()
    points = run_sweep(smoke)
    return {
        "schema_version": 1,
        "bench": "throughput",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "peak_rss_bytes": peak_rss_bytes(),
        "points": points,
    }


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Normalized-latency comparison against the committed baseline.

    Returns a list of failure messages (empty = within budget).
    """
    return normalized_latency_failures(
        payload, load_baseline(baseline_path), budget, "latency_p50_seconds"
    )


def emit(payload: dict) -> None:
    rows = [
        [
            point["label"],
            point["n_readings"],
            f"{point['epochs_per_sec']:.0f}",
            f"{point['latency_p50_seconds'] * 1000:.1f}ms",
            f"{point['latency_p95_seconds'] * 1000:.1f}ms",
            f"{payload['peak_rss_bytes'] / 1e6:.0f}MB",
        ]
        for point in payload["points"]
    ]
    emit_table(
        "Throughput (stream epochs per inference second)",
        ["config", "readings", "epochs/s", "p50/run", "p95/run", "peak RSS"],
        rows,
    )


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
    )


def test_throughput(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    payload = benchmark.pedantic(lambda: build_payload(smoke), rounds=1, iterations=1)
    emit(payload)
    # The pytest path writes next to the other bench artifacts; only the
    # standalone CLI (or an explicit override) touches the repo-root
    # baseline, so a smoke run cannot clobber the committed trajectory.
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_throughput.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    output = os.environ.get("BENCH_THROUGHPUT_OUT", default)
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # Shape: per-run latency must stay within a hardware-normalized
    # budget (p50 divided by the fixed numpy calibration workload —
    # ~1.2x at the time of writing, so 15x headroom catches an
    # order-of-magnitude regression on any runner).
    for point in payload["points"]:
        normalized = point["latency_p50_seconds"] / payload["calibration_seconds"]
        assert normalized < 15.0, (
            f"{point['label']}: normalized p50 latency {normalized:.1f}x "
            "the calibration workload"
        )
    # The window cache must actually be reusing rows under CR truncation.
    assert payload["points"][0]["base_rows_reused"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
