"""Figure 5(f) — distributed inference error vs containment-change interval.

Same three-warehouse chain as Fig. 5(e) with anomalies injected at a
varying interval. Expected shape: as in 5(e), None is worst and CR
tracks the centralized method across all change frequencies.
"""

from _common import emit_table, pct

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams

INTERVALS = [30, 60, 120]


def run_sweep():
    config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        change_detection=True,
        change_threshold=80.0,
        emit_events=False,
    )
    rows = []
    for interval in INTERVALS:
        result = simulate(
            SupplyChainParams(
                n_warehouses=3,
                horizon=2400,
                items_per_case=8,
                cases_per_pallet=4,
                injection_period=300,
                main_read_rate=0.8,
                anomaly_interval=interval,
                warehouse=WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=50),
                seed=45,
            )
        )
        cells = [interval]
        for strategy in ("none", "collapsed"):
            deployment = DistributedDeployment(result, config, strategy=strategy)
            deployment.run()
            cells.append(pct(deployment.containment_error()))
        central = CentralizedDeployment(result, config)
        central.run()
        cells.append(pct(central.containment_error()))
        rows.append(cells)
    return rows


def test_fig5f_distributed_changes(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 5(f) distributed error vs change interval",
        ["interval", "None", "CR", "Centralized"],
        rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    for row in rows:
        none_err, cr_err, _ = map(as_float, row[1:])
        assert cr_err <= none_err + 1.0
