"""Figure 6(a) — basic algorithm error vs read rate (full history).

Single inference over a 1500 s trace with all readings (the §C.4 "basic
algorithm" experiment). Expected shape: location error < ~1% at every
read rate; containment error below ~7-8% at RR = 0.6 and falling as RR
rises (co-location evidence scales quadratically with RR).
"""

from _common import emit_table, pct

from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import RFInfer
from repro.metrics.accuracy import containment_error_rate, location_error_rate
from repro.sim.supplychain import SupplyChainParams, simulate

READ_RATES = [0.6, 0.7, 0.8, 0.9, 0.99]


def run_sweep():
    rows = []
    for rr in READ_RATES:
        result = simulate(
            SupplyChainParams(
                horizon=1500,
                items_per_case=20,
                injection_period=180,
                main_read_rate=rr,
                seed=46,
            )
        )
        window = TraceWindow.from_range(result.trace, 0, 1500)
        out = RFInfer(window).run()
        cont = containment_error_rate(result.truth, out.containment, 1499)
        loc = location_error_rate(result.truth, out, 0)
        rows.append([rr, pct(cont), pct(loc)])
    return rows


def test_fig6a_basic_error(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "Figure 6(a) basic algorithm error vs read rate",
        ["RR", "Containment", "Location"],
        rows,
    )
    as_float = lambda s: float(s.rstrip("%"))
    assert as_float(rows[0][1]) <= 10.0  # ≤7% in the paper at RR=0.6
    assert as_float(rows[-1][1]) <= as_float(rows[0][1])
    for row in rows:
        assert as_float(row[2]) <= 1.5  # ~0.5% in the paper
