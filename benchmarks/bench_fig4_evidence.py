"""Figure 4 — point and cumulative evidence of co-location.

Paper setup: an object passes entry door → belt → shelf with three
candidate containers: R (real, always co-located), NRC (door + shelf,
not belt), NRNC (door only). Expected shape: all three track together at
the door; at the belt the false containers' cumulative evidence dives
(the critical region); NRNC keeps falling afterwards while NRC levels
off near R's slope.
"""

from _common import emit_table

from repro.core.evidence import evidence_tracks
from repro.core.likelihood import TraceWindow
from repro.core.rfinfer import InferenceConfig, RFInfer
from repro.workloads.scenarios import evidence_scenario


def run_fig4():
    scenario = evidence_scenario(seed=2)
    window = TraceWindow.from_range(scenario.trace, 0, scenario.horizon)
    result = RFInfer(
        window,
        InferenceConfig(candidate_pruning=False),
        objects=[scenario.object_tag],
        containers=[scenario.real, scenario.nrc, scenario.nrnc],
    ).run()
    return scenario, result


def test_fig4_evidence(benchmark):
    scenario, result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    tracks = evidence_tracks(result, scenario.object_tag)
    cumulative = tracks.cumulative()
    window = result.window
    probes = [40, 60, 80, 100, 120, 140, 160, 180, 200, 240]
    rows = []
    for epoch in probes:
        row = window.row_of(epoch)
        rows.append(
            [
                epoch,
                f"{cumulative[scenario.real][row]:.1f}",
                f"{cumulative[scenario.nrc][row]:.1f}",
                f"{cumulative[scenario.nrnc][row]:.1f}",
            ]
        )
    emit_table(
        "Figure 4(a) cumulative evidence (log)",
        ["t", "R", "NRC", "NRNC"],
        rows,
    )
    point_rows = []
    for epoch in probes:
        row = window.row_of(epoch)
        point_rows.append(
            [
                epoch,
                f"{tracks.point[scenario.real][row]:.2f}",
                f"{tracks.point[scenario.nrc][row]:.2f}",
                f"{tracks.point[scenario.nrnc][row]:.2f}",
            ]
        )
    emit_table(
        "Figure 4(b) point evidence (log)", ["t", "R", "NRC", "NRNC"], point_rows
    )

    # Shape assertions: R dominates; the belt opens the gap; NRNC ends lowest.
    final = {k: v[-1] for k, v in cumulative.items()}
    assert final[scenario.real] > final[scenario.nrc] > final[scenario.nrnc]
    belt_row = window.row_of(120)
    door_row = window.row_of(60)
    gap_at_door = cumulative[scenario.real][door_row] - cumulative[scenario.nrc][door_row]
    gap_at_belt = cumulative[scenario.real][belt_row] - cumulative[scenario.nrc][belt_row]
    assert gap_at_belt > gap_at_door + 50
