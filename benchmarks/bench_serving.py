"""Historical-query serving bench — qps, latency, cache, archive cost.

A two-site cold chain runs to its horizon (inference + Q2 monitoring),
then a :class:`~repro.serving.frontend.QueryFrontend` session issues a
deterministic mix of historical queries — point location/containment
(top-k), trajectories, provenance chains, dwell aggregation, and alert
scans — twice:

* **cold pass** — every query unique, scatter-gathered over the
  transport (per-query latency measures the full envelope round trip);
* **warm pass** — the same queries repeated, served by the frontend's
  epoch-tagged result cache.

Reported per config: cold/warm qps, p50/p95 latency for both passes,
the cache hit rate, and the archive's serialized bytes per stream
epoch. ``BENCH_serving.json`` at the repo root is the committed
baseline; CI runs ``--smoke`` and gates on >25% growth of the
hardware-normalized **cold p95** (see ``_common.calibration_seconds``).
The warm pass must sustain ≥ 1 000 queries/sec (the ROADMAP's
serving-layer floor), asserted by the pytest entry point.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py                 # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \\
        --output BENCH_serving.ci.json \\
        --baseline BENCH_serving.json --max-regression 0.25           # CI gate
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    normalized_latency_failures,
)

from repro.archive import encode_archive  # noqa: E402
from repro.core.service import ServiceConfig  # noqa: E402
from repro.queries.q2 import TemperatureExposureQuery  # noqa: E402
from repro.runtime import Cluster  # noqa: E402
from repro.serving import HistoryRequest, QueryFrontend  # noqa: E402
from repro.workloads.scenarios import cold_chain_scenario  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_serving.json")

HORIZON = 1500
CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
)


def build_cluster():
    scenario = cold_chain_scenario(
        seed=33,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=HORIZON,
        site_leave_time=700,
    )
    cluster = Cluster(scenario.traces, CONFIG)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    frontend = QueryFrontend(cache_capacity=4096)
    cluster.attach_frontend(frontend)
    cluster.run(HORIZON)
    return scenario, cluster, frontend


def query_mix(scenario, smoke: bool) -> list[HistoryRequest]:
    """A deterministic historical-query workload (unique queries)."""
    tags = sorted(scenario.catalog.frozen_items)
    cases = sorted(scenario.catalog.freezer_cases)
    if smoke:
        tags, cases = tags[:8], cases[:2]
    times = list(range(150, HORIZON, 150 if smoke else 75))
    queries: list[HistoryRequest] = []
    for tag in tags + cases:
        for t in times:
            queries.append(HistoryRequest(0, "location", tag, t))
            queries.append(HistoryRequest(0, "containment", tag, t, k=3))
        queries.append(HistoryRequest(0, "trajectory", tag, 0, HORIZON))
        queries.append(HistoryRequest(0, "provenance", tag, HORIZON - 1))
        queries.append(HistoryRequest(0, "dwell", tag, 0, HORIZON))
    queries.append(HistoryRequest(0, "alerts", None, 0, HORIZON, name="q2"))
    return queries


def timed_pass(session, queries) -> tuple[np.ndarray, float]:
    latencies = np.empty(len(queries))
    started = time.perf_counter()
    for index, query in enumerate(queries):
        t0 = time.perf_counter()
        session._run(query)
        latencies[index] = time.perf_counter() - t0
    return latencies, time.perf_counter() - started


def run_bench(smoke: bool) -> dict:
    scenario, cluster, frontend = build_cluster()
    try:
        queries = query_mix(scenario, smoke)
        session = frontend.session("bench")
        cold, cold_elapsed = timed_pass(session, queries)
        warm, warm_elapsed = timed_pass(session, queries)
        archive_bytes = sum(
            len(encode_archive(node.archive)) for node in cluster.nodes
        )
        return {
            "label": "cold-chain-2site",
            "n_queries": len(queries),
            "archive_rows": sum(node.archive.row_count() for node in cluster.nodes),
            "archive_bytes": archive_bytes,
            "archive_bytes_per_epoch": archive_bytes / HORIZON,
            "qps_cold": len(queries) / cold_elapsed,
            "qps_warm": len(queries) / warm_elapsed,
            "latency_p50_cold_seconds": float(np.percentile(cold, 50)),
            "latency_p95_cold_seconds": float(np.percentile(cold, 95)),
            "latency_p50_warm_seconds": float(np.percentile(warm, 50)),
            "latency_p95_warm_seconds": float(np.percentile(warm, 95)),
            "cache_hit_rate": frontend.stats.hit_rate(),
            "serving_bytes": sum(
                count
                for kind, count in cluster.network.bytes_by_kind.items()
                if kind.startswith("history-")
            ),
        }
    finally:
        cluster.close()


def build_payload(smoke: bool) -> dict:
    calibration = calibration_seconds()
    point = run_bench(smoke)
    return {
        "schema_version": 1,
        "bench": "serving",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "points": [point],
    }


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Gate on hardware-normalized cold p95 query latency."""
    return normalized_latency_failures(
        payload, load_baseline(baseline_path), budget, "latency_p95_cold_seconds"
    )


def emit(payload: dict) -> None:
    rows = [
        [
            point["label"],
            point["n_queries"],
            f"{point['qps_cold']:.0f}",
            f"{point['qps_warm']:.0f}",
            f"{point['latency_p95_cold_seconds'] * 1e3:.2f}ms",
            f"{point['latency_p95_warm_seconds'] * 1e6:.0f}us",
            f"{point['cache_hit_rate']:.0%}",
            f"{point['archive_bytes_per_epoch']:.0f}B",
        ]
        for point in payload["points"]
    ]
    emit_table(
        "Historical query serving",
        ["config", "queries", "cold qps", "warm qps", "cold p95", "warm p95",
         "hit rate", "archive B/epoch"],
        rows,
    )


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
        gate_ok="serving gate: within budget",
    )


# -- pytest-benchmark entry point ------------------------------------------


def test_serving(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    payload = benchmark.pedantic(lambda: build_payload(smoke), rounds=1, iterations=1)
    emit(payload)
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_serving.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    output = os.environ.get("BENCH_SERVING_OUT", default)
    from _common import write_json

    write_json(output, payload)
    point = payload["points"][0]
    # The ROADMAP serving floor: a warm cache sustains >= 1k qps.
    assert point["qps_warm"] >= 1000, f"warm qps {point['qps_warm']:.0f} < 1000"
    # The warm pass replays the cold mix, so at least half of all
    # queries hit the cache.
    assert point["cache_hit_rate"] >= 0.45
    # Serving traffic is accounted (and only under its own kinds).
    assert point["serving_bytes"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
