"""Historical-query serving bench — qps, latency, replicas, tenants.

A two-site cold chain runs to its horizon (inference + Q2 monitoring),
then three serving configurations are measured:

* **single frontend** (``cold-chain-2site``) — the original point: a
  :class:`~repro.serving.frontend.QueryFrontend` session issues a
  deterministic mix of historical queries twice (cold pass over the
  transport, warm pass from the epoch-tagged cache);
* **replica sweep** (``replica-sweep-rN``) — the finished archives are
  first **tiled** to a multi-week span (the run's sealed rows replayed
  time-shifted, so serving cost reflects long-lived archives without
  re-running inference), then replicated onto N read-only
  :class:`~repro.serving.replica.ArchiveReplica` services per site,
  each hosted on its own OS worker process
  (:class:`~repro.runtime.process.ProcessTransport`), and a frontend
  with ``read_preference="replica"`` drives a cold batched pass through
  :meth:`~repro.serving.frontend.QueryFrontend.execute_many`. Before
  timing, every replica's archive is asserted **byte-identical** to its
  primary (``encode_archive`` equality) — the bench refuses to report a
  number for a divergent replica.

  Each sweep point reports two throughputs: ``qps_cold`` is the
  end-to-end wall measurement on this host (on a box with fewer cores
  than workers the OS timeshares them and the number cannot scale), and
  ``qps_cold_capacity`` = queries / the busiest replica's **CPU
  seconds** — the rate the replica tier sustains once each replica owns
  a core, measured from the real per-worker service cost
  (``busy_cpu_seconds`` is immune to timesharing). The r2 point records
  ``cold_qps_scaling_vs_1_replica`` (the capacity ratio); a full
  (non-smoke) CLI run fails unless it reaches the >= 1.8x floor, which
  is what the two-choice balanced replica routing buys.
* **tenant mix** (``tenant-mix-zipf``) — a two-frontend
  :class:`~repro.serving.routing.FrontendPool` serves a zipfian
  interactive workload interleaved with background batch audits under a
  :class:`~repro.serving.routing.TenantPolicy` (negative priority +
  quota); reported: interactive tail latency (p95/p99), pool hit rate,
  and how many background queries admission control shed.

``BENCH_serving.json`` at the repo root is the committed baseline; CI
runs ``--smoke`` and gates on >25% growth of the hardware-normalized
**cold p95** for the points that carry it (see
``_common.calibration_seconds``). The warm pass must sustain >= 1 000
queries/sec (the ROADMAP's serving-layer floor), asserted by the pytest
entry point.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py                 # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \\
        --output BENCH_serving.ci.json \\
        --baseline BENCH_serving.json --max-regression 0.25           # CI gate
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    normalized_latency_failures,
)

from repro.archive import encode_archive  # noqa: E402
from repro.core.service import ServiceConfig  # noqa: E402
from repro.queries.q2 import TemperatureExposureQuery  # noqa: E402
from repro.runtime import Cluster  # noqa: E402
from repro.runtime.process import ProcessTransport  # noqa: E402
from repro.runtime.transport import InProcessTransport  # noqa: E402
from repro.serving import (  # noqa: E402
    FRONTEND_SITE,
    ArchivePublisher,
    ArchiveReplica,
    Backpressure,
    FrontendPool,
    HistoryRequest,
    QueryFrontend,
    TenantPolicy,
    replica_site_id,
)
from repro.workloads.scenarios import cold_chain_scenario  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_serving.json")

HORIZON = 1500
CONFIG = ServiceConfig(
    run_interval=300,
    recent_history=600,
    truncation="cr",
    emit_events=True,
    event_period=5,
)

#: replicas per site in the sweep; the last count anchors the scaling
#: floor against the first.
REPLICA_COUNTS = (1, 2)
#: batch size for the sweep's execute_many passes (= the frontend's
#: admission limit, so every batch is admitted atomically).
SWEEP_BATCH = 128
#: full-run floor for cold-qps scaling at 2 replicas vs 1.
SCALING_FLOOR = 1.8


def build_cluster():
    scenario = cold_chain_scenario(
        seed=33,
        n_sites=2,
        n_freezer_cases=6,
        n_room_cases=3,
        items_per_case=6,
        n_exposures=4,
        horizon=HORIZON,
        site_leave_time=700,
    )
    cluster = Cluster(scenario.traces, CONFIG)
    cluster.add_query(
        "q2",
        lambda site: TemperatureExposureQuery(scenario.catalog, exposure_duration=400),
    )
    cluster.set_sensor_streams(
        {site: scenario.sensor_stream(site) for site in range(len(scenario.traces))}
    )
    frontend = QueryFrontend(cache_capacity=4096)
    cluster.attach_frontend(frontend)
    cluster.run(HORIZON)
    return scenario, cluster, frontend


def query_mix(scenario, smoke: bool) -> list[HistoryRequest]:
    """A deterministic historical-query workload (unique queries)."""
    tags = sorted(scenario.catalog.frozen_items)
    cases = sorted(scenario.catalog.freezer_cases)
    if smoke:
        tags, cases = tags[:8], cases[:2]
    times = list(range(150, HORIZON, 150 if smoke else 75))
    queries: list[HistoryRequest] = []
    for tag in tags + cases:
        for t in times:
            queries.append(HistoryRequest(0, "location", tag, t))
            queries.append(HistoryRequest(0, "containment", tag, t, k=3))
        queries.append(HistoryRequest(0, "trajectory", tag, 0, HORIZON))
        queries.append(HistoryRequest(0, "provenance", tag, HORIZON - 1))
        queries.append(HistoryRequest(0, "dwell", tag, 0, HORIZON))
    queries.append(HistoryRequest(0, "alerts", None, 0, HORIZON, name="q2"))
    return queries


def timed_pass(session, queries) -> tuple[np.ndarray, float]:
    latencies = np.empty(len(queries))
    started = time.perf_counter()
    for index, query in enumerate(queries):
        t0 = time.perf_counter()
        session._run(query)
        latencies[index] = time.perf_counter() - t0
    return latencies, time.perf_counter() - started


def run_main_point(scenario, cluster, frontend, smoke: bool) -> dict:
    queries = query_mix(scenario, smoke)
    session = frontend.session("bench")
    cold, cold_elapsed = timed_pass(session, queries)
    warm, warm_elapsed = timed_pass(session, queries)
    archive_bytes = sum(
        len(encode_archive(node.archive)) for node in cluster.nodes
    )
    return {
        "label": "cold-chain-2site",
        "n_queries": len(queries),
        "archive_rows": sum(node.archive.row_count() for node in cluster.nodes),
        "archive_bytes": archive_bytes,
        "archive_bytes_per_epoch": archive_bytes / HORIZON,
        "qps_cold": len(queries) / cold_elapsed,
        "qps_warm": len(queries) / warm_elapsed,
        "latency_p50_cold_seconds": float(np.percentile(cold, 50)),
        "latency_p95_cold_seconds": float(np.percentile(cold, 95)),
        "latency_p50_warm_seconds": float(np.percentile(warm, 50)),
        "latency_p95_warm_seconds": float(np.percentile(warm, 95)),
        "cache_hit_rate": frontend.stats.hit_rate(),
        "serving_bytes": sum(
            count
            for kind, count in cluster.network.bytes_by_kind.items()
            if kind.startswith("history-")
        ),
    }


# -- replica sweep ----------------------------------------------------------

#: tiles (time-shifted replays) per sweep archive: full runs serve a
#: ~12k-epoch archive per site, smoke keeps CI cheap.
SWEEP_TILES = {False: 8, True: 2}


def tiled_archive(source, tiles: int, period: int):
    """``source``'s rows replayed ``tiles`` times, shifted by ``period``.

    Synthesizes the long-lived archive the replica tier exists for from
    one run's inference output: sealed interval/event/alert rows are
    appended per tile with shifted epochs (open intervals close at the
    next tile's start, except in the last tile, which stays open), so
    per-query scan cost grows with the tile count while every answer
    stays self-consistent.
    """
    from repro.archive.store import SiteArchive

    source.seal()
    big = SiteArchive(source.site, seal_every=source.seal_every, top_k=source.top_k)
    for tag in source.tag_table:
        big.intern_tag(tag)
    for key in source.key_table:
        big.intern_key(key)
    last = tiles - 1
    for tile in range(tiles):
        shift = tile * period
        for name in ("location", "containment", "belief"):
            src, dst = getattr(source, name), getattr(big, name)
            for tag, rank, start, end, value, post in src._sealed_rows():
                dst.pending.append((tag, rank, start + shift, end + shift, value, post))
            for tag, rank, start, end, value, post in src.pending:
                dst.pending.append((tag, rank, start + shift, end + shift, value, post))
            for tag, (start, state) in sorted(src.open.items()):
                if tile == last:
                    dst.open[tag] = (start + shift, state)
                else:
                    for rank, (value, post) in enumerate(state):
                        dst.pending.append(
                            (tag, rank, start + shift, shift + period, value, post)
                        )
            dst.seal()
        for t, tag, place, container in source.events.rows():
            big.events.append(t + shift, tag, place, container)
            if t + shift > big.last_event.get(tag, -1):
                big.last_event[tag] = t + shift
        for name_id, key_id, start, end, values in source.alerts.rows():
            big.alerts.append(name_id, key_id, start + shift, end + shift, values)
    big.seal()
    big.last_boundary = source.last_boundary + last * period
    big.alert_cursors = dict(source.alert_cursors)
    return big


def sweep_mix(scenario, smoke: bool, span: int) -> list[HistoryRequest]:
    """The sweep's cold workload: archive-scan-heavy, all unique,
    probing the whole tiled ``span``."""
    tags = sorted(scenario.catalog.frozen_items)
    cases = sorted(scenario.catalog.freezer_cases)
    if smoke:
        tags, cases = tags[:6], cases[:2]
    step = span // (4 if smoke else 16)
    times = list(range(100, span, step))
    queries: list[HistoryRequest] = []
    for tag in tags + cases:
        for t in times:
            queries.append(HistoryRequest(0, "location", tag, t, k=3))
        queries.append(HistoryRequest(0, "trajectory", tag, 0, span))
        queries.append(HistoryRequest(0, "dwell", tag, 0, span))
    # Deterministic shuffle: the per-tag emission order above is
    # periodic, which would let two-choice routing's strict alternation
    # park every expensive range query on the same endpoint.
    order = np.random.default_rng(11).permutation(len(queries))
    return [queries[i] for i in order]


#: measured passes per sweep configuration (best-of; the first pass is
#: also each worker's warm-up).
SWEEP_PASSES = 3


class _ReplicaTier:
    """One sweep configuration: ``n_replicas`` replicas per site, each
    hosted on its own OS worker, caught up and verified byte-identical."""

    def __init__(self, archives, n_replicas: int) -> None:
        self.n_replicas = n_replicas
        self.archives = archives
        self.sites = [archive.site for archive in archives]
        # Replica index r of every site lands on worker r, so adding a
        # replica adds a worker and the per-tag ring splits each site's
        # read load across all of them.
        shard_map = {
            replica_site_id(site, r, len(self.sites)): r
            for r in range(n_replicas)
            for site in self.sites
        }
        self.transport = ProcessTransport(
            n_workers=n_replicas, shard_map=shard_map, rebalance=False
        )
        for archive in archives:
            ArchivePublisher(archive).bind(self.transport)
        self.replica_map: dict[int, list[int]] = {site: [] for site in self.sites}
        self.replicas: list[ArchiveReplica] = []
        for r in range(n_replicas):
            for archive in archives:
                rid = replica_site_id(archive.site, r, len(self.sites))
                replica = ArchiveReplica(archive.site, rid)
                replica.bind(self.transport)
                self.transport.host_site(rid, replica.ops())
                self.replica_map[archive.site].append(rid)
                self.replicas.append(replica)
        self._frontends = 0
        self.best_qps = 0.0
        self.best_capacity = 0.0
        self.worker_cpu: list[float] = []

    def catch_up(self) -> None:
        """Fork the workers, drive pull-based catch-up, verify identity."""
        transport = self.transport
        started = time.perf_counter()
        self.catchup_rounds = 0
        while True:
            for replica in self.replicas:
                transport.site_cast(replica.site_id, "request_catchup")
            transport.flush()
            self.catchup_rounds += 1
            if all(
                transport.site_call(replica.site_id, "caught_up")
                for replica in self.replicas
            ):
                break
            if self.catchup_rounds >= 8:
                raise RuntimeError("replicas failed to catch up in 8 rounds")
        self.catchup_seconds = time.perf_counter() - started
        primary_bytes = {
            archive.site: encode_archive(archive) for archive in self.archives
        }
        for replica in self.replicas:
            blob = transport.site_call(replica.site_id, "archive_bytes")
            if blob != primary_bytes[replica.primary]:
                raise RuntimeError(
                    f"replica {replica.site_id} diverged from primary "
                    f"{replica.primary}: {len(blob)} vs "
                    f"{len(primary_bytes[replica.primary])} bytes"
                )

    def run_pass(self, queries) -> None:
        """One cache-cold batched pass; keeps the best qps/capacity.

        A fresh frontend per pass keeps every pass a true cold one; the
        per-worker CPU seconds are measured around the pass so the
        capacity number only counts serving work.
        """
        transport = self.transport
        self._frontends += 1
        frontend = QueryFrontend(
            max_in_flight=SWEEP_BATCH,
            cache_capacity=4096,
            site_id=FRONTEND_SITE - 8 * self.n_replicas - self._frontends,
        )
        frontend.bind(
            transport, self.sites, replicas=self.replica_map,
            read_preference="replica",
        )
        for archive in self.archives:
            frontend.note_append(archive.site, archive.last_boundary)
        cpu_base = {
            stat["worker"]: stat["busy_cpu_seconds"]
            for stat in transport.worker_stats()
        }
        started = time.perf_counter()
        for i in range(0, len(queries), SWEEP_BATCH):
            frontend.execute_many(queries[i : i + SWEEP_BATCH])
        elapsed = time.perf_counter() - started
        pass_cpu = [
            stat["busy_cpu_seconds"] - cpu_base[stat["worker"]]
            for stat in transport.worker_stats()
        ]
        self.best_qps = max(self.best_qps, len(queries) / elapsed)
        capacity = len(queries) / max(pass_cpu)
        if capacity > self.best_capacity:
            self.best_capacity, self.worker_cpu = capacity, pass_cpu

    def point(self, queries) -> dict:
        return {
            "label": f"replica-sweep-r{self.n_replicas}",
            "n_replicas": self.n_replicas,
            "n_queries": len(queries),
            "archive_rows": sum(a.row_count() for a in self.archives),
            "qps_cold": self.best_qps,
            # The tier's service capacity: queries over the busiest
            # replica's CPU seconds — what the wall rate becomes once
            # each replica worker owns a core (CPU time is immune to
            # this host timesharing fewer cores than workers).
            "qps_cold_capacity": self.best_capacity,
            "worker_cpu_seconds": self.worker_cpu,
            "catchup_rounds": self.catchup_rounds,
            "catchup_seconds": self.catchup_seconds,
            "replication_bytes": sum(
                count
                for kind, count in self.transport.ledger.bytes_by_kind.items()
                if kind.startswith("replica-")
            ),
            "replica_identical": True,
        }


def run_replica_sweep(scenario, archives, smoke: bool) -> tuple[list[dict], float]:
    tiles = SWEEP_TILES[smoke]
    span = tiles * HORIZON
    tiled = [tiled_archive(archive, tiles, HORIZON) for archive in archives]
    queries = sweep_mix(scenario, smoke, span)
    tiers = [_ReplicaTier(tiled, n_replicas) for n_replicas in REPLICA_COUNTS]
    try:
        for tier in tiers:
            tier.catch_up()
        # Interleave the configurations' passes so environment drift
        # (frequency scaling, a noisy neighbour) hits them all equally
        # instead of skewing the scaling ratio.
        for _ in range(SWEEP_PASSES):
            for tier in tiers:
                tier.run_pass(queries)
        points = [tier.point(queries) for tier in tiers]
    finally:
        for tier in tiers:
            tier.transport.close()
    for point in points:
        point["archive_tiles"] = tiles
    scaling = points[-1]["qps_cold_capacity"] / points[0]["qps_cold_capacity"]
    points[-1]["cold_qps_scaling_vs_1_replica"] = scaling
    return points, scaling


# -- tenant mix -------------------------------------------------------------


def run_tenant_point(scenario, archives, smoke: bool) -> dict:
    """Zipfian interactive traffic + background batch audits on a pool."""
    transport = InProcessTransport()
    for archive in archives:
        ArchivePublisher(archive).bind(transport)
    pool = FrontendPool(size=2, max_in_flight=64, cache_capacity=4096)
    pool.bind(transport, [archive.site for archive in archives])
    for archive in archives:
        pool.note_append(archive.site, archive.last_boundary)
    pool.set_tenant_policy("batch", TenantPolicy(quota=16, priority=-1))

    tags = sorted(scenario.catalog.frozen_items) + sorted(
        scenario.catalog.freezer_cases
    )
    rng = np.random.default_rng(7)
    n_interactive = 400 if smoke else 2000
    picks = (rng.zipf(1.3, size=n_interactive) - 1) % len(tags)
    times = list(range(100, HORIZON, 200))

    session = pool.session("interactive", tenant="interactive")
    background = sweep_mix(scenario, smoke, HORIZON)
    latencies = np.empty(n_interactive)
    shed = served_background = 0
    started = time.perf_counter()
    for index, pick in enumerate(picks):
        tag = tags[pick]
        t = times[index % len(times)]
        t0 = time.perf_counter()
        if index % 2:
            session.location(tag, t, k=3)
        else:
            session.containment(tag, t, k=3)
        latencies[index] = time.perf_counter() - t0
        if index % 50 == 25:
            # A background audit burst: every 4th one deliberately
            # exceeds the tenant's quota and is shed atomically.
            size = 24 if (index // 50) % 4 == 3 else 12
            offset = (index * 7) % max(1, len(background) - size)
            batch = background[offset : offset + size]
            try:
                pool.execute_many(batch, tenant="batch")
                served_background += len(batch)
            except Backpressure:
                shed += len(batch)
    elapsed = time.perf_counter() - started
    stats = pool.stats()
    return {
        "label": "tenant-mix-zipf",
        "n_queries": n_interactive + served_background,
        "qps": (n_interactive + served_background) / elapsed,
        "latency_p50_interactive_seconds": float(np.percentile(latencies, 50)),
        "latency_p95_interactive_seconds": float(np.percentile(latencies, 95)),
        "latency_p99_interactive_seconds": float(np.percentile(latencies, 99)),
        "cache_hit_rate": stats.hit_rate(),
        "background_served": served_background,
        "background_rejected": stats.rejected,
        "background_shed": shed,
    }


# -- payload / gate ---------------------------------------------------------


def build_payload(smoke: bool, require_scaling: bool = False) -> dict:
    calibration = calibration_seconds()
    scenario, cluster, frontend = build_cluster()
    try:
        points = [run_main_point(scenario, cluster, frontend, smoke)]
        archives = [node.archive for node in cluster.nodes]
        sweep_points, scaling = run_replica_sweep(scenario, archives, smoke)
        points.extend(sweep_points)
        points.append(run_tenant_point(scenario, archives, smoke))
    finally:
        cluster.close()
    if require_scaling and scaling < SCALING_FLOOR:
        raise SystemExit(
            f"cold-qps replica scaling {scaling:.2f}x < {SCALING_FLOOR}x floor"
        )
    return {
        "schema_version": 2,
        "bench": "serving",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "cold_qps_scaling_2_replicas": scaling,
        "points": points,
    }


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Gate on hardware-normalized cold p95 query latency.

    Only points that measure per-query latency carry the metric (the
    replica sweep and tenant mix report throughput/tail aggregates);
    the others are excluded rather than tripping a KeyError.
    """
    metric = "latency_p95_cold_seconds"
    gated = dict(payload, points=[p for p in payload["points"] if metric in p])
    return normalized_latency_failures(gated, load_baseline(baseline_path), budget, metric)


def emit(payload: dict) -> None:
    rows = []
    for point in payload["points"]:
        qps_cold = point.get("qps_cold", point.get("qps"))
        scaling = point.get("cold_qps_scaling_vs_1_replica")
        p95 = point.get(
            "latency_p95_cold_seconds", point.get("latency_p95_interactive_seconds")
        )
        rows.append(
            [
                point["label"],
                point["n_queries"],
                f"{qps_cold:.0f}",
                f"{point['qps_warm']:.0f}" if "qps_warm" in point else "-",
                f"{p95 * 1e3:.2f}ms" if p95 is not None else "-",
                f"{scaling:.2f}x" if scaling is not None else "-",
                f"{point['cache_hit_rate']:.0%}" if "cache_hit_rate" in point else "-",
            ]
        )
    emit_table(
        "Historical query serving",
        ["config", "queries", "cold qps", "warm qps", "p95", "scaling", "hit rate"],
        rows,
    )


def _build_and_emit(smoke: bool, require_scaling: bool = False) -> dict:
    payload = build_payload(smoke, require_scaling)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        # A full CLI run (the one that mints the committed baseline)
        # enforces the replica-scaling floor; smoke runs on shared CI
        # runners only verify byte-identity and the latency gate.
        build_payload=lambda smoke: _build_and_emit(smoke, require_scaling=not smoke),
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
        gate_ok="serving gate: within budget",
    )


# -- pytest-benchmark entry point ------------------------------------------


def test_serving(benchmark):
    smoke = os.environ.get("BENCH_SMOKE") == "1"
    payload = benchmark.pedantic(lambda: build_payload(smoke), rounds=1, iterations=1)
    emit(payload)
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_serving.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    output = os.environ.get("BENCH_SERVING_OUT", default)
    from _common import write_json

    write_json(output, payload)
    by_label = {point["label"]: point for point in payload["points"]}
    point = by_label["cold-chain-2site"]
    # The ROADMAP serving floor: a warm cache sustains >= 1k qps.
    assert point["qps_warm"] >= 1000, f"warm qps {point['qps_warm']:.0f} < 1000"
    # The warm pass replays the cold mix, so at least half of all
    # queries hit the cache.
    assert point["cache_hit_rate"] >= 0.45
    # Serving traffic is accounted (and only under its own kinds).
    assert point["serving_bytes"] > 0
    # Every sweep replica proved byte-identical before serving reads.
    for n_replicas in REPLICA_COUNTS:
        sweep = by_label[f"replica-sweep-r{n_replicas}"]
        assert sweep["replica_identical"]
        assert sweep["replication_bytes"] > 0
    # Background audits beyond the tenant quota were shed, not served.
    tenants = by_label["tenant-mix-zipf"]
    assert tenants["background_shed"] > 0
    assert tenants["background_rejected"] >= tenants["background_shed"]


if __name__ == "__main__":
    raise SystemExit(main())
