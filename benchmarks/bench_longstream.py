"""Long-stream bench — the stability gate's headline numbers.

Streams a **stable-heavy** cold chain (a handful of early exposures,
then thousands of epochs of shelf-stable items — the regime the
paper's deployments live in) through the single-site service at 1x and
10x stream length, gated and ungated, and records per point:

* **epochs/sec** — stream epochs over total inference seconds;
* **service-state RSS delta** — peak RSS minus the RSS right after the
  trace was built, i.e. the memory the *service* accrued. The trace
  itself grows linearly with stream length by construction, so peak
  RSS alone cannot show whether inference state is bounded; the delta
  can.
* the stability gate's skip split (pruned vs full tags, cumulative)
  and the retained run/event counts under the memory budget.

Every point runs in its own forked child process so RSS measurements
do not contaminate each other. Both configs run identical change
detection with an explicit threshold (no calibration divergence).

Two structural gates hard-fail the bench (no baseline needed):

* **pruning speedup** — gated epochs/s at 10x length must be >=
  ``MIN_SPEEDUP`` x the ungated rate (the committed baseline records
  ~2.3x; the gate floor leaves margin for runner noise);
* **flat RSS** — the gated service-state delta at 10x length must stay
  within ``MAX_RSS_RATIO`` of the 1x delta. The ungated points, kept
  for contrast, grow their run/event history linearly.

Results land in ``BENCH_longstream.json``; the committed copy is the
baseline CI gates against with the usual hardware-normalized latency
budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_longstream.py             # full sweep
    PYTHONPATH=src python benchmarks/bench_longstream.py --smoke \\
        --output BENCH_longstream.ci.json \\
        --baseline BENCH_longstream.json --max-regression 0.25      # CI gate

or through pytest (``python -m pytest benchmarks/bench_longstream.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import (  # noqa: E402
    bench_cli,
    calibration_seconds,
    emit_table,
    load_baseline,
    normalized_latency_failures,
)

from repro.core.online import MemoryBudget, OnlineConfig  # noqa: E402
from repro.core.service import ServiceConfig, StreamingInference  # noqa: E402
from repro.sim.tags import TagKind  # noqa: E402
from repro.workloads.scenarios import cold_chain_scenario  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_longstream.json")

BASE_LENGTH = 1500
LONG_FACTOR = 10
#: the stable-heavy deployment: 16 cases x 12 items, four exposures in
#: the first ~450 epochs, stable shelf-sitting for the rest.
SCENARIO = dict(
    seed=52, n_sites=1, n_freezer_cases=8, n_room_cases=8, items_per_case=12
)
#: gated epochs/s over ungated at 10x length; the committed baseline
#: records ~2.3x, the floor leaves runner-noise margin.
MIN_SPEEDUP = 1.8
#: gated service-state RSS delta at 10x over 1x (the flat-RSS claim).
MAX_RSS_RATIO = 1.15
#: deltas below this are allocator noise, not inference state.
RSS_FLOOR_BYTES = 4_000_000


def _service_config(gated: bool) -> ServiceConfig:
    return ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=10,
        change_detection=True,
        change_threshold=80.0,
        online=OnlineConfig() if gated else None,
        budget=MemoryBudget(horizon=2400) if gated else None,
    )


def _rss_field(field: str) -> int:
    """Current (`VmRSS`) or peak (`VmHWM`) RSS in bytes, via /proc."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _measure_point(length: int, gated: bool, conn) -> None:
    """Child-process body: build, stream, measure, report."""
    scenario = cold_chain_scenario(horizon=length, **SCENARIO)
    service = StreamingInference(scenario.trace, _service_config(gated))
    rss_after_build = _rss_field("VmRSS")
    durations: list[float] = []
    pruned = full = 0
    boundary = service.config.run_interval
    while boundary <= length:
        record = service.run_at(boundary)
        durations.append(record.duration_seconds)
        pruned += record.pruned_tags
        full += record.full_tags
        service.truncate_history()
        boundary = service.last_run_time + service.config.run_interval
    peak_rss = _rss_field("VmHWM")
    latencies = np.asarray(durations)
    conn.send(
        {
            "label": f"{'gated' if gated else 'ungated'}-{length}",
            "gated": gated,
            "stream_epochs": length,
            "n_items": sum(
                1 for t in scenario.trace.tag_table if t.kind is TagKind.ITEM
            ),
            "n_readings": len(scenario.trace),
            "runs": len(durations),
            "total_inference_seconds": service.total_inference_seconds,
            "epochs_per_sec": length / max(service.total_inference_seconds, 1e-12),
            "latency_p50_seconds": float(np.percentile(latencies, 50)),
            "latency_p95_seconds": float(np.percentile(latencies, 95)),
            "pruned_tags": pruned,
            "full_tags": full,
            "runs_retained": len(service.runs),
            "events_retained": len(service.events),
            "events_truncated": service.events_truncated,
            "base_rows_evicted": service._windows.rows_evicted,
            "rss_after_build_bytes": rss_after_build,
            "peak_rss_bytes": peak_rss,
            "service_rss_delta_bytes": max(peak_rss - rss_after_build, 0),
        }
    )
    conn.close()


def run_point(length: int, gated: bool) -> dict:
    """Run one (length, config) point in a fresh forked process."""
    parent, child = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(target=_measure_point, args=(length, gated, child))
    proc.start()
    child.close()
    point = parent.recv()
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"bench child for {point['label']} exited {proc.exitcode}")
    return point


def build_payload(smoke: bool) -> dict:
    # The sweep is already CI-sized (four child runs, ~15s total), so
    # smoke and full runs measure the same points.
    calibration = calibration_seconds()
    long_length = BASE_LENGTH * LONG_FACTOR
    points = [
        run_point(BASE_LENGTH, gated=False),
        run_point(BASE_LENGTH, gated=True),
        run_point(long_length, gated=False),
        run_point(long_length, gated=True),
    ]
    by_label = {p["label"]: p for p in points}
    gated_1x = by_label[f"gated-{BASE_LENGTH}"]
    gated_10x = by_label[f"gated-{long_length}"]
    ungated_10x = by_label[f"ungated-{long_length}"]
    speedup = gated_10x["epochs_per_sec"] / ungated_10x["epochs_per_sec"]
    rss_ratio = max(gated_10x["service_rss_delta_bytes"], RSS_FLOOR_BYTES) / max(
        gated_1x["service_rss_delta_bytes"], RSS_FLOOR_BYTES
    )
    payload = {
        "schema_version": 1,
        "bench": "longstream",
        "smoke": smoke,
        "calibration_seconds": calibration,
        "points": points,
        "pruning_speedup_10x": round(speedup, 4),
        "service_rss_ratio_10x": round(rss_ratio, 4),
    }
    failures = structural_failures(payload)
    if failures:
        raise RuntimeError("; ".join(failures))
    return payload


def structural_failures(payload: dict) -> list[str]:
    """The baseline-free gates: pruning speedup and flat RSS."""
    failures = []
    if payload["pruning_speedup_10x"] < MIN_SPEEDUP:
        failures.append(
            f"pruning speedup {payload['pruning_speedup_10x']:.2f}x "
            f"below the {MIN_SPEEDUP}x floor"
        )
    if payload["service_rss_ratio_10x"] > MAX_RSS_RATIO:
        failures.append(
            f"gated service RSS grew {payload['service_rss_ratio_10x']:.2f}x "
            f"at 10x stream length (cap {MAX_RSS_RATIO}x)"
        )
    gated_points = [p for p in payload["points"] if p["gated"]]
    for point in gated_points:
        if point["pruned_tags"] == 0:
            failures.append(f"{point['label']}: the stability gate never pruned")
    return failures


def check_regression(payload: dict, baseline_path: str, budget: float) -> list[str]:
    """Structural gates plus the normalized-latency baseline comparison."""
    failures = structural_failures(payload)
    failures += normalized_latency_failures(
        payload, load_baseline(baseline_path), budget, "latency_p50_seconds"
    )
    return failures


def emit(payload: dict) -> None:
    rows = [
        [
            point["label"],
            point["stream_epochs"],
            point["runs"],
            f"{point['epochs_per_sec']:.0f}",
            f"{point['pruned_tags']}/{point['pruned_tags'] + point['full_tags']}",
            point["events_retained"],
            f"{point['service_rss_delta_bytes'] / 1e6:.1f}MB",
        ]
        for point in payload["points"]
    ]
    emit_table(
        "Long-stream (stable-heavy, gated vs ungated)",
        ["config", "epochs", "runs", "epochs/s", "pruned/total", "events kept", "svc RSS"],
        rows,
    )
    sys.__stdout__.write(
        f"pruning speedup at 10x: {payload['pruning_speedup_10x']:.2f}x, "
        f"gated RSS ratio 10x/1x: {payload['service_rss_ratio_10x']:.2f}\n"
    )
    sys.__stdout__.flush()


def _build_and_emit(smoke: bool) -> dict:
    payload = build_payload(smoke)
    emit(payload)
    return payload


def main(argv: list[str] | None = None) -> int:
    return bench_cli(
        argv,
        doc=__doc__,
        build_payload=_build_and_emit,
        check=check_regression,
        default_output=DEFAULT_OUTPUT,
    )


def test_longstream(benchmark):
    payload = benchmark.pedantic(lambda: build_payload(True), rounds=1, iterations=1)
    emit(payload)
    default = os.path.join(os.path.dirname(__file__), "results", "BENCH_longstream.json")
    os.makedirs(os.path.dirname(default), exist_ok=True)
    with open(os.environ.get("BENCH_LONGSTREAM_OUT", default), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # build_payload already hard-fails on the structural gates; assert
    # the headline shapes explicitly so the pytest path reports them.
    assert payload["pruning_speedup_10x"] >= MIN_SPEEDUP
    assert payload["service_rss_ratio_10x"] <= MAX_RSS_RATIO
    # The memory budget must actually be truncating at 10x length.
    gated_10x = [p for p in payload["points"] if p["gated"]][-1]
    assert gated_10x["events_truncated"] > 0
    assert gated_10x["runs_retained"] < gated_10x["runs"]


if __name__ == "__main__":
    raise SystemExit(main())
