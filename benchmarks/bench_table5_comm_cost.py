"""Table 5 — communication cost: Centralized vs None vs CR migration.

Expected shape: None ships nothing; CR ships collapsed weights only
(tens of bytes per migration); the centralized approach ships every raw
reading (gzip-compressed) and costs orders of magnitude more. The gap
widens with trace volume — the paper's 4-hour, 0.32 M-item run shows
~3 orders of magnitude; this scaled run shows the same ordering with a
smaller ratio, plus the per-reading/per-migration unit costs that the
extrapolation rests on.

Two extensions over the bare table:

* **Migration bundling delta** — the runtime batches migrations into
  one centroid-compressed bundle per ``(src, dst)`` pair per interval
  (§4.2) instead of one message per object. With the path-tracking
  query registered (so per-object query state migrates too), the sweep
  reports migrated ``inference-state + query-state`` bytes for the
  per-tag baseline vs the batched runtime and prints the saving.
* **Per-link breakdown** — the transport ledger's ``(src, dst)``
  counters, printed for the highest read rate.
* **Fault overhead** — the same federated run over a seeded
  :class:`~repro.runtime.faults.FaultyTransport`: per-kind data bytes
  are byte-identical to the reliable run (the at-least-once layer's
  invariant) and the cost of surviving the lossy network shows up as
  its own ``retransmit``/``ack`` ledger kinds.

``BENCH_HORIZON`` (env) shrinks the trace for CI smoke runs.
"""

import os

from _common import emit_table

from repro.core.service import ServiceConfig
from repro.distributed.centralized import CentralizedDeployment
from repro.distributed.coordinator import DistributedDeployment
from repro.distributed.network import FAULT_OVERHEAD_KINDS
from repro.queries.tracking import PathDeviationQuery
from repro.runtime import Cluster, FaultPlan, FaultyTransport, ProcessTransport
from repro.sim.supplychain import SupplyChainParams, simulate
from repro.sim.warehouse import WarehouseParams

READ_RATES = [0.6, 0.7, 0.8, 0.9]
HORIZON = int(os.environ.get("BENCH_HORIZON", "2400"))
MIGRATED_KINDS = ("inference-state", "query-state")
CHAOS_SEED = 17


def make_chain(rr: float):
    return simulate(
        SupplyChainParams(
            n_warehouses=3,
            horizon=HORIZON,
            items_per_case=8,
            cases_per_pallet=4,
            injection_period=300,
            main_read_rate=rr,
            warehouse=WarehouseParams(shelf_dwell_mean=400, shelf_dwell_jitter=50),
            seed=50,
        )
    )


def run_federated(result, config, batch: bool, transport=None):
    """A cluster with the tracking query registered, batched or per-tag."""
    routes = {tag: (0, 1, 2) for tag in result.truth.tags()}
    cluster = Cluster(result.traces, config, batch_migrations=batch, transport=transport)
    cluster.add_query("path", lambda site: PathDeviationQuery(routes))
    cluster.run(HORIZON)
    migrated = sum(cluster.network.bytes_by_kind[k] for k in MIGRATED_KINDS)
    return cluster, migrated


def run_sweep():
    config = ServiceConfig(
        run_interval=300, recent_history=600, truncation="cr", emit_events=False
    )
    query_config = ServiceConfig(
        run_interval=300,
        recent_history=600,
        truncation="cr",
        emit_events=True,
        event_period=60,
    )
    rows = []
    bundling_rows = []
    link_rows = []
    for rr in READ_RATES:
        result = make_chain(rr)
        central = CentralizedDeployment(result, config)
        central.run(HORIZON)
        none_dep = DistributedDeployment(result, config, strategy="none")
        none_dep.run(HORIZON)
        cr_dep = DistributedDeployment(result, config, strategy="collapsed")
        cr_dep.run(HORIZON)
        rows.append(
            [
                rr,
                f"{central.communication_bytes():,}",
                f"{none_dep.communication_bytes():,}",
                f"{cr_dep.communication_bytes():,}",
                f"{central.communication_bytes() / max(cr_dep.communication_bytes(), 1):.1f}x",
            ]
        )
        per_tag_cluster, per_tag_bytes = run_federated(result, query_config, batch=False)
        batched_cluster, batched_bytes = run_federated(result, query_config, batch=True)
        saved = per_tag_bytes - batched_bytes
        bundling_rows.append(
            [
                rr,
                f"{per_tag_bytes:,}",
                f"{batched_bytes:,}",
                f"{saved:,}",
                f"{100.0 * saved / max(per_tag_bytes, 1):.1f}%",
                batched_cluster.containment_error(result.truth)
                == per_tag_cluster.containment_error(result.truth),
            ]
        )
        if rr == READ_RATES[-1]:
            link_rows = [
                [f"{src} -> {dst}", msgs, f"{nbytes:,}"]
                for src, dst, msgs, nbytes in batched_cluster.network.per_link_rows()
            ]
            fault_rows = fault_overhead_rows(result, query_config, batched_cluster)
            worker_rows = sharded_worker_rows(result, query_config, batched_cluster)
    return rows, bundling_rows, link_rows, fault_rows, worker_rows


def fault_overhead_rows(result, config, reliable_cluster):
    """Table 5d: the reliable run vs the same run over a chaos plan."""
    faulty_cluster, _ = run_federated(
        result,
        config,
        batch=True,
        transport=FaultyTransport(FaultPlan.chaos(CHAOS_SEED)),
    )
    reliable = reliable_cluster.network
    faulty = faulty_cluster.network
    kinds = sorted(set(reliable.bytes_by_kind) | set(faulty.bytes_by_kind))
    rows = [
        [
            kind,
            f"{reliable.bytes_by_kind[kind]:,}",
            f"{faulty.bytes_by_kind[kind]:,}",
            "overhead" if kind in FAULT_OVERHEAD_KINDS else "data",
        ]
        for kind in kinds
    ]
    rows.append(
        [
            "total",
            f"{reliable.total_bytes():,}",
            f"{faulty.total_bytes():,}",
            f"+{faulty.fault_overhead_bytes():,} fault overhead",
        ]
    )
    assert faulty.data_bytes_by_kind() == reliable.data_bytes_by_kind()
    assert faulty.bytes_by_kind["retransmit"] > 0
    assert faulty_cluster.containment_error(
        result.truth
    ) == reliable_cluster.containment_error(result.truth)
    return rows


def sharded_worker_rows(result, config, reliable_cluster):
    """Table 5e: the same run sharded across OS worker processes.

    Per-kind bytes must match the in-process run exactly (zero-copy
    handoff through the same codecs); the new rows are the ledger's
    per-worker shard gauges — sites hosted, bytes delivered into and
    originated out of each worker — plus the rebalance count.
    """
    with ProcessTransport(n_workers=2) as transport:
        sharded_cluster, _ = run_federated(
            result, config, batch=True, transport=transport
        )
        rows = [
            [f"worker {w}", sites, f"{b_in:,}", f"{b_out:,}"]
            for w, sites, b_in, b_out in sharded_cluster.network.worker_rows()
        ]
        rows.append(["rebalances", sharded_cluster.network.rebalances, "", ""])
    assert dict(sharded_cluster.network.bytes_by_kind) == dict(
        reliable_cluster.network.bytes_by_kind
    )
    return rows


def test_table5_comm_cost(benchmark):
    rows, bundling_rows, link_rows, fault_rows, worker_rows = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    emit_table(
        "Table 5 communication cost (bytes)",
        ["RR", "Centralized", "None", "CR", "Centralized/CR"],
        rows,
    )
    emit_table(
        "Table 5b migration bundling (inference+query state bytes)",
        ["RR", "per-tag", "batched", "saved", "saved%", "same error"],
        bundling_rows,
    )
    emit_table(
        "Table 5c per-link traffic at top RR (batched; -2 = ONS)",
        ["link", "messages", "bytes"],
        link_rows,
    )
    emit_table(
        f"Table 5d fault overhead at top RR (chaos seed {CHAOS_SEED})",
        ["kind", "reliable", "faulty", "class"],
        fault_rows,
    )
    emit_table(
        "Table 5e per-worker shard gauges at top RR (2 OS workers)",
        ["worker", "sites", "bytes in", "bytes out"],
        worker_rows,
    )
    # Both workers hosted sites and moved bytes through the shard plane.
    gauge_rows = worker_rows[:-1]
    assert len(gauge_rows) == 2
    for _, sites, b_in, b_out in gauge_rows:
        assert sites >= 1 or int(str(b_in).replace(",", "")) > 0
    for row in rows:
        central = int(row[1].replace(",", ""))
        none = int(row[2].replace(",", ""))
        cr = int(row[3].replace(",", ""))
        assert none == 0
        assert cr < central / 3  # CR is a small fraction of centralized
    for row in bundling_rows:
        per_tag = int(row[1].replace(",", ""))
        batched = int(row[2].replace(",", ""))
        assert batched < per_tag  # bundling + centroid compression pays
        assert row[5] is True  # identical inference results either way
